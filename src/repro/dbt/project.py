"""A minimal model of a dbt project.

dbt stores one ``SELECT`` statement per model file and wires models together
with ``{{ ref('other_model') }}`` and ``{{ source('source_name', 'table') }}``
macros.  For lineage purposes the only compilation step that matters is
resolving those macros to relation names, so this module implements exactly
that (a tiny, dependency-free subset of dbt's Jinja handling):

* ``{{ ref('x') }}``            -> ``x``
* ``{{ ref('pkg', 'x') }}``     -> ``x``
* ``{{ source('raw', 'web') }}`` -> ``raw.web`` (or a custom mapping)
* ``{{ config(...) }}``          -> removed
* ``{# comments #}``             -> removed
"""

import os
import re
from dataclasses import dataclass, field

_REF_PATTERN = re.compile(
    r"\{\{\s*ref\(\s*'(?P<first>[^']+)'\s*(?:,\s*'(?P<second>[^']+)'\s*)?\)\s*\}\}"
)
_SOURCE_PATTERN = re.compile(
    r"\{\{\s*source\(\s*'(?P<source>[^']+)'\s*,\s*'(?P<table>[^']+)'\s*\)\s*\}\}"
)
_CONFIG_PATTERN = re.compile(r"\{\{\s*config\([^)]*\)\s*\}\}")
_COMMENT_PATTERN = re.compile(r"\{#.*?#\}", re.DOTALL)


def compile_jinja_refs(sql, source_mapping=None):
    """Resolve the dbt macros in a model body and return plain SQL.

    ``source_mapping`` optionally maps ``(source_name, table_name)`` to a
    relation name; the default is ``"<source_name>.<table_name>"``.
    """
    source_mapping = source_mapping or {}

    def replace_ref(match):
        return match.group("second") or match.group("first")

    def replace_source(match):
        key = (match.group("source"), match.group("table"))
        if key in source_mapping:
            return source_mapping[key]
        return f"{match.group('source')}.{match.group('table')}"

    compiled = _COMMENT_PATTERN.sub("", sql)
    compiled = _CONFIG_PATTERN.sub("", compiled)
    compiled = _REF_PATTERN.sub(replace_ref, compiled)
    compiled = _SOURCE_PATTERN.sub(replace_source, compiled)
    return compiled.strip()


@dataclass
class DbtModel:
    """One model file of a dbt project."""

    name: str
    raw_sql: str
    path: str = ""
    compiled_sql: str = ""

    def refs(self):
        """Names of the models this model ``ref()``s."""
        return [match.group("second") or match.group("first")
                for match in _REF_PATTERN.finditer(self.raw_sql)]

    def sources(self):
        """``(source, table)`` pairs this model ``source()``s."""
        return [
            (match.group("source"), match.group("table"))
            for match in _SOURCE_PATTERN.finditer(self.raw_sql)
        ]


@dataclass
class DbtProject:
    """A collection of dbt models (typically loaded from ``models/``)."""

    models: dict = field(default_factory=dict)     # name -> DbtModel
    source_mapping: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_directory(cls, project_dir, source_mapping=None):
        """Load every ``*.sql`` file under ``<project_dir>/models`` (or the dir itself)."""
        models_dir = os.path.join(project_dir, "models")
        if not os.path.isdir(models_dir):
            models_dir = project_dir
        project = cls(source_mapping=dict(source_mapping or {}))
        for root, _, files in os.walk(models_dir):
            for filename in sorted(files):
                if not filename.endswith(".sql"):
                    continue
                path = os.path.join(root, filename)
                with open(path, "r", encoding="utf-8") as handle:
                    raw_sql = handle.read()
                name = os.path.splitext(filename)[0]
                project.add_model(name, raw_sql, path=path)
        return project

    @classmethod
    def from_models(cls, models, source_mapping=None):
        """Build a project from an in-memory ``{name: raw_sql}`` mapping."""
        project = cls(source_mapping=dict(source_mapping or {}))
        for name, raw_sql in models.items():
            project.add_model(name, raw_sql)
        return project

    # ------------------------------------------------------------------
    def add_model(self, name, raw_sql, path=""):
        model = DbtModel(name=name, raw_sql=raw_sql, path=path)
        model.compiled_sql = compile_jinja_refs(raw_sql, self.source_mapping)
        self.models[name] = model
        return model

    def compiled(self):
        """``{model_name: compiled_sql}`` — the Query Dictionary input shape."""
        return {name: model.compiled_sql for name, model in self.models.items()}

    def dependency_edges(self):
        """``(upstream_model, downstream_model)`` pairs implied by ``ref()``."""
        edges = []
        for name, model in self.models.items():
            for ref in model.refs():
                edges.append((ref, name))
        return edges
