"""dbt integration.

The paper's footnote 1: "For some systems like dbt, queries containing only
SELECT statements are stored in separate files.  In this case, we will use
the file name as the query identifier.  We also provide a dbt-specific
wrapper for LineageX."

* :mod:`repro.dbt.project` -- a minimal dbt project model: discovers model
  files, resolves ``{{ ref('...') }}`` / ``{{ source('...', '...') }}``
  macros, and strips ``{{ config(...) }}`` blocks;
* :mod:`repro.dbt.wrapper` -- ``lineagex_dbt()``, the wrapper that compiles
  a project into a ``{model_name: sql}`` mapping and runs the standard
  pipeline over it.
"""

from .project import DbtModel, DbtProject, compile_jinja_refs
from .wrapper import lineagex_dbt

__all__ = ["DbtModel", "DbtProject", "compile_jinja_refs", "lineagex_dbt"]
