"""The dbt-specific wrapper around the Session API.

dbt models are bare ``SELECT`` statements stored one per file, so the Query
Dictionary uses the file (model) name as the query identifier — exactly the
behaviour footnote 1 of the paper describes.
"""

from .project import DbtProject


def lineagex_dbt(
    project,
    catalog=None,
    strict=False,
    output_dir=None,
    use_stack=True,
    collect_traces=False,
    mode="dag",
    workers=None,
):
    """Run LineageX over a dbt project.

    Parameters
    ----------
    project:
        A :class:`DbtProject`, a path to a dbt project directory, or an
        in-memory ``{model_name: raw_sql}`` mapping.
    catalog:
        Optional :class:`repro.catalog.Catalog` with the source-table schemas.
    strict / use_stack / collect_traces / mode / workers:
        Extraction options, identical to :func:`repro.core.runner.lineagex`
        (historically ``mode``, ``workers`` and ``collect_traces`` were
        silently dropped by this wrapper; they are forwarded now).
    output_dir:
        When given, write ``lineagex.json`` and ``lineagex.html`` there.

    This is a thin shim over the Session API: it is equivalent to
    ``LineageSession(DbtSource(project), catalog=catalog, ...).extract()``.
    """
    from ..session import LineageSession, SessionConfig
    from ..sources import DbtSource

    if isinstance(project, str):
        project = DbtProject.from_directory(project)
    elif isinstance(project, dict):
        project = DbtProject.from_models(project)
    session = LineageSession(
        DbtSource(project),
        catalog=catalog,
        config=SessionConfig(
            strict=strict,
            use_stack=use_stack,
            collect_traces=collect_traces,
            mode=mode,
            workers=workers,
        ),
    )
    result = session.extract()
    if output_dir is not None:
        result.save(output_dir)
    return result
