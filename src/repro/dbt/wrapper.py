"""The dbt-specific wrapper around :func:`repro.core.runner.lineagex`.

dbt models are bare ``SELECT`` statements stored one per file, so the Query
Dictionary uses the file (model) name as the query identifier — exactly the
behaviour footnote 1 of the paper describes.
"""

from .project import DbtProject
from ..core.runner import lineagex


def lineagex_dbt(project, catalog=None, strict=False, output_dir=None):
    """Run LineageX over a dbt project.

    Parameters
    ----------
    project:
        A :class:`DbtProject`, a path to a dbt project directory, or an
        in-memory ``{model_name: raw_sql}`` mapping.
    catalog:
        Optional :class:`repro.catalog.Catalog` with the source-table schemas.
    strict / output_dir:
        Forwarded to :func:`repro.core.runner.lineagex`.
    """
    if isinstance(project, str):
        project = DbtProject.from_directory(project)
    elif isinstance(project, dict):
        project = DbtProject.from_models(project)
    compiled = project.compiled()
    return lineagex(
        compiled, catalog=catalog, strict=strict, output_dir=output_dir
    )
