"""Impact analysis over a column lineage graph.

This module implements the demonstration workflow of Section IV:

* *explore* (Step 3): reveal a table's direct upstream and downstream
  tables;
* *impact analysis* (Step 4): starting from a column (``web.page`` in the
  paper), find every downstream column that is *contributed to* or
  *referenced by* the change, transitively.  The closure distinguishes how
  each affected column is reached, matching the red / blue / orange
  highlighting of the UI.

All traversals run directly over the graph's cached adjacency index
(:meth:`LineageGraph.column_adjacency <repro.core.lineage.LineageGraph>`);
no intermediate networkx graph is constructed, which keeps repeated
interactive queries cheap.  Use :mod:`repro.output.graph_ops` when an
actual networkx object is needed for export.
"""

from collections import deque
from dataclasses import dataclass, field

from ..core.column_refs import ColumnName
from ..core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE


@dataclass
class ImpactResult:
    """The outcome of an impact analysis starting from one column."""

    start: ColumnName
    direction: str
    contributed: set = field(default_factory=set)   # reached via contribute edges only
    referenced: set = field(default_factory=set)     # reached via reference edges only
    both: set = field(default_factory=set)           # reached via both kinds

    @property
    def all_columns(self):
        """Every impacted column regardless of how it is reached."""
        return self.contributed | self.referenced | self.both

    def impacted_tables(self):
        """The distinct tables containing impacted columns."""
        return sorted({column.table for column in self.all_columns})

    def kind_of(self, column):
        """How ``column`` is impacted: contribute / reference / both / None."""
        if column in self.both:
            return EDGE_BOTH
        if column in self.contributed:
            return EDGE_CONTRIBUTE
        if column in self.referenced:
            return EDGE_REFERENCE
        return None

    def to_rows(self):
        """Sorted (table, column, kind) rows for display."""
        rows = []
        for column in sorted(self.all_columns):
            rows.append((column.table, column.column, self.kind_of(column)))
        return rows


def _as_column_name(column):
    if isinstance(column, ColumnName):
        return column
    return ColumnName.parse(column)


def impact_analysis(graph, column, direction="downstream"):
    """Compute the transitive impact closure of ``column``.

    Parameters
    ----------
    graph:
        A :class:`~repro.core.lineage.LineageGraph`.
    column:
        The starting column, as a :class:`ColumnName` or ``"table.column"``.
    direction:
        ``"downstream"`` (default; what breaks if this column changes) or
        ``"upstream"`` (where this column's values come from).

    Returns
    -------
    ImpactResult
        The affected columns, partitioned by how they are reached.  A column
        reached through at least one contribution edge *and* at least one
        reference edge (on possibly different paths) is classified as
        ``both`` — matching the orange highlighting of the paper's UI.
    """
    start = _as_column_name(column)
    adjacency = graph.column_adjacency(direction)

    # BFS that tracks the *kinds* of edges on the paths used to reach a
    # column; a column is re-expanded whenever its kind set grows.
    reached_kinds = {}
    queue = deque([start])
    while queue:
        current = queue.popleft()
        for target, kind in (adjacency.get(current) or {}).items():
            kinds = reached_kinds.get(target)
            if kinds is None:
                kinds = reached_kinds[target] = set()
            before = len(kinds)
            if kind == EDGE_BOTH:
                kinds.add(EDGE_CONTRIBUTE)
                kinds.add(EDGE_REFERENCE)
            else:
                kinds.add(kind)
            if len(kinds) != before:
                queue.append(target)

    result = ImpactResult(start=start, direction=direction)
    for name, kinds in reached_kinds.items():
        if kinds >= {EDGE_CONTRIBUTE, EDGE_REFERENCE}:
            result.both.add(name)
        elif EDGE_CONTRIBUTE in kinds:
            result.contributed.add(name)
        else:
            result.referenced.add(name)
    return result


def downstream_columns(graph, column):
    """All columns transitively affected by a change to ``column``."""
    return impact_analysis(graph, column, direction="downstream").all_columns


def upstream_columns(graph, column):
    """All columns that transitively feed ``column``."""
    return impact_analysis(graph, column, direction="upstream").all_columns


def _tables_within(adjacency, table, hops):
    """Tables reachable from ``table`` within ``hops`` steps (excl. itself)."""
    reached = set()
    frontier = [table]
    for _ in range(hops):
        next_frontier = []
        for current in frontier:
            for neighbor in adjacency.get(current, ()):
                if neighbor != table and neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def explore(graph, table, hops=1):
    """The *explore* action of the UI: tables within ``hops`` of ``table``.

    Returns ``(upstream_tables, downstream_tables)`` — each a set of table
    names reachable within the requested number of hops over table-level
    edges, excluding ``table`` itself.
    """
    downstream = _tables_within(graph.table_successors(), table, hops)
    upstream = _tables_within(graph.table_predecessors(), table, hops)
    return upstream, downstream


def impact_report(graph, column, direction="downstream"):
    """A printable multi-line report of an impact analysis."""
    result = impact_analysis(graph, column, direction=direction)
    lines = [
        f"Impact analysis for {result.start} ({direction}):",
        f"  impacted tables:  {', '.join(result.impacted_tables()) or '(none)'}",
        f"  impacted columns: {len(result.all_columns)}",
    ]
    for table, column_name, kind in result.to_rows():
        lines.append(f"    {table}.{column_name:<20s} [{kind}]")
    return "\n".join(lines)
