"""Impact analysis over a column lineage graph.

This module implements the demonstration workflow of Section IV:

* *explore* (Step 3): reveal a table's direct upstream and downstream
  tables;
* *impact analysis* (Step 4): starting from a column (``web.page`` in the
  paper), find every downstream column that is *contributed to* or
  *referenced by* the change, transitively.  The closure distinguishes how
  each affected column is reached, matching the red / blue / orange
  highlighting of the UI.

All traversals run directly over the graph's cached adjacency index
(:meth:`LineageGraph.column_adjacency <repro.core.lineage.LineageGraph>`);
no intermediate networkx graph is constructed, which keeps repeated
interactive queries cheap.  Use :mod:`repro.output.graph_ops` when an
actual networkx object is needed for export.
"""

from collections import deque
from dataclasses import dataclass, field

from ..core.column_refs import ColumnName
from ..core.errors import UnknownColumnError
from ..core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE
from .reach import NameSet

_METHODS = ("auto", "index", "bfs")
_MISSING = ("empty", "raise")


@dataclass
class ImpactResult:
    """The outcome of an impact analysis starting from one column.

    The three partitions are plain ``set`` on the BFS path and (shared,
    immutable) :class:`~repro.analysis.reach.NameSet` views on the
    indexed path — treat them as read-only either way.  A ``NameSet``
    iterates and counts without hashing; membership tests and set
    algebra materialise a real ``frozenset`` once, lazily.
    """

    start: ColumnName
    direction: str
    contributed: set = field(default_factory=set)   # reached via contribute edges only
    referenced: set = field(default_factory=set)     # reached via reference edges only
    both: set = field(default_factory=set)           # reached via both kinds

    @property
    def all_columns(self):
        """Every impacted column regardless of how it is reached.

        Computed once and cached: the partitions are disjoint and
        read-only, so the union can never change after construction.  On
        the indexed path the disjointness lets the union stay a lazy
        concatenation — no hashing until a consumer needs membership.
        """
        cached = self.__dict__.get("_all_columns")
        if cached is None:
            parts = (self.contributed, self.referenced, self.both)
            if all(isinstance(part, NameSet) for part in parts):
                cached = NameSet([name for part in parts for name in part])
            else:
                cached = self.contributed | self.referenced | self.both
            self.__dict__["_all_columns"] = cached
        return cached

    def impacted_tables(self):
        """The distinct tables containing impacted columns."""
        return sorted({column.table for column in self.all_columns})

    def kind_of(self, column):
        """How ``column`` is impacted: contribute / reference / both / None."""
        if column in self.both:
            return EDGE_BOTH
        if column in self.contributed:
            return EDGE_CONTRIBUTE
        if column in self.referenced:
            return EDGE_REFERENCE
        return None

    def to_rows(self):
        """Sorted (table, column, kind) rows for display."""
        rows = []
        for column in sorted(self.all_columns):
            rows.append((column.table, column.column, self.kind_of(column)))
        return rows


def _as_column_name(column):
    if isinstance(column, ColumnName):
        return column
    return ColumnName.parse(column)


def column_known(graph, column):
    """Whether ``column`` is a column the graph has ever seen.

    True when the column has lineage edges in either direction *or* is a
    recorded output column of a known relation (an edgeless leaf — a real
    column whose impact closure is legitimately empty).
    """
    start = _as_column_name(column)
    if start in graph.column_adjacency("downstream"):
        return True
    if start in graph.column_adjacency("upstream"):
        return True
    entry = graph.get(start.table)
    return entry is not None and start.column in entry.output_columns


def nearest_column(graph, column, cutoff=0.6):
    """The closest known name to ``column`` for "did you mean" hints.

    When the table is known, candidates are that table's columns; when it
    is not, candidates are relation names (the typo is most likely in the
    table part).  Candidate lists are capped so a 404 on a 100k-relation
    graph stays cheap.  Returns a dotted string or ``None``.
    """
    import difflib

    start = _as_column_name(column)
    entry = graph.get(start.table)
    if entry is not None:
        matches = difflib.get_close_matches(
            start.column, list(entry.output_columns)[:5000], n=1, cutoff=cutoff
        )
        return f"{start.table}.{matches[0]}" if matches else None
    names = list(graph.relations)
    if len(names) > 10000:
        prefix = start.table[:1]
        preferred = [name for name in names if name.startswith(prefix)]
        names = (preferred or names)[:10000]
    matches = difflib.get_close_matches(start.table, names, n=1, cutoff=cutoff)
    return f"{matches[0]}.{start.column}" if matches else None


def _bfs_partition(adjacency, start, max_depth=None):
    """The kind-tracking BFS (reference semantics for every other path).

    Tracks the kinds of edges on the paths used to reach a column; a
    column is re-expanded whenever its kind set grows, or — under a depth
    limit — whenever it is re-reached strictly closer to the start.
    """
    reached_kinds = {}
    if max_depth is None:
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for target, kind in (adjacency.get(current) or {}).items():
                kinds = reached_kinds.get(target)
                if kinds is None:
                    kinds = reached_kinds[target] = set()
                before = len(kinds)
                if kind == EDGE_BOTH:
                    kinds.add(EDGE_CONTRIBUTE)
                    kinds.add(EDGE_REFERENCE)
                else:
                    kinds.add(kind)
                if len(kinds) != before:
                    queue.append(target)
        return reached_kinds

    best_depth = {}
    queue = deque([(start, 0)])
    while queue:
        current, depth = queue.popleft()
        if depth >= max_depth:
            continue
        for target, kind in (adjacency.get(current) or {}).items():
            kinds = reached_kinds.get(target)
            if kinds is None:
                kinds = reached_kinds[target] = set()
            before = len(kinds)
            if kind == EDGE_BOTH:
                kinds.add(EDGE_CONTRIBUTE)
                kinds.add(EDGE_REFERENCE)
            else:
                kinds.add(kind)
            next_depth = depth + 1
            if len(kinds) != before or next_depth < best_depth.get(
                target, max_depth
            ):
                previous = best_depth.get(target)
                if previous is None or next_depth < previous:
                    best_depth[target] = next_depth
                queue.append((target, next_depth))
    return reached_kinds


def impact_analysis(graph, column, direction="downstream", *, max_depth=None,
                    method="auto", missing="empty"):
    """Compute the transitive impact closure of ``column``.

    Parameters
    ----------
    graph:
        A :class:`~repro.core.lineage.LineageGraph`.
    column:
        The starting column, as a :class:`ColumnName` or ``"table.column"``.
    direction:
        ``"downstream"`` (default; what breaks if this column changes) or
        ``"upstream"`` (where this column's values come from).
    max_depth:
        Optional hop limit; forces the BFS path (the reachability index
        stores unbounded closures only).
    method:
        ``"auto"`` (default) answers from the graph's reachability index
        when one is current — frozen snapshot graphs always are — and
        falls back to BFS on cold graphs; ``"index"`` forces a build;
        ``"bfs"`` forces the traversal (the differential reference).
    missing:
        ``"empty"`` (default) keeps the historical behaviour: an unknown
        start column yields an empty result, indistinguishable from a
        true leaf.  ``"raise"`` raises
        :class:`~repro.core.errors.UnknownColumnError` (a ``KeyError``)
        with a nearest-name hint instead.

    Returns
    -------
    ImpactResult
        The affected columns, partitioned by how they are reached.  A column
        reached through at least one contribution edge *and* at least one
        reference edge (on possibly different paths) is classified as
        ``both`` — matching the orange highlighting of the paper's UI.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if missing not in _MISSING:
        raise ValueError(f"missing must be one of {_MISSING}, got {missing!r}")
    start = _as_column_name(column)
    adjacency = graph.column_adjacency(direction)  # also validates direction
    if missing == "raise" and not column_known(graph, start):
        raise UnknownColumnError(start, hint=nearest_column(graph, start))

    if method != "bfs" and max_depth is None:
        index = graph.reachability(build=(method == "index"))
        if index is not None:
            contributed, referenced, both = index.partition(start, direction)
            # the partition's NameSet views are shared with the index
            # memo and immutable, so they are handed out directly —
            # copying them would re-hash the whole answer on every query
            return ImpactResult(
                start=start,
                direction=direction,
                contributed=contributed,
                referenced=referenced,
                both=both,
            )

    reached_kinds = _bfs_partition(adjacency, start, max_depth=max_depth)
    result = ImpactResult(start=start, direction=direction)
    for name, kinds in reached_kinds.items():
        if kinds >= {EDGE_CONTRIBUTE, EDGE_REFERENCE}:
            result.both.add(name)
        elif EDGE_CONTRIBUTE in kinds:
            result.contributed.add(name)
        else:
            result.referenced.add(name)
    return result


def merge_impacts(results):
    """Merge per-start :class:`ImpactResult` objects into one partition.

    Used by multi-start selector queries (``schema.table.*``): a column
    contributed to from one start and referenced from another is ``both``,
    mirroring how the per-column kind sets would union in a single BFS.
    """
    results = list(results)
    if not results:
        raise ValueError("merge_impacts needs at least one result")
    contributed = set()
    referenced = set()
    both = set()
    for result in results:
        contributed |= result.contributed
        referenced |= result.referenced
        both |= result.both
    both |= contributed & referenced
    contributed -= both
    referenced -= both
    return ImpactResult(
        start=results[0].start,
        direction=results[0].direction,
        contributed=contributed,
        referenced=referenced,
        both=both,
    )


def downstream_columns(graph, column, **kwargs):
    """All columns transitively affected by a change to ``column``."""
    return impact_analysis(graph, column, direction="downstream", **kwargs).all_columns


def upstream_columns(graph, column, **kwargs):
    """All columns that transitively feed ``column``."""
    return impact_analysis(graph, column, direction="upstream", **kwargs).all_columns


def _tables_within(adjacency, table, hops):
    """Tables reachable from ``table`` within ``hops`` steps (excl. itself)."""
    reached = set()
    frontier = [table]
    iterations = range(hops) if hops is not None else iter(int, 1)
    for _ in iterations:
        next_frontier = []
        for current in frontier:
            for neighbor in adjacency.get(current, ()):
                if neighbor != table and neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def explore(graph, table, hops=1):
    """The *explore* action of the UI: tables within ``hops`` of ``table``.

    Returns ``(upstream_tables, downstream_tables)`` — each a set of table
    names reachable within the requested number of hops over table-level
    edges, excluding ``table`` itself.  ``hops=None`` means the full
    transitive closure; when the graph carries a current reachability
    index (snapshot graphs always do) that case is answered from the
    index's memoised table closures instead of traversing.
    """
    if hops is None:
        index = graph.reachability(build=False)
        if index is not None:
            return (
                set(index.table_closure(table, "upstream")),
                set(index.table_closure(table, "downstream")),
            )
    downstream = _tables_within(graph.table_successors(), table, hops)
    upstream = _tables_within(graph.table_predecessors(), table, hops)
    return upstream, downstream


def impact_report(graph, column, direction="downstream", max_depth=None):
    """A printable multi-line report of an impact analysis."""
    result = impact_analysis(graph, column, direction=direction, max_depth=max_depth)
    lines = [
        f"Impact analysis for {result.start} ({direction}):",
        f"  impacted tables:  {', '.join(result.impacted_tables()) or '(none)'}",
        f"  impacted columns: {len(result.all_columns)}",
    ]
    for table, column_name, kind in result.to_rows():
        lines.append(f"    {table}.{column_name:<20s} [{kind}]")
    return "\n".join(lines)
