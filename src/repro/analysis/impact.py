"""Impact analysis over a column lineage graph.

This module implements the demonstration workflow of Section IV:

* *explore* (Step 3): reveal a table's direct upstream and downstream
  tables;
* *impact analysis* (Step 4): starting from a column (``web.page`` in the
  paper), find every downstream column that is *contributed to* or
  *referenced by* the change, transitively.  The closure distinguishes how
  each affected column is reached, matching the red / blue / orange
  highlighting of the UI.
"""

from dataclasses import dataclass, field

import networkx as nx

from ..core.column_refs import ColumnName
from ..core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE
from ..output.graph_ops import to_column_digraph


@dataclass
class ImpactResult:
    """The outcome of an impact analysis starting from one column."""

    start: ColumnName
    direction: str
    contributed: set = field(default_factory=set)   # reached via contribute edges only
    referenced: set = field(default_factory=set)     # reached via reference edges only
    both: set = field(default_factory=set)           # reached via both kinds

    @property
    def all_columns(self):
        """Every impacted column regardless of how it is reached."""
        return self.contributed | self.referenced | self.both

    def impacted_tables(self):
        """The distinct tables containing impacted columns."""
        return sorted({column.table for column in self.all_columns})

    def kind_of(self, column):
        """How ``column`` is impacted: contribute / reference / both / None."""
        if column in self.both:
            return EDGE_BOTH
        if column in self.contributed:
            return EDGE_CONTRIBUTE
        if column in self.referenced:
            return EDGE_REFERENCE
        return None

    def to_rows(self):
        """Sorted (table, column, kind) rows for display."""
        rows = []
        for column in sorted(self.all_columns):
            rows.append((column.table, column.column, self.kind_of(column)))
        return rows


def _as_column_name(column):
    if isinstance(column, ColumnName):
        return column
    return ColumnName.parse(column)


def impact_analysis(graph, column, direction="downstream"):
    """Compute the transitive impact closure of ``column``.

    Parameters
    ----------
    graph:
        A :class:`~repro.core.lineage.LineageGraph`.
    column:
        The starting column, as a :class:`ColumnName` or ``"table.column"``.
    direction:
        ``"downstream"`` (default; what breaks if this column changes) or
        ``"upstream"`` (where this column's values come from).

    Returns
    -------
    ImpactResult
        The affected columns, partitioned by how they are reached.  A column
        reached through at least one contribution edge *and* at least one
        reference edge (on possibly different paths) is classified as
        ``both`` — matching the orange highlighting of the paper's UI.
    """
    start = _as_column_name(column)
    digraph = to_column_digraph(graph, include_reference_edges=True)
    if direction == "upstream":
        digraph = digraph.reverse(copy=False)
    elif direction != "downstream":
        raise ValueError(f"direction must be 'downstream' or 'upstream', got {direction!r}")

    start_key = str(start)
    if start_key not in digraph:
        return ImpactResult(start=start, direction=direction)

    # BFS that tracks the *kinds* of edges on the paths used to reach a node.
    reached_kinds = {}
    queue = [start_key]
    visited = {start_key}
    while queue:
        current = queue.pop(0)
        for _, target, data in digraph.out_edges(current, data=True):
            kind = data.get("kind", EDGE_CONTRIBUTE)
            kinds = reached_kinds.setdefault(target, set())
            before = set(kinds)
            if kind == EDGE_BOTH:
                kinds |= {EDGE_CONTRIBUTE, EDGE_REFERENCE}
            else:
                kinds.add(kind)
            if target not in visited or kinds != before:
                visited.add(target)
                queue.append(target)

    result = ImpactResult(start=start, direction=direction)
    for key, kinds in reached_kinds.items():
        name = ColumnName.parse(key)
        if kinds >= {EDGE_CONTRIBUTE, EDGE_REFERENCE}:
            result.both.add(name)
        elif EDGE_CONTRIBUTE in kinds:
            result.contributed.add(name)
        else:
            result.referenced.add(name)
    return result


def downstream_columns(graph, column):
    """All columns transitively affected by a change to ``column``."""
    return impact_analysis(graph, column, direction="downstream").all_columns


def upstream_columns(graph, column):
    """All columns that transitively feed ``column``."""
    return impact_analysis(graph, column, direction="upstream").all_columns


def explore(graph, table, hops=1):
    """The *explore* action of the UI: tables within ``hops`` of ``table``.

    Returns ``(upstream_tables, downstream_tables)`` — each a set of table
    names reachable within the requested number of hops over table-level
    edges, excluding ``table`` itself.
    """
    digraph = nx.DiGraph()
    for source, target in graph.table_edges():
        digraph.add_edge(source, target)
    if table not in digraph:
        return set(), set()
    downstream = set(
        nx.single_source_shortest_path_length(digraph, table, cutoff=hops)
    ) - {table}
    upstream = set(
        nx.single_source_shortest_path_length(digraph.reverse(copy=False), table, cutoff=hops)
    ) - {table}
    return upstream, downstream


def impact_report(graph, column, direction="downstream"):
    """A printable multi-line report of an impact analysis."""
    result = impact_analysis(graph, column, direction=direction)
    lines = [
        f"Impact analysis for {result.start} ({direction}):",
        f"  impacted tables:  {', '.join(result.impacted_tables()) or '(none)'}",
        f"  impacted columns: {len(result.all_columns)}",
    ]
    for table, column_name, kind in result.to_rows():
        lines.append(f"    {table}.{column_name:<20s} [{kind}]")
    return "\n".join(lines)
