"""Accuracy and coverage metrics for lineage extraction.

The paper's headline claim is that LineageX "achieves high coverage and
accuracy for column lineage extraction" where prior tools return wrong or
missing entries (Figure 2) and LLMs miss referenced-only columns
(Section IV).  These helpers quantify that: precision / recall / F1 over
column edges, over column sets, and over impact-analysis answer sets.
"""

from dataclasses import dataclass


@dataclass
class MetricReport:
    """Precision / recall / F1 plus the raw counts behind them."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self):
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self):
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self):
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def as_row(self):
        """``(tp, fp, fn, precision, recall, f1)`` for table printing."""
        return (
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            round(self.precision, 3),
            round(self.recall, 3),
            round(self.f1, 3),
        )


def set_metrics(predicted, expected):
    """Compare two plain sets and return a :class:`MetricReport`."""
    predicted, expected = set(predicted), set(expected)
    return MetricReport(
        true_positives=len(predicted & expected),
        false_positives=len(predicted - expected),
        false_negatives=len(expected - predicted),
    )


def edge_metrics(candidate, reference, ignore_kind=True, kinds=None):
    """Precision/recall of the candidate graph's column edges.

    ``ignore_kind`` compares pure topology; pass ``kinds`` (an iterable of
    edge kinds) to restrict the comparison to, e.g., contribution edges only.
    """
    def edge_set(graph):
        edges = set()
        for edge in graph.edges():
            if kinds is not None and edge.kind not in kinds:
                continue
            kind = "any" if ignore_kind else edge.kind
            edges.add((str(edge.source), str(edge.target), kind))
        return edges

    return set_metrics(edge_set(candidate), edge_set(reference))


def column_metrics(candidate, reference, relation=None):
    """Precision/recall of the per-relation output column sets.

    When ``relation`` is given only that relation's columns are compared,
    otherwise all relations present in the reference are pooled.
    """
    def column_set(graph, names):
        columns = set()
        for name in names:
            entry = graph.get(name)
            if entry is None:
                continue
            for column in entry.output_columns:
                columns.add((name, column))
        return columns

    names = [relation] if relation is not None else [entry.name for entry in reference]
    return set_metrics(column_set(candidate, names), column_set(reference, names))


def impact_metrics(predicted_columns, expected_columns):
    """Precision/recall of an impact-analysis answer (sets of ColumnName)."""
    return set_metrics(
        {str(column) for column in predicted_columns},
        {str(column) for column in expected_columns},
    )
