"""Structural comparison of two lineage graphs.

Used by the Figure 2 benchmark to contrast LineageX output against the
SQLLineage-like baseline, and by tests that check the static extraction
agrees with the database-connection (EXPLAIN) mode.
"""

from dataclasses import dataclass, field


@dataclass
class GraphDiff:
    """Differences between a candidate graph and a reference graph."""

    missing_relations: set = field(default_factory=set)
    extra_relations: set = field(default_factory=set)
    missing_columns: dict = field(default_factory=dict)   # relation -> set of columns
    extra_columns: dict = field(default_factory=dict)
    missing_edges: set = field(default_factory=set)        # (source, target, kind)
    extra_edges: set = field(default_factory=set)
    matching_edges: set = field(default_factory=set)

    @property
    def is_identical(self):
        """True when the two graphs agree on relations, columns, and edges."""
        return not (
            self.missing_relations
            or self.extra_relations
            or any(self.missing_columns.values())
            or any(self.extra_columns.values())
            or self.missing_edges
            or self.extra_edges
        )

    def summary(self):
        """A printable summary table of the differences."""
        lines = [
            f"relations: -{len(self.missing_relations)} / +{len(self.extra_relations)}",
            f"columns:   -{sum(len(v) for v in self.missing_columns.values())}"
            f" / +{sum(len(v) for v in self.extra_columns.values())}",
            f"edges:     -{len(self.missing_edges)} / +{len(self.extra_edges)}"
            f" (matching {len(self.matching_edges)})",
        ]
        return "\n".join(lines)


def _edge_set(graph, ignore_kind=False):
    edges = set()
    for edge in graph.edges():
        kind = "any" if ignore_kind else edge.kind
        edges.add((str(edge.source), str(edge.target), kind))
    return edges


def diff_graphs(candidate, reference, ignore_kind=False):
    """Compare ``candidate`` against ``reference`` (the ground truth).

    ``missing_*`` entries are present in the reference but absent from the
    candidate; ``extra_*`` entries are present in the candidate only.  Set
    ``ignore_kind=True`` to compare edge topology while ignoring the
    contribute/reference distinction.
    """
    diff = GraphDiff()
    candidate_names = {relation.name for relation in candidate}
    reference_names = {relation.name for relation in reference}
    diff.missing_relations = reference_names - candidate_names
    diff.extra_relations = candidate_names - reference_names

    for name in reference_names & candidate_names:
        reference_columns = set(reference[name].output_columns)
        candidate_columns = set(candidate[name].output_columns)
        missing = reference_columns - candidate_columns
        extra = candidate_columns - reference_columns
        if missing:
            diff.missing_columns[name] = missing
        if extra:
            diff.extra_columns[name] = extra

    candidate_edges = _edge_set(candidate, ignore_kind=ignore_kind)
    reference_edges = _edge_set(reference, ignore_kind=ignore_kind)
    diff.missing_edges = reference_edges - candidate_edges
    diff.extra_edges = candidate_edges - reference_edges
    diff.matching_edges = candidate_edges & reference_edges
    return diff
