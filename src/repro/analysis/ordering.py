"""Dependency ordering and warehouse hygiene reports.

The paper's introduction motivates column lineage with "storage refactoring
and workflow migration": both need to know in which order views can be
(re)created and which objects nothing depends on.  These helpers answer that
from a :class:`~repro.core.lineage.LineageGraph`:

* :func:`creation_order` — a topological order of the views (dependencies
  first), i.e. the order a migration script must replay them in;
* :func:`drop_order` — the reverse (dependents first), for teardown;
* :func:`terminal_views` — views with no downstream consumers (candidates
  for deprecation review);
* :func:`unused_base_columns` — base-table columns no view reads (given a
  catalog), candidates for storage cleanup.
"""

import networkx as nx

from ..output.graph_ops import to_table_digraph


def creation_order(graph):
    """Views in dependency order (every view appears after its sources).

    Raises :class:`networkx.NetworkXUnfeasible` if the view dependencies are
    cyclic (which the extractor itself would normally have rejected).
    """
    digraph = to_table_digraph(graph)
    view_names = {entry.name for entry in graph.views}
    order = [name for name in nx.topological_sort(digraph) if name in view_names]
    # views that have no table edges at all still need to appear
    for entry in graph.views:
        if entry.name not in order:
            order.append(entry.name)
    return order


def drop_order(graph):
    """Views in reverse dependency order (safe DROP sequence)."""
    return list(reversed(creation_order(graph)))


def terminal_views(graph):
    """Views that no other relation reads (the "leaves" of the warehouse)."""
    digraph = to_table_digraph(graph)
    view_names = {entry.name for entry in graph.views}
    return sorted(
        name
        for name in view_names
        if name not in digraph or digraph.out_degree(name) == 0
    )


def root_tables(graph):
    """Base tables that at least one view reads directly."""
    digraph = to_table_digraph(graph)
    base_names = {entry.name for entry in graph.base_tables}
    return sorted(
        name for name in base_names if name in digraph and digraph.out_degree(name) > 0
    )


def unused_base_columns(graph, catalog):
    """Catalog columns of base tables that no view contributes from or references.

    Returns a mapping ``{table: [unused columns...]}`` with empty-free entries.
    """
    used = set()
    for view in graph.views:
        for sources in view.contributions.values():
            used |= {str(source) for source in sources}
        used |= {str(source) for source in view.referenced}

    report = {}
    for table in catalog.base_tables():
        unused = [
            column
            for column in table.column_names()
            if f"{table.name}.{column}" not in used
        ]
        if unused:
            report[table.name] = unused
    return report


def migration_script(graph):
    """Regenerate a CREATE-statement script in a replayable order.

    Uses the SQL text captured for each view during preprocessing; views with
    no recorded SQL are skipped (e.g. graphs rebuilt from JSON).
    """
    statements = []
    for name in creation_order(graph):
        entry = graph[name]
        if entry.sql:
            statements.append(entry.sql.strip().rstrip(";") + ";")
    return "\n\n".join(statements) + ("\n" if statements else "")
