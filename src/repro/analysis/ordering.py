"""Dependency ordering and warehouse hygiene reports.

The paper's introduction motivates column lineage with "storage refactoring
and workflow migration": both need to know in which order views can be
(re)created and which objects nothing depends on.  These helpers answer that
from a :class:`~repro.core.lineage.LineageGraph`, traversing its cached
table-level adjacency index directly (no networkx graph is built):

* :func:`creation_order` — a topological order of the views (dependencies
  first), i.e. the order a migration script must replay them in;
* :func:`drop_order` — the reverse (dependents first), for teardown;
* :func:`terminal_views` — views with no downstream consumers (candidates
  for deprecation review);
* :func:`unused_base_columns` — base-table columns no view reads (given a
  catalog), candidates for storage cleanup.
"""

from ..core.errors import CyclicDependencyError


def _reach_index(graph):
    """The graph's current reachability index, or ``None`` (never builds).

    Frozen snapshot graphs always answer with their pinned index, so the
    serving daemon's ``/ordering`` reads come from precomputed (and
    memoised) orders; live graphs only answer when an index was already
    built for the current version.
    """
    reachability = getattr(graph, "reachability", None)
    if reachability is None:
        return None
    return reachability(build=False)


def _topological_tables(graph):
    """All relations in dependency order (Kahn's algorithm, deterministic).

    Ties are broken by the graph's relation insertion order.  Raises
    :class:`~repro.core.errors.CyclicDependencyError` if the table-level
    dependencies are cyclic (which the extractor itself would normally have
    rejected).  When the graph carries a current reachability index the
    memoised order stored there is returned instead of re-running Kahn —
    the index captures the same inputs, so the output is identical.
    """
    index = _reach_index(graph)
    if index is not None:
        return list(index.table_order())
    return _kahn_order(
        list(graph.relations), graph.table_successors(), graph.table_predecessors()
    )


def _kahn_order(names, successors, predecessors):
    """Kahn's algorithm over prebuilt table adjacency (the shared kernel)."""
    known = set(names)
    # a source table may be referenced without ever being materialised as a
    # relation node (e.g. no column reference hits it); such phantom edges
    # must not count towards the indegree or everything downstream of them
    # would be reported as cyclic
    indegree = {
        name: sum(1 for source in predecessors.get(name, ()) if source in known)
        for name in names
    }
    queue = [name for name in names if indegree[name] == 0]
    order = []
    cursor = 0
    while cursor < len(queue):
        name = queue[cursor]
        cursor += 1
        order.append(name)
        for dependent in successors.get(name, ()):
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                queue.append(dependent)
    if len(order) != len(names):
        raise CyclicDependencyError(
            sorted(name for name in names if indegree[name] > 0)
        )
    return order


def creation_order(graph):
    """Views in dependency order (every view appears after its sources).

    Raises :class:`~repro.core.errors.CyclicDependencyError` if the view
    dependencies are cyclic (which the extractor itself would normally have
    rejected).
    """
    view_names = {entry.name for entry in graph.views}
    return [name for name in _topological_tables(graph) if name in view_names]


def drop_order(graph):
    """Views in reverse dependency order (safe DROP sequence)."""
    return list(reversed(creation_order(graph)))


def terminal_views(graph):
    """Views that no other relation reads (the "leaves" of the warehouse)."""
    index = _reach_index(graph)
    if index is not None:
        return list(index.terminal_views())
    successors = graph.table_successors()
    return sorted(
        entry.name for entry in graph.views if not successors.get(entry.name)
    )


def root_tables(graph):
    """Base tables that at least one view reads directly."""
    index = _reach_index(graph)
    if index is not None:
        return list(index.root_tables())
    successors = graph.table_successors()
    return sorted(
        entry.name for entry in graph.base_tables if successors.get(entry.name)
    )


def unused_base_columns(graph, catalog):
    """Catalog columns of base tables that no view contributes from or references.

    Returns a mapping ``{table: [unused columns...]}`` with empty-free entries.
    """
    used = set()
    for view in graph.views:
        for sources in view.contributions.values():
            used |= {str(source) for source in sources}
        used |= {str(source) for source in view.referenced}

    report = {}
    for table in catalog.base_tables():
        unused = [
            column
            for column in table.column_names()
            if f"{table.name}.{column}" not in used
        ]
        if unused:
            report[table.name] = unused
    return report


def migration_script(graph):
    """Regenerate a CREATE-statement script in a replayable order.

    Uses the SQL text captured for each view during preprocessing; views with
    no recorded SQL are skipped (e.g. graphs rebuilt from JSON).
    """
    statements = []
    for name in creation_order(graph):
        entry = graph[name]
        if entry.sql:
            statements.append(entry.sql.strip().rstrip(";") + ";")
    return "\n\n".join(statements) + ("\n" if statements else "")
