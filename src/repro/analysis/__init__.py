"""Graph analyses built on top of the lineage model.

* :mod:`repro.analysis.impact` -- upstream/downstream closures and the
  impact-analysis workflow of the demonstration (Figure 5, Steps 3-4);
* :mod:`repro.analysis.reach` -- the precomputed reachability index that
  answers those closures in O(answer size) on large graphs;
* :mod:`repro.analysis.selector` -- InfoTracker-style ``+name+`` impact
  selectors lowered onto the indexed queries;
* :mod:`repro.analysis.diff` -- structural comparison of two lineage graphs;
* :mod:`repro.analysis.metrics` -- precision/recall/coverage metrics used by
  the Figure 2 and GPT-4o comparison benchmarks.
"""

from .impact import (
    ImpactResult,
    impact_analysis,
    downstream_columns,
    upstream_columns,
    explore,
    merge_impacts,
    column_known,
    nearest_column,
)
from .reach import ReachabilityIndex
from .selector import (
    Selector,
    SelectorError,
    SelectorImpact,
    parse_selector,
    selector_impact,
)
from .diff import GraphDiff, diff_graphs
from .metrics import edge_metrics, column_metrics, MetricReport
from .ordering import (
    creation_order,
    drop_order,
    migration_script,
    root_tables,
    terminal_views,
    unused_base_columns,
)

__all__ = [
    "ImpactResult",
    "impact_analysis",
    "downstream_columns",
    "upstream_columns",
    "explore",
    "merge_impacts",
    "column_known",
    "nearest_column",
    "ReachabilityIndex",
    "Selector",
    "SelectorError",
    "SelectorImpact",
    "parse_selector",
    "selector_impact",
    "GraphDiff",
    "diff_graphs",
    "edge_metrics",
    "column_metrics",
    "MetricReport",
    "creation_order",
    "drop_order",
    "migration_script",
    "root_tables",
    "terminal_views",
    "unused_base_columns",
]
