"""InfoTracker-style impact selectors.

A selector names a set of start columns plus the traversal directions,
in the syntax dbt/InfoTracker users already know:

=====================  ==================================================
``name``               downstream of ``name`` (the default direction)
``name+``              downstream of ``name``
``+name``              upstream of ``name``
``+name+``             both directions
``schema.table.*``     every column of the relation (wildcard)
``table``              bare relation name — same as ``table.*``
=====================  ==================================================

``name`` itself is ``table.column`` / ``schema.table.column`` dotted
text; the last dotted part is the column (matching
:meth:`~repro.core.column_refs.ColumnName.parse`), so ``a.b.*`` selects
every column of relation ``a.b``.  Depth limiting is an orthogonal knob
(``--max-depth`` on the CLI, ``max_depth=`` on the server) rather than
selector syntax.

:func:`selector_impact` lowers a parsed selector onto the (indexed)
impact queries of :mod:`repro.analysis.impact` and merges multi-start
results kind-correctly.
"""

from dataclasses import dataclass

from ..core.column_refs import ColumnName
from ..core.errors import UnknownColumnError
from .impact import impact_analysis, merge_impacts, nearest_column


class SelectorError(ValueError):
    """The selector text does not parse."""


@dataclass(frozen=True)
class Selector:
    """One parsed selector: a start set and the directions to walk."""

    text: str              # the original text, normalised
    table: str             # relation part
    column: str            # column part ("" for wildcards)
    wildcard: bool         # True for table.* / bare-table selectors
    upstream: bool
    downstream: bool

    @property
    def directions(self):
        result = []
        if self.upstream:
            result.append("upstream")
        if self.downstream:
            result.append("downstream")
        return result


def parse_selector(text):
    """Parse selector ``text`` into a :class:`Selector`.

    Raises :class:`SelectorError` on empty or malformed input.
    """
    raw = str(text).strip()
    body = raw
    upstream = downstream = False
    if body.startswith("+"):
        upstream = True
        body = body[1:]
    if body.endswith("+"):
        downstream = True
        body = body[:-1]
    if not upstream and not downstream:
        downstream = True
    body = body.strip()
    if not body or "+" in body:
        raise SelectorError(f"malformed selector: {text!r}")

    wildcard = False
    if body.endswith(".*"):
        wildcard = True
        body = body[:-2]
        if not body:
            raise SelectorError(f"malformed selector: {text!r}")
        table, column = body, ""
    elif "." in body:
        name = ColumnName.parse(body)
        table, column = name.table, name.column
    else:
        # a bare relation name selects all of its columns
        wildcard = True
        table, column = body, ""

    normalised = ("+" if upstream else "") + body + (".*" if wildcard else "")
    if downstream and upstream:
        normalised += "+"
    elif downstream and raw.endswith("+"):
        normalised += "+"
    return Selector(
        text=normalised,
        table=table,
        column=column,
        wildcard=wildcard,
        upstream=upstream,
        downstream=downstream,
    )


def selector_starts(graph, selector):
    """The concrete start columns ``selector`` names in ``graph``.

    Raises :class:`~repro.core.errors.UnknownColumnError` (with a
    nearest-name hint) when the relation or column does not exist, or the
    wildcard expands to nothing.
    """
    if selector.wildcard:
        columns = graph.columns_of(selector.table)
        if not columns:
            probe = ColumnName.of(selector.table, "*")
            raise UnknownColumnError(
                f"{selector.table}.*", hint=nearest_column(graph, probe)
            )
        return [ColumnName.of(selector.table, column) for column in columns]
    return [ColumnName.of(selector.table, selector.column)]


@dataclass
class SelectorImpact:
    """The outcome of a selector query: merged per-direction results."""

    selector: Selector
    starts: list
    upstream: object = None     # merged ImpactResult or None
    downstream: object = None   # merged ImpactResult or None

    def to_payload(self):
        """A JSON-friendly shape (the server's ``/impact?selector=`` body)."""
        payload = {
            "selector": self.selector.text,
            "starts": [str(start) for start in sorted(self.starts)],
        }
        for direction in ("upstream", "downstream"):
            result = getattr(self, direction)
            if result is None:
                continue
            payload[direction] = {
                "impacted_tables": result.impacted_tables(),
                "columns": [
                    {"table": table, "column": column, "kind": kind}
                    for table, column, kind in result.to_rows()
                ],
            }
        return payload

    def report(self):
        """A printable multi-line report (the CLI's output)."""
        lines = [f"Impact analysis for selector {self.selector.text}:"]
        lines.append(
            "  start columns:    "
            + ", ".join(str(start) for start in sorted(self.starts))
        )
        for direction in ("upstream", "downstream"):
            result = getattr(self, direction)
            if result is None:
                continue
            lines.append(f"  {direction}:")
            lines.append(
                f"    impacted tables:  "
                f"{', '.join(result.impacted_tables()) or '(none)'}"
            )
            lines.append(f"    impacted columns: {len(result.all_columns)}")
            for table, column, kind in result.to_rows():
                lines.append(f"      {table}.{column:<20s} [{kind}]")
        return "\n".join(lines)


def selector_impact(graph, selector, max_depth=None, method="auto"):
    """Run the impact queries a selector describes and merge the results.

    ``selector`` may be text or an already-parsed :class:`Selector`.
    Unknown names raise :class:`~repro.core.errors.UnknownColumnError`
    (selector queries are explicit user queries, so a typo should never
    masquerade as an empty closure).
    """
    if not isinstance(selector, Selector):
        selector = parse_selector(selector)
    starts = selector_starts(graph, selector)
    outcome = SelectorImpact(selector=selector, starts=starts)
    missing = "empty" if selector.wildcard else "raise"
    for direction in selector.directions:
        results = [
            impact_analysis(
                graph, start, direction=direction,
                max_depth=max_depth, method=method, missing=missing,
            )
            for start in starts
        ]
        setattr(outcome, direction, merge_impacts(results))
    return outcome
