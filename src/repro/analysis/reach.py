"""Precomputed reachability index over the column lineage graph.

The interactive workflows of Section IV — impact analysis from a column,
dependency ordering, explore — are all transitive-closure questions.  The
kind-tracking BFS in :mod:`repro.analysis.impact` answers them in
O(traversal): every query walks every edge it can reach, which on the
100k-statement tier means a single ``/impact`` call touches hundreds of
thousands of edges while the serving daemon holds that work on its read
path.

:class:`ReachabilityIndex` precomputes, once per graph version, enough
structure to answer the same queries in O(answer size):

* **SCC condensation** (iterative Tarjan, cycle- and self-read-safe): the
  column graph collapses to a DAG of strongly connected components.
* **Interval-labelled spanning forests**, one per direction.  A DFS over
  the condensation assigns each component a contiguous preorder interval
  ``[pre, post)`` covering exactly its tree descendants, so the bulk of a
  closure is read off as a slice of the preorder array; the non-tree
  condensation edges become per-component *exception lists* followed at
  query time.  Memory stays O(V + E) — sub-quadratic by construction.
* **Kind purity classes** per node and direction, so the
  contributed/referenced/both partition of an answer is resolved without
  re-walking paths: a reached node whose in-edges are all one kind is
  classified by a table lookup, and only genuinely mixed nodes pay a
  short in-edge scan (matching the BFS semantics exactly: a reached
  node's kinds are the kinds of its in-edges from reached predecessors).
* **Table-level orders** (the exact Kahn order of
  :mod:`repro.analysis.ordering`, cached) so ``/ordering`` readers answer
  from the snapshot without re-traversing.

Indexes are immutable once built; a graph swaps in a fresh instance when
its state token moves.  :meth:`ReachabilityIndex.refreshed` rebuilds
incrementally for the append-only case (new relations reading existing
ones — the serving daemon's steady state): new nodes get their own
appended forest and old→new edges become exception entries, leaving the
existing labelling untouched.  Anything else falls back to a full build.
"""

from ..core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE
from ..core.errors import CyclicDependencyError

try:  # the vector fast path; the pure-Python walk below is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

_DOWN = "downstream"
_UP = "upstream"

#: kind bitmasks used by the partition fast path
_KIND_BITS = {EDGE_CONTRIBUTE: 1, EDGE_REFERENCE: 2, EDGE_BOTH: 3}

#: bound on memoised (start, direction) partitions per index instance
_RESULT_CACHE_LIMIT = 4096


class NameSet:
    """An immutable set of column names materialised as a plain list.

    Building a real ``frozenset`` hashes every element through a
    Python-level ``__hash__`` — on a 100k-tier impact answer that costs
    more than computing the answer itself.  The serving and rendering
    paths only *iterate* and *count*, so the index hands out this view:
    length, iteration, and truthiness are O(1)/O(n) with no hashing, and
    the first operation that genuinely needs hash-set semantics
    (membership, set algebra, comparison) materialises a ``frozenset``
    once and caches it.  The wrapped list is duplicate-free by
    construction and must never be mutated.
    """

    __slots__ = ("_names", "_frozen")

    def __init__(self, names):
        self._names = names
        self._frozen = None

    def _materialise(self):
        frozen = self._frozen
        if frozen is None:
            frozen = self._frozen = frozenset(self._names)
        return frozen

    @staticmethod
    def _coerce(other):
        if isinstance(other, NameSet):
            return other._materialise()
        if isinstance(other, (set, frozenset)):
            return other
        return None

    def __len__(self):
        return len(self._names)

    def __iter__(self):
        return iter(self._names)

    def __contains__(self, item):
        return item in self._materialise()

    def __hash__(self):
        return hash(self._materialise())

    def __repr__(self):
        return f"NameSet({self._materialise()!r})"

    def __eq__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() == coerced

    def __lt__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() < coerced

    def __le__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() <= coerced

    def __gt__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() > coerced

    def __ge__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() >= coerced

    def __or__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() | coerced

    __ror__ = __or__

    def __and__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() & coerced

    __rand__ = __and__

    def __sub__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() - coerced

    def __rsub__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return coerced - self._materialise()

    def __xor__(self, other):
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self._materialise() ^ coerced

    __rxor__ = __xor__


class _Vectors:
    """One direction's position-domain arrays for the numpy fast path."""

    __slots__ = (
        "order_np",      # position -> comp id (int64)
        "ones",          # \x01 template for claiming slices of the seen map
        "post_ints",     # position -> end of descendant slice (plain list)
        "indptr_ints",   # position -> exception CSR offset (plain list)
        "exc_data",      # exception target positions, CSR data (int64)
        "exc_ints",      # the same data as a plain list (small batches)
        "cls_pos",       # position -> singleton purity class, -1 multi (int8)
        "names_pos",     # position -> singleton member's name or None
        "sole_pos",      # position -> singleton member's node id or -1
        "node_pos",      # node id -> its component's position (int64)
        "names_np",      # node id -> column name (object)
        "mixed_ptr",     # node id -> row in the mixed CSRs, or -1 (int64)
        "mixed_rows",    # number of mixed-purity nodes
        "mb_indptr", "mb_data",   # in-edge sources of kind "both"
        "mc_indptr", "mc_data",   # ... of kind "contribute"
        "mr_indptr", "mr_data",   # ... of kind "reference"
        "mixed_indptr_ints",      # the three indptrs as plain lists
        "mixed_data_ints",        # the three data rows as plain lists
    )


class _Forest:
    """One direction's interval-labelled spanning forest over components."""

    __slots__ = ("pre", "post", "order", "exceptions")

    def __init__(self, pre, post, order, exceptions):
        self.pre = pre                  # comp id -> preorder position
        self.post = post                # comp id -> end of descendant slice
        self.order = order              # preorder position -> comp id
        self.exceptions = exceptions    # comp id -> tuple of comp ids

    def exception_count(self):
        return sum(len(entry) for entry in self.exceptions)


def _tarjan(n, out):
    """Iterative Tarjan SCC over ``out`` (int adjacency lists).

    Returns ``(comp_of, members)``: component id per node and a list of
    member tuples (node ids).  Deterministic for a fixed adjacency.
    """
    index = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    stack = []
    comp_of = [-1] * n
    members = []
    counter = 0
    for root in range(n):
        if index[root] != -1:
            continue
        work = [(root, 0)]
        while work:
            v, edge_pos = work[-1]
            if edge_pos == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = 1
            descended = False
            adjacency = out[v]
            for i in range(edge_pos, len(adjacency)):
                w = adjacency[i]
                if index[w] == -1:
                    work[-1] = (v, i + 1)
                    work.append((w, 0))
                    descended = True
                    break
                if on_stack[w] and low[w] < low[v]:
                    low[v] = low[w]
            if descended:
                continue
            work.pop()
            if low[v] == index[v]:
                group = []
                comp = len(members)
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    comp_of[w] = comp
                    group.append(w)
                    if w == v:
                        break
                members.append(tuple(group))
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
    return comp_of, members


def _comp_targets(comp, members, comp_of, out):
    """Deduplicated condensation successors of ``comp`` (deterministic)."""
    seen = {comp}
    result = []
    for v in members[comp]:
        for w in out[v]:
            d = comp_of[w]
            if d not in seen:
                seen.add(d)
                result.append(d)
    return result


def _grow_forest(pre, post, order, exceptions, roots, members, comp_of, out,
                 appendable):
    """DFS ``roots``, assigning intervals; edges leaving ``appendable`` or
    hitting visited components become exceptions.  Mutates the arrays in
    place (callers pass fresh copies for copy-on-write refreshes)."""
    visited = set()
    for root in roots:
        if root in visited:
            continue
        visited.add(root)
        pre[root] = len(order)
        order.append(root)
        stack = [(root, iter(_comp_targets(root, members, comp_of, out)))]
        extra = {}
        while stack:
            comp, targets = stack[-1]
            descended = False
            for d in targets:
                if d in visited or d not in appendable:
                    extra.setdefault(comp, []).append(d)
                    continue
                visited.add(d)
                pre[d] = len(order)
                order.append(d)
                stack.append((d, iter(_comp_targets(d, members, comp_of, out))))
                descended = True
                break
            if descended:
                continue
            post[comp] = len(order)
            stack.pop()
        for comp, targets in extra.items():
            existing = exceptions[comp]
            if existing:
                merged = list(existing)
                known = set(existing)
                merged.extend(d for d in targets if d not in known)
                exceptions[comp] = tuple(merged)
            else:
                exceptions[comp] = tuple(targets)
    # an exception into the component's own descendant slice is redundant:
    # the interval already covers the target, and the closure walk scans
    # every slice member's exceptions anyway.  Dropping them turns DAG
    # forward/cross edges into free riders and keeps exception lists to
    # the edges that genuinely escape the spanning tree.
    for comp, extra in enumerate(exceptions):
        if not extra:
            continue
        lo, hi = pre[comp], post[comp]
        kept = tuple(d for d in extra if not lo <= pre[d] < hi)
        if len(kept) != len(extra):
            exceptions[comp] = kept


def _kind_class(kinds):
    """Purity class of an in-edge kind collection: 1/2/3 pure, 0 mixed."""
    first = None
    for kind in kinds:
        if first is None:
            first = kind
        elif kind != first:
            return 0
    if first is None:
        return 0
    return _KIND_BITS[first]


class ReachabilityIndex:
    """Immutable per-version reachability labels for one lineage graph."""

    __slots__ = (
        "revision",
        "_forward", "_reverse",
        "_names", "_ids",
        "_comp_of", "_members", "_cyclic",
        "_forests",
        "_pure",
        "_mixed_in",
        "_vector",
        "_cache",
        "_table_names", "_table_forward", "_table_reverse",
        "_view_names", "_base_names",
        "_table_cache",
    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph):
        """Full build from ``graph``'s cached adjacency index."""
        index = graph._ensure_index()
        self = cls.__new__(cls)
        self.revision = 0
        self._init_graph_views(graph)
        forward, reverse = index.forward, index.reverse
        self._forward = forward
        self._reverse = reverse

        ids = {}
        names = []
        for node in forward:
            if node not in ids:
                ids[node] = len(names)
                names.append(node)
        for node in reverse:
            if node not in ids:
                ids[node] = len(names)
                names.append(node)
        self._names = names
        self._ids = ids
        n = len(names)

        out = [()] * n
        inn = [()] * n
        self_loops = set()
        for node, targets in forward.items():
            v = ids[node]
            row = [ids[t] for t in targets]
            out[v] = row
            if v in row:
                self_loops.add(v)
        for node, sources in reverse.items():
            inn[ids[node]] = [ids[s] for s in sources]

        comp_of, members = _tarjan(n, out)
        self._comp_of = comp_of
        self._members = members
        self._cyclic = [
            len(group) > 1 or group[0] in self_loops for group in members
        ]

        comp_count = len(members)
        everything = range(comp_count)
        # Tarjan completes components in reverse topological order of the
        # forward graph; seeding each forest's DFS in that direction's
        # topological order grows maximal trees (a deep chain becomes one
        # slice, not a ladder of single-component exceptions)
        roots_by_direction = {
            _DOWN: range(comp_count - 1, -1, -1),
            _UP: everything,
        }
        forests = {}
        for direction, adjacency in ((_DOWN, out), (_UP, inn)):
            pre = [0] * comp_count
            post = [0] * comp_count
            order = []
            exceptions = [()] * comp_count
            _grow_forest(pre, post, order, exceptions,
                         roots_by_direction[direction],
                         members, comp_of, adjacency, everything)
            forests[direction] = _Forest(pre, post, order, exceptions)
        self._forests = forests

        self._pure = {
            _DOWN: self._purity(reverse, ids, n),
            _UP: self._purity(forward, ids, n),
        }
        # eager scan groups for every mixed-purity node: first-query
        # latency must not pay a per-node conversion the build can do once
        self._mixed_in = {_DOWN: {}, _UP: {}}
        for direction, in_adjacency in ((_DOWN, reverse), (_UP, forward)):
            pure = self._pure[direction]
            for node in in_adjacency:
                node_id = ids[node]
                if not pure[node_id]:
                    self._mixed_edges(node_id, direction)
        self._cache = {}
        self._vector = {}
        if _np is not None:
            # eager: a frozen snapshot's first /impact reader must not pay
            # the position-array derivation inside its own latency
            self._vectors(_DOWN)
            self._vectors(_UP)
        return self

    def _init_graph_views(self, graph):
        index = graph._ensure_index()
        self._table_names = list(graph.relations)
        self._table_forward = index.table_forward
        self._table_reverse = index.table_reverse
        views = []
        bases = []
        for name, entry in graph.relations.items():
            (bases if entry.is_base_table else views).append(name)
        self._view_names = views
        self._base_names = bases
        self._table_cache = {}

    @staticmethod
    def _purity(in_adjacency, ids, n):
        pure = [0] * n
        for node, sources in in_adjacency.items():
            pure[ids[node]] = _kind_class(sources.values())
        return pure

    # ------------------------------------------------------------------
    # Incremental refresh (append-only fast path)
    # ------------------------------------------------------------------
    def refreshed(self, graph):
        """A new index for ``graph`` reusing this one's labelling, or ``None``.

        Applicable exactly when the graph grew append-only relative to the
        graph this index was built from: every old node kept its edges and
        kinds, gained edges (if any) point at brand-new nodes, and new
        nodes only point at new nodes.  That is the steady state of the
        serving daemon (each batch adds views reading existing relations),
        and the patch costs O(delta + compare) instead of a full rebuild.
        Returns ``None`` whenever the delta is not append-only — the
        caller falls back to :meth:`build`.
        """
        index = graph._ensure_index()
        new_forward, new_reverse = index.forward, index.reverse
        old_forward = self._forward
        ids = self._ids
        names = self._names
        n_old = len(names)

        new_ids = {}
        new_nodes = []
        for source in (new_forward, new_reverse):
            for node in source:
                if node not in ids and node not in new_ids:
                    new_ids[node] = n_old + len(new_nodes)
                    new_nodes.append(node)

        # every previously indexed out-edge set must survive
        for node in old_forward:
            if node not in new_forward:
                return None

        gained = {}  # old node id -> added {target: kind}
        for node, targets in new_forward.items():
            old_id = ids.get(node)
            if old_id is None:
                # brand-new node: appending is only sound if it cannot
                # reach back into the labelled region (no new→old edges,
                # which could close cycles through old components)
                for target in targets:
                    if target in ids:
                        return None
                continue
            old_targets = old_forward.get(node)
            if old_targets is None:
                added = targets
            elif targets == old_targets:
                continue
            else:
                if len(targets) < len(old_targets):
                    return None
                added = {}
                for target, kind in targets.items():
                    old_kind = old_targets.get(target)
                    if old_kind is None:
                        added[target] = kind
                    elif old_kind != kind:
                        return None
                if len(added) != len(targets) - len(old_targets):
                    return None
            for target in added:
                if target not in new_ids:
                    return None
            gained[old_id] = added

        clone = ReachabilityIndex.__new__(ReachabilityIndex)
        clone.revision = self.revision + 1
        clone._init_graph_views(graph)
        clone._forward = new_forward
        clone._reverse = new_reverse
        clone._cache = {}
        # scan groups carry over by copy: downstream in-edges of old nodes
        # are untouched by an append; upstream groups are dropped exactly
        # for the old nodes that gained out-edges (rebuilt lazily), and
        # new nodes fill in lazily on first query
        up_groups = dict(self._mixed_in[_UP])
        for old_id in gained:
            up_groups.pop(old_id, None)
        clone._mixed_in = {_DOWN: dict(self._mixed_in[_DOWN]), _UP: up_groups}
        # position arrays are derived lazily on the clone: the refresh
        # itself stays delta-sized, and the first query per direction
        # re-derives in vectorised time
        clone._vector = {}

        n_new = len(new_nodes)
        clone._names = names + new_nodes
        merged_ids = dict(ids)
        merged_ids.update(new_ids)
        clone._ids = merged_ids

        if not n_new and not gained:
            # identical edge set (dict objects rebuilt, content unchanged):
            # the labelling carries over untouched
            clone._comp_of = self._comp_of
            clone._members = self._members
            clone._cyclic = self._cyclic
            clone._forests = self._forests
            clone._pure = self._pure
            clone._vector = self._vector  # same labelling, same positions
            return clone

        n_total = n_old + n_new
        out_new = [()] * n_new
        self_loops = set()
        for local, node in enumerate(new_nodes):
            targets = new_forward.get(node)
            if targets:
                row = [new_ids[t] - n_old for t in targets]
                out_new[local] = row
                if local in row:
                    self_loops.add(local)

        local_comp_of, local_members = _tarjan(n_new, out_new)
        comp_base = len(self._members)
        comp_of = list(self._comp_of)
        comp_of.extend(local_comp_of[i] + comp_base for i in range(n_new))
        members = list(self._members)
        cyclic = list(self._cyclic)
        for group in local_members:
            members.append(tuple(n_old + v for v in group))
            cyclic.append(len(group) > 1 or group[0] in self_loops)
        clone._comp_of = comp_of
        clone._members = members
        clone._cyclic = cyclic

        comp_count = len(members)
        new_comp_range = range(comp_base, comp_count)
        appendable = set(new_comp_range)

        # global int adjacency for just the appended region
        out = [()] * n_total
        inn = [()] * n_total
        for node in new_nodes:
            v = merged_ids[node]
            targets = new_forward.get(node)
            if targets:
                out[v] = [merged_ids[t] for t in targets]
            sources = new_reverse.get(node)
            if sources:
                inn[v] = [merged_ids[s] for s in sources]

        roots_by_direction = {
            _DOWN: range(comp_count - 1, comp_base - 1, -1),
            _UP: new_comp_range,
        }
        forests = {}
        for direction, adjacency in ((_DOWN, out), (_UP, inn)):
            old = self._forests[direction]
            pre = old.pre + [0] * (comp_count - comp_base)
            post = old.post + [0] * (comp_count - comp_base)
            order = list(old.order)
            exceptions = list(old.exceptions) + [()] * (comp_count - comp_base)
            _grow_forest(pre, post, order, exceptions,
                         roots_by_direction[direction],
                         members, comp_of, adjacency, appendable)
            forests[direction] = _Forest(pre, post, order, exceptions)

        # old→new edges enter the downstream forest as exceptions on the
        # (already labelled) source components
        down_exceptions = forests[_DOWN].exceptions
        for old_id, added in gained.items():
            comp = comp_of[old_id]
            existing = down_exceptions[comp]
            known = set(existing)
            merged = list(existing)
            for target in added:
                target_comp = comp_of[merged_ids[target]]
                if target_comp not in known:
                    known.add(target_comp)
                    merged.append(target_comp)
            down_exceptions[comp] = tuple(merged)
        clone._forests = forests

        # purity: downstream in-edges (reverse adjacency) of old nodes are
        # untouched by an append; upstream in-edges (forward adjacency)
        # changed exactly for the nodes that gained out-edges
        pure_down = self._pure[_DOWN] + [0] * n_new
        pure_up = self._pure[_UP] + [0] * n_new
        for node in new_nodes:
            node_id = merged_ids[node]
            sources = new_reverse.get(node)
            if sources:
                pure_down[node_id] = _kind_class(sources.values())
            targets = new_forward.get(node)
            if targets:
                pure_up[node_id] = _kind_class(targets.values())
        for old_id in gained:
            pure_up[old_id] = _kind_class(new_forward[names[old_id]].values())
        clone._pure = {_DOWN: pure_down, _UP: pure_up}
        return clone

    # ------------------------------------------------------------------
    # Column-level queries
    # ------------------------------------------------------------------
    def _closure_comps(self, start_comp, forest):
        pre = forest.pre
        post = forest.post
        order = forest.order
        exceptions = forest.exceptions
        seen = set()
        pending = [start_comp]
        while pending:
            comp = pending.pop()
            if comp in seen:
                continue
            for member in order[pre[comp]:post[comp]]:
                if member in seen:
                    continue
                seen.add(member)
                extra = exceptions[member]
                if extra:
                    pending.extend(extra)
        return seen

    def closure(self, column, direction=_DOWN):
        """Node ids strictly reachable from ``column`` (BFS-equivalent set).

        The start itself is included exactly when it can reach itself —
        i.e. it sits in a cyclic component (self-read or larger cycle) —
        matching the BFS, which only reports re-reached starts.
        """
        start_id = self._ids.get(column)
        if start_id is None:
            return ()
        forest = self._forests[direction]
        start_comp = self._comp_of[start_id]
        comps = self._closure_comps(start_comp, forest)
        if not self._cyclic[start_comp]:
            comps.discard(start_comp)
        members = self._members
        reached = []
        for comp in comps:
            reached.extend(members[comp])
        return reached

    def partition(self, column, direction=_DOWN):
        """``(contributed, referenced, both)`` :class:`NameSet` views.

        Byte-identical in content to the kind-tracking BFS partition: a
        reached column's kinds are the union of the kinds of its in-edges
        whose source is the start or itself reached.  Each partition is a
        duplicate-free :class:`NameSet` — iteration and counting never
        hash; hash-set semantics materialise lazily.  Results are
        memoised per (start, direction) — an index belongs to exactly one
        graph version, so cached partitions can never go stale.
        """
        start_id = self._ids.get(column)
        if start_id is None:
            return (NameSet([]), NameSet([]), NameSet([]))
        key = (start_id, direction)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if _np is not None:
            parts = self._partition_vector(start_id, direction)
        else:
            parts = self._partition_python(start_id, direction)
        result = tuple(NameSet(names) for names in parts)
        if len(self._cache) >= _RESULT_CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = result
        return result

    def _partition_python(self, start_id, direction):
        """Pure-Python partition walk (the no-numpy fallback).

        One fused pass: classify members while the forest walk discovers
        them, instead of materialising the closure and re-iterating it.
        Pure-purity nodes (the overwhelming majority) are classified
        inline from the static per-node class; mixed nodes are deferred
        until the walk completes, because their class depends on which
        of their in-edge sources are reached — answered at component
        granularity via the walk's ``seen`` set (an acyclic start
        component is a singleton, so its presence can never mark a
        non-reached sibling as a member).
        """
        start_comp = self._comp_of[start_id]
        skip_start = None if self._cyclic[start_comp] else start_id
        forest = self._forests[direction]
        pre = forest.pre
        post = forest.post
        order = forest.order
        exceptions = forest.exceptions
        members = self._members
        name_at = self._names.__getitem__
        comp_at = self._comp_of.__getitem__
        pure_at = self._pure[direction].__getitem__
        mixed_cache = self._mixed_in[direction]

        contributed = []
        referenced = []
        both = []
        deferred = []
        seen = set()
        seen_add = seen.add
        pending = [start_comp]
        while pending:
            comp = pending.pop()
            if comp in seen:
                continue
            for member_comp in order[pre[comp]:post[comp]]:
                if member_comp in seen:
                    continue
                seen_add(member_comp)
                extra = exceptions[member_comp]
                if extra:
                    pending.extend(extra)
                for node_id in members[member_comp]:
                    if node_id == skip_start:
                        continue
                    bits = pure_at(node_id)
                    if bits == 1:
                        contributed.append(name_at(node_id))
                    elif bits == 2:
                        referenced.append(name_at(node_id))
                    elif bits == 3:
                        both.append(name_at(node_id))
                    else:
                        deferred.append(node_id)

        for node_id in deferred:
            entry = mixed_cache.get(node_id)
            if entry is None:
                entry = self._mixed_edges(node_id, direction)
            both_sources, contribute_sources, reference_sources = entry
            bits = 0
            for u in both_sources:
                if comp_at(u) in seen:
                    bits = 3
                    break
            if bits != 3:
                for u in contribute_sources:
                    if comp_at(u) in seen:
                        bits = 1
                        break
                for u in reference_sources:
                    if comp_at(u) in seen:
                        bits |= 2
                        break
            if bits == 1:
                contributed.append(name_at(node_id))
            elif bits == 2:
                referenced.append(name_at(node_id))
            elif bits == 3:
                both.append(name_at(node_id))

        return contributed, referenced, both

    def _vectors(self, direction):
        """Position-domain arrays for the numpy partition walk (memoised).

        Everything is re-indexed from component ids to *preorder
        positions* so the walk operates on contiguous slices of flat
        arrays: ``post_pos[i]`` is the end of the descendant slice of the
        component at position ``i``; the CSR pair ``exc_indptr``/
        ``exc_data`` holds every exception target (as a position) for the
        component at each position, so one slice fetches the exceptions
        of an entire subtree; ``cls_pos`` is the purity class of the sole
        member of a singleton component (``-1`` flags multi-member
        components, resolved member-by-member in Python — they are rare);
        ``names_pos``/``sole_pos`` carry the singleton's column name and
        node id; ``node_pos`` maps any node id to its component's
        position for mixed-kind membership tests.
        """
        forest = self._forests[direction]
        order = forest.order
        pre = forest.pre
        n_comp = len(order)
        vec = _Vectors()
        vec.order_np = _np.array(order, dtype=_np.int64)
        vec.ones = b"\x01" * n_comp
        # scalar-indexed arrays stay plain lists: the walk reads them one
        # int at a time, where list indexing beats numpy scalar boxing
        vec.post_ints = [forest.post[comp] for comp in order]

        data = []
        exceptions = forest.exceptions
        indptr_ints = [0] * (n_comp + 1)
        for pos, comp in enumerate(order):
            extra = exceptions[comp]
            if extra:
                data.extend(pre[d] for d in extra)
            indptr_ints[pos + 1] = len(data)
        vec.indptr_ints = indptr_ints
        vec.exc_data = _np.array(data, dtype=_np.int64)
        # list twin for the walk's small-batch path: slicing a list is a
        # straight copy, where the numpy slice + tolist pays ~0.5 us of
        # fixed overhead per pop — the dominant cost on fragmented
        # (hub-heavy) closures with tens of thousands of tiny batches
        vec.exc_ints = data

        members = self._members
        pure = self._pure[direction]
        names = self._names
        n = len(names)
        cls_list = [0] * n_comp
        names_pos = _np.empty(n_comp, dtype=object)
        sole_pos = _np.full(n_comp, -1, dtype=_np.int64)
        for pos, comp in enumerate(order):
            group = members[comp]
            if len(group) == 1:
                node_id = group[0]
                bits = pure[node_id]
                cls_list[pos] = bits
                sole_pos[pos] = node_id
                if bits:
                    names_pos[pos] = names[node_id]
            else:
                cls_list[pos] = -1
        vec.cls_pos = _np.array(cls_list, dtype=_np.int8)
        vec.names_pos = names_pos
        vec.sole_pos = sole_pos

        if self._comp_of:
            vec.node_pos = _np.array(pre, dtype=_np.int64)[
                _np.array(self._comp_of, dtype=_np.int64)
            ]
        else:
            vec.node_pos = _np.empty(0, dtype=_np.int64)
        vec.names_np = _np.fromiter(names, dtype=object, count=n)

        # mixed-purity in-edge sources as kind-grouped CSRs over source
        # *positions*: one reduceat over the whole population classifies
        # every reached mixed node per query, replacing the per-node
        # Python source scans of the fallback
        in_adjacency = self._reverse if direction == _DOWN else self._forward
        ids = self._ids
        comp_of = self._comp_of
        mixed_ids = sorted(
            node_id for node_id in range(n) if not pure[node_id]
            and names[node_id] in in_adjacency
        )
        mixed_ptr = _np.full(n, -1, dtype=_np.int64)
        rows = ([], [], [])        # both / contribute / reference data
        indptrs = ([0], [0], [0])
        for row, node_id in enumerate(mixed_ids):
            mixed_ptr[node_id] = row
            for source, kind in in_adjacency[names[node_id]].items():
                bits = _KIND_BITS[kind]
                rows[0 if bits == 3 else bits].append(
                    pre[comp_of[ids[source]]]
                )
            for group, data in zip(indptrs, rows):
                group.append(len(data))
        vec.mixed_ptr = mixed_ptr
        vec.mixed_rows = len(mixed_ids)
        vec.mb_indptr = _np.array(indptrs[0], dtype=_np.int64)
        vec.mb_data = _np.array(rows[0], dtype=_np.int64)
        vec.mc_indptr = _np.array(indptrs[1], dtype=_np.int64)
        vec.mc_data = _np.array(rows[1], dtype=_np.int64)
        vec.mr_indptr = _np.array(indptrs[2], dtype=_np.int64)
        vec.mr_data = _np.array(rows[2], dtype=_np.int64)
        # plain-list twins for the sparse per-node path: small queries
        # resolve only the mixed rows they actually reached instead of
        # paying a whole-population reduceat
        vec.mixed_indptr_ints = indptrs
        vec.mixed_data_ints = rows

        self._vector[direction] = vec
        return vec

    def _partition_vector(self, start_id, direction):
        """Vectorised partition walk over the position-domain arrays.

        The forest walk becomes slice arithmetic: each stack pop claims
        one subtree's worth of unseen positions in a single boolean-mask
        operation and batch-filters that whole subtree's exception
        targets, so the per-edge Python loop of the fallback disappears.
        Classification is three mask-gathers over the singleton purity
        array; only multi-member components and genuinely mixed-kind
        nodes drop back to per-node Python.
        """
        vec = self._vector.get(direction)
        if vec is None:
            vec = self._vectors(direction)
        start_comp = self._comp_of[start_id]
        p0 = self._forests[direction].pre[start_comp]

        post_ints = vec.post_ints
        indptr_ints = vec.indptr_ints
        exc_data = vec.exc_data
        exc_ints = vec.exc_ints
        ones = vec.ones
        # the seen map lives in a bytearray (C-speed scalar reads and
        # slice claims) with a shared-memory numpy view for the batched
        # operations — both see every write instantly
        seen_raw = bytearray(len(vec.order_np))
        seen_u8 = _np.frombuffer(seen_raw, dtype=_np.uint8)
        stack = [p0]
        pop = stack.pop
        push = stack.append
        extend = stack.extend
        while stack:
            p = pop()
            if seen_raw[p]:
                continue
            hi = post_ints[p]
            seen_raw[p:hi] = ones[p:hi]
            lo_e = indptr_ints[p]
            hi_e = indptr_ints[hi]
            if hi_e == lo_e:
                continue
            if hi_e - lo_e <= 64:
                # tiny exception batches (the common case) are cheaper as
                # a plain loop over the list twin than as a numpy gather
                for q in exc_ints[lo_e:hi_e]:
                    if not seen_raw[q]:
                        push(q)
            else:
                cand = exc_data[lo_e:hi_e]
                new = cand[seen_u8[cand] == 0]
                if new.size:
                    extend(new.tolist())

        # ``seen`` is now exactly the closure's position set; an acyclic
        # start is excluded from its own answer (matching the BFS, which
        # only reports re-reached starts) but restored below, because the
        # mixed-kind membership tests count edges from the start
        cyclic_start = self._cyclic[start_comp]
        if not cyclic_start:
            seen_raw[p0] = 0
        allpos = _np.nonzero(seen_u8)[0]
        if not cyclic_start:
            seen_raw[p0] = 1
        seen = seen_u8.view(_np.bool_)
        cls_pos = vec.cls_pos
        names_pos = vec.names_pos
        cls = cls_pos[allpos]
        contributed = names_pos[allpos[cls == 1]].tolist()
        referenced = names_pos[allpos[cls == 2]].tolist()
        both = names_pos[allpos[cls == 3]].tolist()

        slow = allpos[cls <= 0]
        if slow.size:
            names_np = vec.names_np
            sole_pos = vec.sole_pos
            mixed_ptr = vec.mixed_ptr
            slow_cls = cls[cls <= 0]
            singles = slow[slow_cls == 0]
            multis = slow[slow_cls < 0]
            # the whole-population reduceat costs O(mixed population) no
            # matter how small the answer; below ~1/8 of the population
            # the per-row scans win and keep tiny queries O(answer-size)
            dense = slow.size * 8 >= vec.mixed_rows
            bits_arr = self._mixed_bits(vec, seen) if dense else None
            if singles.size:
                # a reached mixed singleton always has in-edges in this
                # direction, so its mixed row is guaranteed to exist
                node_ids = sole_pos[singles]
                if dense:
                    bits = bits_arr[mixed_ptr[node_ids]]
                    contributed.extend(names_np[node_ids[bits == 1]].tolist())
                    referenced.extend(names_np[node_ids[bits == 2]].tolist())
                    both.extend(names_np[node_ids[bits == 3]].tolist())
                else:
                    rows_l = mixed_ptr[node_ids].tolist()
                    names_l = names_np[node_ids].tolist()
                    for row, name in zip(rows_l, names_l):
                        bits = self._mixed_bits_one(vec, seen_raw, row)
                        if bits == 1:
                            contributed.append(name)
                        elif bits == 2:
                            referenced.append(name)
                        elif bits == 3:
                            both.append(name)
            if multis.size:
                members = self._members
                pure = self._pure[direction]
                names = self._names
                order = self._forests[direction].order
                for pos in multis.tolist():
                    for node_id in members[order[pos]]:
                        bits = pure[node_id]
                        if not bits:
                            if dense:
                                bits = int(bits_arr[mixed_ptr[node_id]])
                            else:
                                bits = self._mixed_bits_one(
                                    vec, seen_raw, int(mixed_ptr[node_id])
                                )
                        if bits == 1:
                            contributed.append(names[node_id])
                        elif bits == 2:
                            referenced.append(names[node_id])
                        elif bits == 3:
                            both.append(names[node_id])
        return contributed, referenced, both

    @staticmethod
    def _mixed_bits_one(vec, seen_raw, row):
        """Kind bits of one mixed row via plain-list scans of ``seen_raw``.

        The sparse twin of :meth:`_mixed_bits`: per-group early-exit scans
        over the row's source positions, reading the walk's bytearray
        directly.  Cost is O(row in-degree) — what small answers need.
        """
        b_ind, c_ind, r_ind = vec.mixed_indptr_ints
        b_dat, c_dat, r_dat = vec.mixed_data_ints
        for q in b_dat[b_ind[row]:b_ind[row + 1]]:
            if seen_raw[q]:
                return 3
        bits = 0
        for q in c_dat[c_ind[row]:c_ind[row + 1]]:
            if seen_raw[q]:
                bits = 1
                break
        for q in r_dat[r_ind[row]:r_ind[row + 1]]:
            if seen_raw[q]:
                bits |= 2
                break
        return bits

    @staticmethod
    def _mixed_bits(vec, seen):
        """Kind bits of every mixed-purity node against the ``seen`` mask.

        One ``logical_or.reduceat`` per kind group over the whole mixed
        population: a node's answer class is 3 when any "both"-kind
        in-edge source is reached, else the OR of 1 (any reached
        contribute source) and 2 (any reached reference source) —
        identical to the fallback's per-node early-exit scans.
        """
        rows = vec.mixed_rows

        def any_reached(indptr, data):
            hit = _np.zeros(rows, dtype=bool)
            if data.size:
                counts = _np.diff(indptr)
                nonempty = counts > 0
                # empty CSR segments occupy zero data, so the nonempty
                # segment starts are valid reduceat boundaries
                hit[nonempty] = _np.logical_or.reduceat(
                    seen[data], indptr[:-1][nonempty]
                )
            return hit

        has_both = any_reached(vec.mb_indptr, vec.mb_data)
        has_contribute = any_reached(vec.mc_indptr, vec.mc_data)
        has_reference = any_reached(vec.mr_indptr, vec.mr_data)
        bits = (
            has_contribute.astype(_np.int8)
            | (has_reference.astype(_np.int8) << 1)
        )
        bits[has_both] = 3
        return bits

    def _mixed_edges(self, node_id, direction):
        """In-edge source ids of a mixed-purity node, grouped by edge kind.

        ``(both, contribute, reference)`` int tuples, memoised per node —
        the partition scan then tests small int sets (with per-group early
        exit) instead of iterating string-keyed adjacency dicts on every
        query.  Derivation is pure (the adjacency captured at build), so
        the memo can never go stale within one index version.
        """
        in_adjacency = self._reverse if direction == _DOWN else self._forward
        ids = self._ids
        groups = ([], [], [])
        for source, kind in in_adjacency[self._names[node_id]].items():
            bits = _KIND_BITS[kind]
            groups[0 if bits == 3 else bits].append(ids[source])
        entry = (tuple(groups[0]), tuple(groups[1]), tuple(groups[2]))
        self._mixed_in[direction][node_id] = entry
        return entry

    def knows(self, column):
        """Whether ``column`` is a node of the indexed edge set."""
        return column in self._ids

    def deep_starts(self, direction=_DOWN, limit=20):
        """Columns with the largest spanning-subtree spans, deepest first.

        A component's preorder interval width is a cheap lower bound on
        its closure size, so these are worst-case query starts — the
        benchmark measures indexed-vs-BFS latency on them without paying
        an O(nodes x answer) sweep to find them.  Deterministic: ties
        break on component id, and each component is represented by its
        first member.
        """
        forest = self._forests[direction]
        pre, post = forest.pre, forest.post
        spans = sorted(
            ((post[comp] - pre[comp], comp) for comp in range(len(self._members))),
            key=lambda item: (-item[0], item[1]),
        )
        return [
            self._names[self._members[comp][0]]
            for _, comp in spans[: max(0, int(limit))]
        ]

    # ------------------------------------------------------------------
    # Table-level queries (the /ordering read path)
    # ------------------------------------------------------------------
    def table_order(self):
        """All relations in the exact Kahn order of ``_topological_tables``.

        Memoised, including the cyclic outcome: repeated ``/ordering``
        reads against one snapshot re-raise an equivalent
        :class:`~repro.core.errors.CyclicDependencyError` without
        re-running Kahn.
        """
        cached = self._table_cache.get("order")
        if cached is None:
            from .ordering import _kahn_order
            try:
                cached = ("ok", _kahn_order(
                    self._table_names, self._table_forward, self._table_reverse
                ))
            except CyclicDependencyError as error:
                cached = ("cycle", list(error.cycle))
            self._table_cache["order"] = cached
        tag, value = cached
        if tag == "cycle":
            raise CyclicDependencyError(value)
        return value

    def terminal_views(self):
        cached = self._table_cache.get("terminal")
        if cached is None:
            successors = self._table_forward
            cached = sorted(
                name for name in self._view_names if not successors.get(name)
            )
            self._table_cache["terminal"] = cached
        return cached

    def root_tables(self):
        cached = self._table_cache.get("roots")
        if cached is None:
            successors = self._table_forward
            cached = sorted(
                name for name in self._base_names if successors.get(name)
            )
            self._table_cache["roots"] = cached
        return cached

    def table_closure(self, table, direction=_DOWN):
        """All tables transitively reachable from ``table`` (memoised)."""
        key = (table, direction)
        cached = self._table_cache.get(key)
        if cached is None:
            adjacency = (
                self._table_forward if direction == _DOWN else self._table_reverse
            )
            reached = set()
            frontier = [table]
            while frontier:
                current = frontier.pop()
                for neighbor in adjacency.get(current, ()):
                    if neighbor != table and neighbor not in reached:
                        reached.add(neighbor)
                        frontier.append(neighbor)
            cached = frozenset(reached)
            self._table_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self):
        """Size and shape summary (benchmarks and ``/stats``)."""
        down = self._forests[_DOWN]
        up = self._forests[_UP]
        return {
            "nodes": len(self._names),
            "components": len(self._members),
            "cyclic_components": sum(1 for flag in self._cyclic if flag),
            "exceptions_downstream": down.exception_count(),
            "exceptions_upstream": up.exception_count(),
            "revision": self.revision,
        }
