"""Dialect-level helpers: identifier folding and quoting.

LineageX targets PostgreSQL-style semantics: unquoted identifiers fold to
lower case, quoted identifiers preserve case.  The lineage code normalises
every table and column name through :func:`normalize_identifier` so that
``Orders.OID``, ``orders.oid`` and ``"orders".oid`` all refer to the same
column.
"""

import re

_SAFE_IDENTIFIER = re.compile(r"^[a-z_][a-z0-9_$]*$")


def normalize_identifier(name):
    """Fold an identifier to its canonical (lower-case) form.

    ``None`` is passed through so optional qualifiers stay optional.
    """
    if name is None:
        return None
    return name.lower()


def normalize_name(name):
    """Normalise a possibly-dotted object name (``Schema.Table`` style)."""
    if name is None:
        return None
    return ".".join(normalize_identifier(part) for part in str(name).split("."))


def quote_identifier(name):
    """Quote an identifier for SQL output if it needs quoting."""
    if name is None:
        return ""
    if _SAFE_IDENTIFIER.match(name):
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def quote_literal(value):
    """Render a Python string as a SQL string literal."""
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
