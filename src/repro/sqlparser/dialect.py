"""Dialect-level helpers: identifier folding and quoting.

LineageX targets PostgreSQL-style semantics: unquoted identifiers fold to
lower case, quoted identifiers preserve case.  The lineage code normalises
every table and column name through :func:`normalize_identifier` so that
``Orders.OID``, ``orders.oid`` and ``"orders".oid`` all refer to the same
column.
"""

import re

_SAFE_IDENTIFIER = re.compile(r"^[a-z_][a-z0-9_$]*$")


#: identifier -> folded form (same rationale as ``_NAME_CACHE`` below:
#: the same handful of identifiers is folded tens of thousands of times
#: per run, and most are already lower-case).
_IDENTIFIER_CACHE = {}
_IDENTIFIER_CACHE_LIMIT = 65536


def normalize_identifier(name):
    """Fold an identifier to its canonical (lower-case) form.

    ``None`` is passed through so optional qualifiers stay optional.
    """
    if type(name) is not str:
        if name is None:
            return None
        return str(name).lower()
    folded = _IDENTIFIER_CACHE.get(name)
    if folded is None:
        folded = name.lower()
        if len(_IDENTIFIER_CACHE) < _IDENTIFIER_CACHE_LIMIT:
            _IDENTIFIER_CACHE[name] = folded
    return folded


#: Case-folding is per character, so lowering a whole dotted name is
#: exactly equivalent to lowering each dot-separated part — normalising an
#: object name (``Schema.Table`` style) and normalising a bare identifier
#: are the same operation, sharing one implementation and one memo cache.
normalize_name = normalize_identifier


#: identifier -> quoted form.  The canonical printer quotes the same small
#: vocabulary of identifiers over and over; a capped cache skips the regex.
_QUOTE_CACHE = {}
_QUOTE_CACHE_LIMIT = 65536


def quote_identifier(name):
    """Quote an identifier for SQL output if it needs quoting."""
    if name is None:
        return ""
    quoted = _QUOTE_CACHE.get(name)
    if quoted is None:
        if _SAFE_IDENTIFIER.match(name):
            quoted = name
        else:
            escaped = name.replace('"', '""')
            quoted = f'"{escaped}"'
        if len(_QUOTE_CACHE) < _QUOTE_CACHE_LIMIT:
            _QUOTE_CACHE[name] = quoted
    return quoted


def quote_literal(value):
    """Render a Python string as a SQL string literal."""
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
