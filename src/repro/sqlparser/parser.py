"""A recursive-descent parser for a PostgreSQL-flavoured SQL dialect.

The parser consumes the token stream produced by
:mod:`repro.sqlparser.lexer` and builds the AST defined in
:mod:`repro.sqlparser.ast_nodes`.  It supports the SQL surface the LineageX
lineage extractor needs:

* ``SELECT`` with ``DISTINCT [ON]``, arbitrary projections, aliases, ``*``
  and ``table.*`` stars;
* ``FROM`` with base tables, derived tables, ``VALUES`` lists, set-returning
  functions, and all join types (``INNER``/``LEFT``/``RIGHT``/``FULL``/
  ``CROSS``, ``ON``/``USING``/``NATURAL``);
* ``WHERE``, ``GROUP BY``, ``HAVING``, ``ORDER BY``, ``LIMIT``/``OFFSET``,
  named ``WINDOW`` clauses;
* ``WITH [RECURSIVE]`` common table expressions;
* set operations ``UNION [ALL]``, ``INTERSECT [ALL]``, ``EXCEPT [ALL]`` with
  standard precedence (``INTERSECT`` binds tighter);
* scalar expressions: operators, ``CASE``, ``CAST``/``::``, ``EXTRACT``,
  ``EXISTS``, ``IN``, ``BETWEEN``, ``LIKE``/``ILIKE``, ``IS NULL``, function
  calls with ``DISTINCT``/``FILTER``/``OVER`` windows, subqueries;
* statements: ``CREATE [OR REPLACE] [MATERIALIZED] VIEW``, ``CREATE TABLE``
  (DDL column list), ``CREATE [TEMP] TABLE ... AS``, ``INSERT INTO ...
  SELECT/VALUES`` with an optional ``ON CONFLICT [(cols)] DO UPDATE SET
  .../DO NOTHING`` tail, ``MERGE INTO ... USING ... ON ... WHEN [NOT]
  MATCHED [AND ...] THEN UPDATE/DELETE/INSERT/DO NOTHING``, ``DROP
  TABLE/VIEW``, and bare queries;
* warehouse-grade SELECT clauses: post-window ``QUALIFY`` and ``GROUP BY
  GROUPING SETS / ROLLUP / CUBE`` grouping elements.
"""

from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType
from . import ast_nodes as ast


def parse(sql, keep_comments=False):
    """Parse a SQL script and return a list of statements."""
    return Parser(sql, keep_comments=keep_comments).parse_script()


def parse_one(sql):
    """Parse exactly one statement; raise :class:`ParseError` otherwise."""
    statements = parse(sql)
    if len(statements) != 1:
        raise ParseError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]


#: Join-introducing keywords used when deciding whether a FROM item continues.
_JOIN_KEYWORDS = ("JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "NATURAL")

#: Keywords that may legally follow an aliased FROM item, hence are never
#: themselves treated as implicit aliases.
_NOT_ALIAS_KEYWORDS = {
    "WHERE",
    "GROUP",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "UNION",
    "INTERSECT",
    "EXCEPT",
    "ON",
    "USING",
    "JOIN",
    "INNER",
    "LEFT",
    "RIGHT",
    "FULL",
    "CROSS",
    "NATURAL",
    "WINDOW",
    "FETCH",
    "FOR",
    "WITH",
    "SET",
    "AND",
    "OR",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "AS",
    "ASC",
    "DESC",
    "NULLS",
    "FROM",
    "SELECT",
    "INTO",
    "VALUES",
    "RETURNING",
}


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, sql, keep_comments=False):
        self.sql = sql
        tokens = tokenize(sql, keep_comments=keep_comments)
        if keep_comments:
            # the lexer only emits COMMENT tokens when asked to keep them;
            # the parser itself never consumes comments either way
            tokens = [token for token in tokens if token.type != TokenType.COMMENT]
        self.tokens = tokens
        self.index = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    #
    # The stream always ends with an EOF token that ``_advance`` never
    # moves past, so ``tokens[index]`` is valid without bounds clamping —
    # these helpers are the parser's innermost loop (hundreds of thousands
    # of calls per script) and stay branch-minimal on purpose.
    # ------------------------------------------------------------------
    def _peek(self, offset=0):
        tokens = self.tokens
        index = self.index + offset
        if index >= len(tokens):
            return tokens[-1]
        return tokens[index]

    def _current(self):
        return self.tokens[self.index]

    def _advance(self):
        index = self.index
        tokens = self.tokens
        token = tokens[index]
        if index < len(tokens) - 1:
            self.index = index + 1
        return token

    def _at_keyword(self, *names):
        token = self.tokens[self.index]
        return token.type is TokenType.KEYWORD and token.value in names

    def _at_type(self, token_type):
        return self.tokens[self.index].type is token_type

    def _match_keyword(self, *names):
        token = self.tokens[self.index]
        if token.type is TokenType.KEYWORD and token.value in names:
            # a KEYWORD is never the trailing EOF token, so the bounds
            # guard of _advance is unnecessary
            self.index += 1
            return token
        return None

    def _match_type(self, token_type):
        token = self.tokens[self.index]
        if token.type is token_type:
            if token_type is not TokenType.EOF:
                self.index += 1
            return token
        return None

    def _expect_keyword(self, *names):
        token = self._match_keyword(*names)
        if token is None:
            raise ParseError(
                f"expected keyword {' or '.join(names)}", self._current()
            )
        return token

    def _expect_type(self, token_type, description=None):
        token = self._match_type(token_type)
        if token is None:
            raise ParseError(
                f"expected {description or token_type.name}", self._current()
            )
        return token

    def _error(self, message):
        raise ParseError(message, self._current())

    # ------------------------------------------------------------------
    # Identifiers and names
    # ------------------------------------------------------------------
    def _parse_identifier(self):
        token = self.tokens[self.index]
        token_type = token.type
        if (
            token_type is TokenType.IDENTIFIER
            or token_type is TokenType.QUOTED_IDENTIFIER
        ):
            self.index += 1
            return token.value
        # Allow non-reserved-looking keywords to double as identifiers in a
        # pinch (e.g. a column called "year" would be an IDENTIFIER already,
        # but things like "row" or "key" are keywords in our list).
        if token.type == TokenType.KEYWORD and token.value in (
            "ROW",
            "KEY",
            "SET",
            "FIRST",
            "LAST",
            "IF",
            "REPLACE",
            "TEMP",
            "RANGE",
        ):
            self._advance()
            return token.value.lower()
        self._error("expected identifier")

    def _parse_qualified_name(self):
        parts = [self._parse_identifier()]
        while self._at_type(TokenType.DOT):
            self._advance()
            if self._at_type(TokenType.STAR):
                # caller handles stars; put the dot back conceptually by
                # returning what we have (only reachable from expressions)
                break
            parts.append(self._parse_identifier())
        return ast.QualifiedName(parts)

    # ------------------------------------------------------------------
    # Script / statements
    # ------------------------------------------------------------------
    def parse_script(self):
        """Parse the full input into a list of statements."""
        statements = []
        while not self._at_type(TokenType.EOF):
            if self._match_type(TokenType.SEMICOLON):
                continue
            statements.append(self.parse_statement())
            if not self._at_type(TokenType.EOF):
                if not self._match_type(TokenType.SEMICOLON):
                    # a statement parsed cleanly but tokens remain: this is
                    # trailing garbage (or a missing semicolon), never
                    # something to accept silently
                    token = self._current()
                    self._error(
                        f"unexpected token {token.value!r} after end of "
                        "statement (expected ';' or end of input)"
                    )
        return statements

    def parse_statement(self):
        """Parse a single statement."""
        if self._at_keyword("CREATE"):
            return self._parse_create()
        if self._at_keyword("INSERT"):
            return self._parse_insert()
        if self._at_word("MERGE") and self._peek(1).is_keyword("INTO"):
            # MERGE is a *soft* keyword: only the 'MERGE INTO' bigram starts
            # a merge statement, so corpora using 'merge' as a column/table
            # name keep parsing
            return self._parse_merge()
        if self._at_keyword("UPDATE"):
            return self._parse_update()
        if self._at_keyword("DELETE"):
            return self._parse_delete()
        if self._at_keyword("DROP"):
            return self._parse_drop()
        if (
            self._at_keyword("SELECT", "WITH", "VALUES")
            or self._at_type(TokenType.LPAREN)
        ):
            query = self.parse_query_expression()
            return ast.QueryStatement(query=query)
        self._error("expected a statement")

    # -- CREATE ---------------------------------------------------------
    def _parse_create(self):
        self._expect_keyword("CREATE")
        or_replace = False
        if self._match_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        temporary = bool(self._match_keyword("TEMP", "TEMPORARY"))
        materialized = bool(self._match_keyword("MATERIALIZED"))
        if self._match_keyword("VIEW"):
            return self._parse_create_view(or_replace, materialized)
        if self._match_keyword("TABLE"):
            return self._parse_create_table(temporary)
        self._error("expected VIEW or TABLE after CREATE")

    def _parse_create_view(self, or_replace, materialized):
        name = self._parse_qualified_name()
        column_names = []
        if self._at_type(TokenType.LPAREN):
            column_names = self._parse_name_list()
        self._expect_keyword("AS")
        query = self.parse_query_expression()
        return ast.CreateView(
            name=name,
            column_names=column_names,
            query=query,
            or_replace=or_replace,
            materialized=materialized,
        )

    def _parse_create_table(self, temporary):
        if_not_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("NOT")
            # NOT EXISTS
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._parse_qualified_name()
        if self._match_keyword("AS"):
            query = self.parse_query_expression()
            return ast.CreateTableAs(
                name=name,
                query=query,
                temporary=temporary,
                if_not_exists=if_not_exists,
            )
        if self._at_type(TokenType.LPAREN):
            columns = self._parse_column_defs()
            return ast.CreateTable(
                name=name,
                columns=columns,
                temporary=temporary,
                if_not_exists=if_not_exists,
            )
        self._error("expected AS or a column list in CREATE TABLE")

    def _parse_column_defs(self):
        self._expect_type(TokenType.LPAREN, "'('")
        columns = []
        while True:
            if self._at_keyword("PRIMARY", "UNIQUE", "FOREIGN") or (
                self._at_type(TokenType.IDENTIFIER)
                and self._current().value.upper() in ("CONSTRAINT", "CHECK", "FOREIGN")
            ):
                # table-level constraint: consume until the matching comma or
                # the closing parenthesis at depth zero.
                self._skip_balanced_until_comma_or_rparen()
            else:
                column_name = self._parse_identifier()
                type_name = self._parse_type_name()
                constraints = self._parse_column_constraints()
                columns.append(
                    ast.ColumnDef(
                        name=column_name,
                        type_name=type_name,
                        constraints=constraints,
                    )
                )
            if self._match_type(TokenType.COMMA):
                continue
            self._expect_type(TokenType.RPAREN, "')'")
            break
        return columns

    def _parse_type_name(self):
        parts = []
        token = self._current()
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            parts.append(self._advance().value)
        else:
            self._error("expected a type name")
        # multi-word types: double precision, character varying, timestamp
        # with time zone, etc.
        while self._at_type(TokenType.IDENTIFIER) and self._current().value.lower() in (
            "precision",
            "varying",
            "zone",
        ):
            parts.append(self._advance().value)
        if self._at_keyword("WITH"):
            save = self.index
            self._advance()
            if (
                self._at_type(TokenType.IDENTIFIER)
                and self._current().value.lower() in ("time", "timezone")
            ):
                parts.append("with")
                while self._at_type(TokenType.IDENTIFIER) and self._current().value.lower() in (
                    "time",
                    "zone",
                    "timezone",
                ):
                    parts.append(self._advance().value)
            else:
                self.index = save
        if self._at_type(TokenType.LPAREN):
            # length/precision arguments, e.g. varchar(255), numeric(10, 2)
            depth = 0
            text = ""
            while True:
                token = self._advance()
                if token.type == TokenType.LPAREN:
                    depth += 1
                elif token.type == TokenType.RPAREN:
                    depth -= 1
                text += token.value
                if depth == 0:
                    break
            parts.append(text)
        return " ".join(parts)

    def _parse_column_constraints(self):
        constraints = []
        while not self._at_type(TokenType.COMMA) and not self._at_type(
            TokenType.RPAREN
        ) and not self._at_type(TokenType.EOF):
            token = self._advance()
            if token.type == TokenType.LPAREN:
                # skip balanced parens inside constraints (CHECK, DEFAULT fn)
                depth = 1
                while depth > 0 and not self._at_type(TokenType.EOF):
                    inner = self._advance()
                    if inner.type == TokenType.LPAREN:
                        depth += 1
                    elif inner.type == TokenType.RPAREN:
                        depth -= 1
                constraints.append("(...)")
            else:
                constraints.append(token.value)
        return constraints

    def _skip_balanced_until_comma_or_rparen(self):
        depth = 0
        while not self._at_type(TokenType.EOF):
            token = self._current()
            if token.type == TokenType.LPAREN:
                depth += 1
            elif token.type == TokenType.RPAREN:
                if depth == 0:
                    return
                depth -= 1
            elif token.type == TokenType.COMMA and depth == 0:
                return
            self._advance()

    # -- INSERT ---------------------------------------------------------
    def _parse_insert(self):
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_qualified_name()
        columns = []
        if self._at_type(TokenType.LPAREN):
            save = self.index
            try:
                columns = self._parse_name_list()
            except ParseError:
                self.index = save
        if self._at_keyword("VALUES"):
            self._advance()
            rows = self._parse_values_rows()
            on_conflict = self._parse_on_conflict()
            return ast.InsertStatement(
                table=table, columns=columns, values=rows, on_conflict=on_conflict
            )
        query = self.parse_query_expression()
        on_conflict = self._parse_on_conflict()
        return ast.InsertStatement(
            table=table, columns=columns, query=query, on_conflict=on_conflict
        )

    def _at_word(self, *words, offset=0):
        """True when the token at ``offset`` is an identifier spelling one of
        ``words`` case-insensitively (non-reserved keywords like CONFLICT,
        DO, NOTHING, ROLLUP stay plain identifiers everywhere else)."""
        token = self._peek(offset)
        return token.type is TokenType.IDENTIFIER and token.value.upper() in words

    def _parse_on_conflict(self):
        """The optional ``ON CONFLICT [(cols)] DO ...`` tail of an INSERT."""
        if not (self._at_keyword("ON") and self._at_word("CONFLICT", offset=1)):
            return None
        self._advance()
        self._advance()
        columns = []
        if self._at_type(TokenType.LPAREN):
            columns = self._parse_name_list()
        if not self._at_word("DO"):
            self._error("expected DO in ON CONFLICT clause")
        self._advance()
        if self._match_keyword("UPDATE"):
            self._expect_keyword("SET")
            assignments = self._parse_assignment_list()
            where = None
            if self._match_keyword("WHERE"):
                where = self.parse_expression()
            return ast.OnConflictClause(
                columns=columns, do_update=True, assignments=assignments, where=where
            )
        if self._at_word("NOTHING"):
            self._advance()
            return ast.OnConflictClause(columns=columns, do_update=False)
        self._error("expected UPDATE or NOTHING after DO in ON CONFLICT")

    # -- MERGE ----------------------------------------------------------
    def _parse_merge(self):
        if not self._at_word("MERGE"):
            self._error("expected MERGE")
        self._advance()
        self._expect_keyword("INTO")
        target = self._parse_qualified_name()
        alias = None
        if self._match_keyword("AS"):
            alias = self._parse_identifier()
        elif self._at_type(TokenType.IDENTIFIER):
            alias = self._parse_identifier()
        self._expect_keyword("USING")
        source = self._parse_table_primary()
        self._expect_keyword("ON")
        condition = self.parse_expression()
        when_clauses = []
        while self._at_keyword("WHEN"):
            when_clauses.append(self._parse_merge_when())
        if not when_clauses:
            self._error("expected at least one WHEN clause in MERGE")
        return ast.MergeStatement(
            target=target,
            alias=alias,
            source=source,
            condition=condition,
            when_clauses=when_clauses,
        )

    def _parse_merge_when(self):
        self._expect_keyword("WHEN")
        matched = not bool(self._match_keyword("NOT"))
        if not self._at_word("MATCHED"):
            # MATCHED is a soft keyword: it is only special right here
            self._error("expected MATCHED after WHEN in MERGE")
        self._advance()
        condition = None
        if self._match_keyword("AND"):
            condition = self.parse_expression()
        self._expect_keyword("THEN")
        if self._match_keyword("UPDATE"):
            if not matched:
                self._error("WHEN NOT MATCHED cannot UPDATE (no row to update)")
            self._expect_keyword("SET")
            assignments = self._parse_assignment_list()
            return ast.MergeWhen(
                matched=matched,
                condition=condition,
                action="update",
                assignments=assignments,
            )
        if self._match_keyword("DELETE"):
            if not matched:
                self._error("WHEN NOT MATCHED cannot DELETE (no row to delete)")
            return ast.MergeWhen(matched=matched, condition=condition, action="delete")
        if self._at_keyword("INSERT") and matched:
            self._error("WHEN MATCHED cannot INSERT (the row already exists)")
        if self._match_keyword("INSERT"):
            columns = []
            if self._at_type(TokenType.LPAREN):
                columns = self._parse_name_list()
            values = []
            self._expect_keyword("VALUES")
            self._expect_type(TokenType.LPAREN, "'('")
            values.append(self.parse_expression())
            while self._match_type(TokenType.COMMA):
                values.append(self.parse_expression())
            self._expect_type(TokenType.RPAREN, "')'")
            if columns and len(columns) != len(values):
                self._error(
                    f"MERGE INSERT declares {len(columns)} columns but "
                    f"VALUES supplies {len(values)} expressions"
                )
            return ast.MergeWhen(
                matched=matched,
                condition=condition,
                action="insert",
                columns=columns,
                values=values,
            )
        if self._at_word("DO") and self._at_word("NOTHING", offset=1):
            self._advance()
            self._advance()
            return ast.MergeWhen(matched=matched, condition=condition, action="nothing")
        self._error("expected UPDATE, DELETE, INSERT or DO NOTHING after THEN")

    def _parse_values_rows(self):
        rows = []
        while True:
            self._expect_type(TokenType.LPAREN, "'('")
            row = [self.parse_expression()]
            while self._match_type(TokenType.COMMA):
                row.append(self.parse_expression())
            self._expect_type(TokenType.RPAREN, "')'")
            rows.append(row)
            if not self._match_type(TokenType.COMMA):
                break
        return rows

    # -- UPDATE / DELETE --------------------------------------------------
    def _parse_update(self):
        self._expect_keyword("UPDATE")
        table = self._parse_qualified_name()
        alias = None
        if self._match_keyword("AS"):
            alias = self._parse_identifier()
        elif self._at_type(TokenType.IDENTIFIER) and not self._at_keyword("SET"):
            alias = self._parse_identifier()
        self._expect_keyword("SET")
        assignments = self._parse_assignment_list()
        from_sources = []
        if self._match_keyword("FROM"):
            from_sources = self._parse_from_list()
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression()
        return ast.UpdateStatement(
            table=table,
            alias=alias,
            assignments=assignments,
            from_sources=from_sources,
            where=where,
        )

    def _parse_assignment(self):
        column = self._parse_identifier()
        token = self._current()
        if token.type == TokenType.OPERATOR and token.value == "=":
            self._advance()
        else:
            self._error("expected '=' in UPDATE assignment")
        return (column, self.parse_expression())

    def _parse_assignment_list(self):
        """``col = expr [, col = expr ...]`` (UPDATE / ON CONFLICT / MERGE)."""
        assignments = [self._parse_assignment()]
        while self._match_type(TokenType.COMMA):
            assignments.append(self._parse_assignment())
        return assignments

    def _parse_delete(self):
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_qualified_name()
        alias = None
        if self._match_keyword("AS"):
            alias = self._parse_identifier()
        elif self._at_type(TokenType.IDENTIFIER):
            alias = self._parse_identifier()
        using_sources = []
        if self._match_keyword("USING"):
            using_sources = self._parse_from_list()
        where = None
        if self._match_keyword("WHERE"):
            where = self.parse_expression()
        return ast.DeleteStatement(
            table=table, alias=alias, using_sources=using_sources, where=where
        )

    # -- DROP -----------------------------------------------------------
    def _parse_drop(self):
        self._expect_keyword("DROP")
        materialized = bool(self._match_keyword("MATERIALIZED"))
        token = self._expect_keyword("TABLE", "VIEW")
        object_type = token.value
        if materialized:
            object_type = "MATERIALIZED VIEW"
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._parse_qualified_name()
        cascade = False
        if self._at_type(TokenType.IDENTIFIER) and self._current().value.upper() in (
            "CASCADE",
            "RESTRICT",
        ):
            cascade = self._advance().value.upper() == "CASCADE"
        return ast.DropStatement(
            object_type=object_type, name=name, if_exists=if_exists, cascade=cascade
        )

    # ------------------------------------------------------------------
    # Query expressions
    # ------------------------------------------------------------------
    def parse_query_expression(self):
        """Parse a query expression: WITH, set operations, ORDER BY, LIMIT."""
        ctes = []
        recursive = False
        if self._match_keyword("WITH"):
            recursive = bool(self._match_keyword("RECURSIVE"))
            ctes.append(self._parse_cte())
            while self._match_type(TokenType.COMMA):
                ctes.append(self._parse_cte())
        query = self._parse_set_expression()
        order_by, limit, offset = self._parse_trailing_clauses()
        query = self._attach_query_extras(query, ctes, recursive, order_by, limit, offset)
        return query

    def _attach_query_extras(self, query, ctes, recursive, order_by, limit, offset):
        if isinstance(query, ast.Select):
            if ctes:
                query.ctes = ctes + query.ctes
                query.recursive = query.recursive or recursive
            if order_by:
                query.order_by = order_by
            if limit is not None:
                query.limit = limit
            if offset is not None:
                query.offset = offset
        elif isinstance(query, ast.SetOperation):
            if ctes:
                query.ctes = ctes + query.ctes
            if order_by:
                query.order_by = order_by
            if limit is not None:
                query.limit = limit
            if offset is not None:
                query.offset = offset
        return query

    def _parse_cte(self):
        name = self._parse_identifier()
        column_names = []
        if self._at_type(TokenType.LPAREN):
            column_names = self._parse_name_list()
        self._expect_keyword("AS")
        materialized = None
        if self._match_keyword("MATERIALIZED"):
            materialized = True
        elif self._at_keyword("NOT"):
            save = self.index
            self._advance()
            if self._match_keyword("MATERIALIZED"):
                materialized = False
            else:
                self.index = save
        self._expect_type(TokenType.LPAREN, "'('")
        query = self.parse_query_expression()
        self._expect_type(TokenType.RPAREN, "')'")
        return ast.CTE(
            name=name, column_names=column_names, query=query, materialized=materialized
        )

    def _parse_name_list(self):
        self._expect_type(TokenType.LPAREN, "'('")
        names = [self._parse_identifier()]
        while self._match_type(TokenType.COMMA):
            names.append(self._parse_identifier())
        self._expect_type(TokenType.RPAREN, "')'")
        return names

    def _parse_trailing_clauses(self):
        order_by = []
        limit = None
        offset = None
        while True:
            if self._match_keyword("ORDER"):
                self._expect_keyword("BY")
                order_by = self._parse_order_by_list()
            elif self._match_keyword("LIMIT"):
                if self._match_keyword("ALL"):
                    limit = ast.Literal(value=None, kind="null")
                else:
                    limit = self.parse_expression()
            elif self._match_keyword("OFFSET"):
                offset = self.parse_expression()
                self._match_keyword("ROW", "ROWS")
            elif self._match_keyword("FETCH"):
                self._expect_keyword("FIRST", "NEXT") if self._at_keyword(
                    "FIRST", "NEXT"
                ) else None
                if not self._at_keyword("ROW", "ROWS"):
                    limit = self.parse_expression()
                self._match_keyword("ROW", "ROWS")
                self._match_keyword("ONLY") if self._at_keyword("ONLY") else None
                # tolerate the non-keyword ONLY as identifier
                if self._at_type(TokenType.IDENTIFIER) and self._current().value.upper() == "ONLY":
                    self._advance()
            else:
                break
        return order_by, limit, offset

    def _parse_order_by_list(self):
        items = [self._parse_order_by_item()]
        while self._match_type(TokenType.COMMA):
            items.append(self._parse_order_by_item())
        return items

    def _parse_order_by_item(self):
        expression = self.parse_expression()
        descending = False
        if self._match_keyword("ASC"):
            descending = False
        elif self._match_keyword("DESC"):
            descending = True
        nulls = None
        if self._match_keyword("NULLS"):
            nulls = self._expect_keyword("FIRST", "LAST").value
        return ast.OrderByItem(expression=expression, descending=descending, nulls=nulls)

    def _parse_set_expression(self):
        """Parse set operations with INTERSECT binding tighter than UNION/EXCEPT."""
        left = self._parse_intersect_expression()
        while self._at_keyword("UNION", "EXCEPT"):
            operator = self._advance().value
            all_flag = bool(self._match_keyword("ALL"))
            self._match_keyword("DISTINCT")
            right = self._parse_intersect_expression()
            left = ast.SetOperation(
                operator=operator, all=all_flag, left=left, right=right
            )
        return left

    def _parse_intersect_expression(self):
        left = self._parse_query_primary()
        while self._at_keyword("INTERSECT"):
            self._advance()
            all_flag = bool(self._match_keyword("ALL"))
            self._match_keyword("DISTINCT")
            right = self._parse_query_primary()
            left = ast.SetOperation(
                operator="INTERSECT", all=all_flag, left=left, right=right
            )
        return left

    def _parse_query_primary(self):
        if self._at_type(TokenType.LPAREN):
            self._advance()
            query = self.parse_query_expression()
            self._expect_type(TokenType.RPAREN, "')'")
            return query
        if self._at_keyword("SELECT"):
            return self._parse_select_block()
        if self._at_keyword("VALUES"):
            self._advance()
            rows = self._parse_values_rows()
            # represent a top-level VALUES as a Select over a ValuesSource
            source = ast.ValuesSource(rows=rows, alias="values")
            projections = [ast.Projection(ast.Star())]
            return ast.Select(projections=projections, from_sources=[source])
        if self._at_keyword("WITH"):
            return self.parse_query_expression()
        self._error("expected SELECT, VALUES or a parenthesised query")

    def _parse_select_block(self):
        self._expect_keyword("SELECT")
        select = ast.Select()
        if self._match_keyword("ALL"):
            pass
        elif self._match_keyword("DISTINCT"):
            select.distinct = True
            if self._match_keyword("ON"):
                self._expect_type(TokenType.LPAREN, "'('")
                select.distinct_on.append(self.parse_expression())
                while self._match_type(TokenType.COMMA):
                    select.distinct_on.append(self.parse_expression())
                self._expect_type(TokenType.RPAREN, "')'")
        select.projections = self._parse_projection_list()
        if self._match_keyword("INTO"):
            # SELECT ... INTO target: record target as a create-table-as at a
            # higher level is not needed; skip the target name.
            self._parse_qualified_name()
        if self._match_keyword("FROM"):
            select.from_sources = self._parse_from_list()
        if self._match_keyword("WHERE"):
            select.where = self.parse_expression()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            select.group_by = self._parse_group_by_list()
        if self._match_keyword("HAVING"):
            select.having = self.parse_expression()
        # QUALIFY is accepted before or after a named WINDOW clause; the
        # canonical printer emits it after WINDOW
        self._try_parse_qualify(select)
        if self._match_keyword("WINDOW"):
            select.windows = self._parse_window_definitions()
        self._try_parse_qualify(select)
        return select

    def _try_parse_qualify(self, select):
        """Consume a QUALIFY clause if one starts here (soft keyword)."""
        if select.qualify is None and self._at_word("QUALIFY"):
            self._advance()
            select.qualify = self.parse_expression()

    def _parse_group_by_list(self):
        items = []
        while True:
            if self._match_keyword("ALL"):
                pass
            else:
                items.append(self._parse_grouping_element())
            if not self._match_type(TokenType.COMMA):
                break
        return items

    def _parse_grouping_element(self):
        """One GROUP BY element: a plain expression, or a structured
        ``GROUPING SETS (...)`` / ``ROLLUP (...)`` / ``CUBE (...)`` spec."""
        if self._at_word("ROLLUP", "CUBE") and self._peek(1).type is TokenType.LPAREN:
            kind = self._advance().value.upper()
            return ast.GroupingSetSpec(kind=kind, items=self._parse_grouping_items())
        if (
            self._at_word("GROUPING")
            and self._at_word("SETS", offset=1)
            and self._peek(2).type is TokenType.LPAREN
        ):
            self._advance()
            self._advance()
            return ast.GroupingSetSpec(
                kind="GROUPING SETS", items=self._parse_grouping_items()
            )
        return self.parse_expression()

    def _parse_grouping_items(self):
        self._expect_type(TokenType.LPAREN, "'('")
        items = [self._parse_grouping_item()]
        while self._match_type(TokenType.COMMA):
            items.append(self._parse_grouping_item())
        self._expect_type(TokenType.RPAREN, "')'")
        return items

    def _parse_grouping_item(self):
        """One grouping element: ``()``, ``(a, b)``, or a plain expression.

        Parenthesised elements always become :class:`~repro.sqlparser.
        ast_nodes.ExpressionList` (even single-column ones), so the printed
        form preserves the grouping structure the user wrote.
        """
        if self._at_type(TokenType.LPAREN):
            self._advance()
            if self._match_type(TokenType.RPAREN):
                return ast.ExpressionList(items=[])
            items = [self.parse_expression()]
            while self._match_type(TokenType.COMMA):
                items.append(self.parse_expression())
            self._expect_type(TokenType.RPAREN, "')'")
            return ast.ExpressionList(items=items)
        return self.parse_expression()

    def _parse_window_definitions(self):
        definitions = []
        while True:
            name = self._parse_identifier()
            self._expect_keyword("AS")
            self._expect_type(TokenType.LPAREN, "'('")
            spec = self._parse_window_spec_body()
            self._expect_type(TokenType.RPAREN, "')'")
            definitions.append((name, spec))
            if not self._match_type(TokenType.COMMA):
                break
        return definitions

    # -- Projections ------------------------------------------------------
    def _parse_projection_list(self):
        projections = [self._parse_projection()]
        while self._match_type(TokenType.COMMA):
            projections.append(self._parse_projection())
        return projections

    def _parse_projection(self):
        if self._at_type(TokenType.STAR):
            self._advance()
            return ast.Projection(ast.Star())
        expression = self.parse_expression()
        alias = self._parse_optional_alias()
        return ast.Projection(expression, alias)

    def _parse_optional_alias(self):
        if self._match_keyword("AS"):
            return self._parse_identifier()
        token = self._current()
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            self._advance()
            return token.value
        return None

    # -- FROM clause ------------------------------------------------------
    def _parse_from_list(self):
        sources = [self._parse_table_source()]
        while self._match_type(TokenType.COMMA):
            sources.append(self._parse_table_source())
        return sources

    def _parse_table_source(self):
        left = self._parse_table_primary()
        while True:
            natural = False
            join_type = None
            if self._at_keyword("NATURAL"):
                natural = True
                self._advance()
            if self._match_keyword("CROSS"):
                self._expect_keyword("JOIN")
                join_type = "CROSS"
            elif self._match_keyword("INNER"):
                self._expect_keyword("JOIN")
                join_type = "INNER"
            elif self._at_keyword("LEFT", "RIGHT", "FULL"):
                join_type = self._advance().value
                self._match_keyword("OUTER")
                self._expect_keyword("JOIN")
            elif self._match_keyword("JOIN"):
                join_type = "INNER"
            elif natural:
                self._error("expected JOIN after NATURAL")
            else:
                break
            right = self._parse_table_primary()
            condition = None
            using_columns = []
            if join_type != "CROSS" and not natural:
                if self._match_keyword("ON"):
                    condition = self.parse_expression()
                elif self._match_keyword("USING"):
                    using_columns = self._parse_name_list()
            left = ast.Join(
                left=left,
                right=right,
                join_type=join_type,
                condition=condition,
                using_columns=using_columns,
                natural=natural,
            )
        return left

    def _parse_table_primary(self):
        lateral = bool(self._match_keyword("LATERAL"))
        if self._at_type(TokenType.LPAREN):
            save = self.index
            self._advance()
            if self._at_keyword("VALUES"):
                self._advance()
                rows = self._parse_values_rows()
                self._expect_type(TokenType.RPAREN, "')'")
                alias, column_aliases = self._parse_source_alias()
                return ast.ValuesSource(
                    rows=rows, alias=alias, column_aliases=column_aliases
                )
            if self._at_keyword("SELECT", "WITH") or self._at_type(TokenType.LPAREN):
                query = self.parse_query_expression()
                self._expect_type(TokenType.RPAREN, "')'")
                alias, column_aliases = self._parse_source_alias()
                return ast.SubquerySource(
                    query=query,
                    alias=alias,
                    column_aliases=column_aliases,
                    lateral=lateral,
                )
            # parenthesised join: ( a JOIN b ON ... )
            self.index = save
            self._advance()
            source = self._parse_table_source()
            self._expect_type(TokenType.RPAREN, "')'")
            return source
        if self._at_keyword("VALUES"):
            self._advance()
            rows = self._parse_values_rows()
            alias, column_aliases = self._parse_source_alias()
            return ast.ValuesSource(rows=rows, alias=alias, column_aliases=column_aliases)
        name = self._parse_qualified_name()
        if self._at_type(TokenType.LPAREN):
            # a set-returning function used as a table source
            arguments, is_star = self._parse_call_arguments()
            function = ast.FunctionCall(
                name=name.dotted(), args=arguments, is_star_arg=is_star
            )
            alias, column_aliases = self._parse_source_alias()
            return ast.FunctionSource(
                function=function, alias=alias, column_aliases=column_aliases
            )
        alias, column_aliases = self._parse_source_alias()
        return ast.TableRef(name=name, alias=alias, column_aliases=column_aliases)

    #: soft clause-introducing words: a bare identifier spelling one of
    #: these is never consumed as an *implicit* FROM-item alias (write
    #: ``AS qualify`` or quote it to alias a source with this name) —
    #: mirroring _NOT_ALIAS_KEYWORDS for words that stay plain identifiers
    #: everywhere else.
    _NOT_ALIAS_WORDS = frozenset(("QUALIFY",))

    def _parse_source_alias(self):
        alias = None
        column_aliases = []
        if self._match_keyword("AS"):
            alias = self._parse_identifier()
        else:
            token = self._current()
            if (
                token.type is TokenType.IDENTIFIER
                and token.value.upper() in self._NOT_ALIAS_WORDS
            ):
                pass
            elif token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                alias = self._parse_identifier()
            elif (
                token.type == TokenType.KEYWORD
                and token.value not in _NOT_ALIAS_KEYWORDS
                and token.value
                in ("ROW", "KEY", "FIRST", "LAST", "TEMP", "IF", "RANGE")
            ):
                alias = self._parse_identifier()
        if alias is not None and self._at_type(TokenType.LPAREN):
            save = self.index
            try:
                column_aliases = self._parse_name_list()
            except ParseError:
                self.index = save
        return alias, column_aliases

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    #
    # Boolean keywords (OR < AND) and the plain binary operators
    # (comparison < additive < multiplicative) each climb a small
    # precedence table inside one loop instead of one recursion level per
    # tier — expression parsing is the parser's hottest region, and the
    # old eight-deep descent paid for every tier on every operand even
    # when nothing at that tier appeared.  The resulting trees are
    # identical (left-associative at every level).
    # ------------------------------------------------------------------
    def parse_expression(self):
        """Parse a scalar expression (entry point: OR precedence level)."""
        return self._parse_bool(1)

    def _parse_bool(self, min_precedence):
        left = self._parse_not()
        tokens = self.tokens
        while True:
            token = tokens[self.index]
            if token.type is not TokenType.KEYWORD:
                break
            if token.value == "AND":
                precedence = 2
            elif token.value == "OR":
                precedence = 1
            else:
                break
            if precedence < min_precedence:
                break
            self._advance()
            right = self._parse_bool(precedence + 1)
            left = ast.BinaryOp(token.value, left, right)
        return left

    def _parse_not(self):
        token = self.tokens[self.index]
        if (
            token.type is TokenType.KEYWORD
            and token.value == "NOT"
            and not self._peek(1).is_keyword("EXISTS")
        ):
            self._advance()
            operand = self._parse_not()
            return ast.UnaryOp(operator="NOT", operand=operand)
        return self._parse_comparison()

    #: comparison (and regex-match) operators handled at the predicate level.
    _COMPARISON_OPS = frozenset(
        ("=", "<", ">", "<=", ">=", "<>", "!=", "~", "~*", "!~", "!~*")
    )

    #: keywords that continue a predicate; anything else ends the level.
    _PREDICATE_KEYWORDS = frozenset(
        ("IS", "NOT", "IN", "BETWEEN", "LIKE", "ILIKE", "SIMILAR")
    )

    def _parse_comparison(self):
        left = self._parse_binary(2)
        comparison_ops = self._COMPARISON_OPS
        predicate_keywords = self._PREDICATE_KEYWORDS
        while True:
            token = self._current()
            token_type = token.type
            if token_type is TokenType.OPERATOR and token.value in comparison_ops:
                self._advance()
                right = self._parse_binary(2)
                left = ast.BinaryOp(token.value, left, right)
                continue
            # one membership probe replaces a cascade of is_keyword calls
            # on the (overwhelmingly common) loop exit
            if (
                token_type is not TokenType.KEYWORD
                or token.value not in predicate_keywords
            ):
                break
            if token.value == "IS":
                self._advance()
                negated = bool(self._match_keyword("NOT"))
                if self._match_keyword("NULL"):
                    left = ast.IsNullExpr(operand=left, negated=negated)
                elif self._match_keyword("TRUE", "FALSE"):
                    left = ast.IsNullExpr(operand=left, negated=negated)
                elif self._at_type(TokenType.IDENTIFIER) and self._current().value.upper() == "DISTINCT":
                    self._advance()
                    self._expect_keyword("FROM")
                    right = self._parse_binary(2)
                    left = ast.BinaryOp(
                        operator="IS DISTINCT FROM", left=left, right=right
                    )
                elif self._match_keyword("DISTINCT"):
                    self._expect_keyword("FROM")
                    right = self._parse_binary(2)
                    left = ast.BinaryOp(
                        operator="IS DISTINCT FROM", left=left, right=right
                    )
                else:
                    self._error("unsupported IS expression")
                continue
            negated = False
            save = self.index
            if token.is_keyword("NOT"):
                self._advance()
                negated = True
                token = self._current()
            if token.is_keyword("IN"):
                self._advance()
                left = self._parse_in_tail(left, negated)
                continue
            if token.is_keyword("BETWEEN"):
                self._advance()
                low = self._parse_binary(2)
                self._expect_keyword("AND")
                high = self._parse_binary(2)
                left = ast.BetweenExpr(operand=left, low=low, high=high, negated=negated)
                continue
            if token.is_keyword("LIKE", "ILIKE"):
                operator = self._advance().value
                pattern = self._parse_binary(2)
                left = ast.LikeExpr(
                    operand=left, pattern=pattern, operator=operator, negated=negated
                )
                continue
            if token.is_keyword("SIMILAR"):
                self._advance()
                # SIMILAR TO — "TO" lexes as an identifier (not reserved)
                if self._at_type(TokenType.IDENTIFIER) and self._current().value.upper() == "TO":
                    self._advance()
                pattern = self._parse_binary(2)
                left = ast.LikeExpr(
                    operand=left, pattern=pattern, operator="SIMILAR TO", negated=negated
                )
                continue
            if negated:
                self.index = save
            break
        return left

    def _parse_in_tail(self, operand, negated):
        self._expect_type(TokenType.LPAREN, "'('")
        if self._at_keyword("SELECT", "WITH", "VALUES"):
            query = self.parse_query_expression()
            self._expect_type(TokenType.RPAREN, "')'")
            return ast.InExpr(operand=operand, query=query, negated=negated)
        values = [self.parse_expression()]
        while self._match_type(TokenType.COMMA):
            values.append(self.parse_expression())
        self._expect_type(TokenType.RPAREN, "')'")
        return ast.InExpr(operand=operand, values=values, negated=negated)

    #: additive (2) and multiplicative (3) operator precedences; comparison
    #: operators are handled by :meth:`_parse_comparison` and ``*`` arrives
    #: as a STAR token (see _parse_binary).
    _BINARY_PRECEDENCE = {
        "+": 2, "-": 2, "||": 2, "&": 2, "|": 2, "#": 2,
        "->": 2, "->>": 2, "#>": 2, "#>>": 2,
        "/": 3, "%": 3, "^": 3,
    }

    def _parse_binary(self, min_precedence):
        """Precedence-climb the additive/multiplicative operator tiers."""
        left = self._parse_unary()
        tokens = self.tokens
        precedences = self._BINARY_PRECEDENCE
        while True:
            token = tokens[self.index]
            token_type = token.type
            if token_type is TokenType.STAR:
                operator = "*"
                precedence = 3
            elif token_type is TokenType.OPERATOR:
                operator = token.value
                precedence = precedences.get(operator)
                if precedence is None:
                    break
            else:
                break
            if precedence < min_precedence:
                break
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(operator, left, right)
        return left

    def _parse_unary(self):
        token = self.tokens[self.index]
        if token.type is TokenType.OPERATOR:
            value = token.value
            if value == "-" or value == "+":
                self._advance()
                operand = self._parse_unary()
                return ast.UnaryOp(value, operand)
        expression = self._parse_primary()
        # the PostgreSQL ``expr::type`` cast suffix binds tightest of all
        tokens = self.tokens
        while True:
            token = tokens[self.index]
            if token.type is TokenType.OPERATOR and token.value == "::":
                self._advance()
                expression = ast.Cast(expression, self._parse_type_name())
            else:
                break
        return expression

    # -- Primary expressions ---------------------------------------------
    def _parse_primary(self):
        token = self._current()

        if token.type == TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, "string")
        if token.type == TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value or "e" in token.value.lower() else int(token.value)
            return ast.Literal(value, "number")
        if token.type == TokenType.PARAMETER:
            self._advance()
            return ast.Parameter(name=token.value)
        if token.type == TokenType.STAR:
            self._advance()
            return ast.Star()

        if token.type == TokenType.KEYWORD:
            if token.value in ("TRUE", "FALSE"):
                self._advance()
                return ast.Literal(value=token.value == "TRUE", kind="boolean")
            if token.value == "NULL":
                self._advance()
                return ast.Literal(value=None, kind="null")
            if token.value in ("CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP"):
                self._advance()
                return ast.FunctionCall(name=token.value.lower())
            if token.value == "INTERVAL":
                self._advance()
                literal = self._expect_type(TokenType.STRING, "interval literal")
                return ast.Literal(value=literal.value, kind="interval")
            if token.value == "CASE":
                return self._parse_case()
            if token.value == "CAST":
                return self._parse_cast_call()
            if token.value == "EXTRACT":
                return self._parse_extract()
            if token.value == "EXISTS":
                self._advance()
                self._expect_type(TokenType.LPAREN, "'('")
                query = self.parse_query_expression()
                self._expect_type(TokenType.RPAREN, "')'")
                return ast.ExistsExpr(query=query)
            if token.value == "NOT" and self._peek(1).is_keyword("EXISTS"):
                self._advance()
                self._advance()
                self._expect_type(TokenType.LPAREN, "'('")
                query = self.parse_query_expression()
                self._expect_type(TokenType.RPAREN, "')'")
                return ast.ExistsExpr(query=query, negated=True)
            if token.value in ("ANY", "ALL", "SOME"):
                # ANY(subquery/array) used on the right of comparisons
                self._advance()
                self._expect_type(TokenType.LPAREN, "'('")
                if self._at_keyword("SELECT", "WITH"):
                    query = self.parse_query_expression()
                    self._expect_type(TokenType.RPAREN, "')'")
                    return ast.SubqueryExpr(query=query)
                inner = self.parse_expression()
                self._expect_type(TokenType.RPAREN, "')'")
                return inner
            if token.value in ("LEFT", "RIGHT", "REPLACE", "IF") and self._peek(1).type == TokenType.LPAREN:
                # functions whose names collide with keywords: LEFT(s, n), ...
                self._advance()
                arguments, is_star = self._parse_call_arguments()
                return ast.FunctionCall(
                    name=token.value.lower(), args=arguments, is_star_arg=is_star
                )

        if token.type == TokenType.LPAREN:
            self._advance()
            if self._at_keyword("SELECT", "WITH", "VALUES"):
                query = self.parse_query_expression()
                self._expect_type(TokenType.RPAREN, "')'")
                return ast.SubqueryExpr(query=query)
            first = self.parse_expression()
            if self._match_type(TokenType.COMMA):
                items = [first, self.parse_expression()]
                while self._match_type(TokenType.COMMA):
                    items.append(self.parse_expression())
                self._expect_type(TokenType.RPAREN, "')'")
                return ast.ExpressionList(items=items)
            self._expect_type(TokenType.RPAREN, "')'")
            return first

        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            return self._parse_identifier_expression()

        self._error("unexpected token in expression")

    def _parse_identifier_expression(self):
        tokens = self.tokens
        parts = [self._parse_identifier()]
        while tokens[self.index].type is TokenType.DOT:
            self.index += 1
            if tokens[self.index].type is TokenType.STAR:
                self.index += 1
                return ast.Star(parts)
            parts.append(self._parse_identifier())
        if tokens[self.index].type is TokenType.LPAREN:
            arguments, is_star = self._parse_call_arguments()
            call = ast.FunctionCall(
                name=".".join(parts), args=arguments, is_star_arg=is_star
            )
            return self._parse_call_suffix(call)
        return ast.ColumnRef(parts[-1], parts[:-1])

    def _parse_call_arguments(self):
        self._expect_type(TokenType.LPAREN, "'('")
        arguments = []
        is_star = False
        distinct = False
        if self._match_keyword("DISTINCT"):
            distinct = True
        if self._at_type(TokenType.STAR):
            self._advance()
            is_star = True
        elif not self._at_type(TokenType.RPAREN):
            arguments.append(self.parse_expression())
            while self._match_type(TokenType.COMMA):
                arguments.append(self.parse_expression())
            # ORDER BY inside aggregate calls, e.g. string_agg(x, ',' ORDER BY y)
            if self._match_keyword("ORDER"):
                self._expect_keyword("BY")
                self._parse_order_by_list()
        self._expect_type(TokenType.RPAREN, "')'")
        # propagate DISTINCT through a small hack: the caller builds the node
        self._last_call_distinct = distinct
        return arguments, is_star

    def _parse_call_suffix(self, call):
        call.distinct = getattr(self, "_last_call_distinct", False)
        self._last_call_distinct = False
        if self._match_keyword("WITHIN"):
            # WITHIN GROUP (ORDER BY ...)
            self._expect_keyword("GROUP")
            self._expect_type(TokenType.LPAREN, "'('")
            self._expect_keyword("ORDER")
            self._expect_keyword("BY")
            items = self._parse_order_by_list()
            call.args.extend(item.expression for item in items)
            self._expect_type(TokenType.RPAREN, "')'")
        if self._match_keyword("FILTER"):
            self._expect_type(TokenType.LPAREN, "'('")
            self._expect_keyword("WHERE")
            call.filter_clause = self.parse_expression()
            self._expect_type(TokenType.RPAREN, "')'")
        if self._match_keyword("OVER"):
            call.over = self._parse_over_clause()
        return call

    def _parse_over_clause(self):
        if self._at_type(TokenType.LPAREN):
            self._advance()
            spec = self._parse_window_spec_body()
            self._expect_type(TokenType.RPAREN, "')'")
            return spec
        name = self._parse_identifier()
        return ast.WindowSpec(name=name)

    def _parse_window_spec_body(self):
        spec = ast.WindowSpec()
        if self._at_type(TokenType.IDENTIFIER) and not self._at_keyword(
            "PARTITION", "ORDER", "ROWS", "RANGE"
        ):
            # reference to a named window
            spec.name = self._parse_identifier()
        if self._match_keyword("PARTITION"):
            self._expect_keyword("BY")
            spec.partition_by.append(self.parse_expression())
            while self._match_type(TokenType.COMMA):
                spec.partition_by.append(self.parse_expression())
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            spec.order_by = self._parse_order_by_list()
        if self._at_keyword("ROWS", "RANGE"):
            kind = self._advance().value
            text_tokens = []
            while not self._at_type(TokenType.RPAREN) and not self._at_type(
                TokenType.EOF
            ):
                text_tokens.append(self._advance().value)
            spec.frame = ast.WindowFrame(kind=kind, text=" ".join(text_tokens))
        return spec

    def _parse_case(self):
        self._expect_keyword("CASE")
        operand = None
        if not self._at_keyword("WHEN"):
            operand = self.parse_expression()
        whens = []
        while self._match_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            whens.append(ast.CaseWhen(condition=condition, result=result))
        else_result = None
        if self._match_keyword("ELSE"):
            else_result = self.parse_expression()
        self._expect_keyword("END")
        return ast.Case(operand=operand, whens=whens, else_result=else_result)

    def _parse_cast_call(self):
        self._expect_keyword("CAST")
        self._expect_type(TokenType.LPAREN, "'('")
        operand = self.parse_expression()
        self._expect_keyword("AS")
        type_name = self._parse_type_name()
        self._expect_type(TokenType.RPAREN, "')'")
        return ast.Cast(operand=operand, type_name=type_name)

    def _parse_extract(self):
        self._expect_keyword("EXTRACT")
        self._expect_type(TokenType.LPAREN, "'('")
        token = self._current()
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD, TokenType.STRING):
            part = token.value
            self._advance()
        else:
            self._error("expected a field name in EXTRACT")
        self._expect_keyword("FROM")
        operand = self.parse_expression()
        self._expect_type(TokenType.RPAREN, "')'")
        return ast.ExtractExpr(part=part, operand=operand)
