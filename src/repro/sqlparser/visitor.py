"""Generic AST traversal utilities.

The lineage extractor performs a post-order depth-first traversal of query
ASTs (Section III of the paper); these helpers provide the reusable walking
primitives, plus a few conveniences used across the code base.
"""

from . import ast_nodes as ast


def walk(node):
    """Yield ``node`` and every descendant in pre-order (root first)."""
    if node is None:
        return
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        # push reversed so the leftmost child is yielded first
        stack.extend(reversed(current.children()))


def walk_postorder(node):
    """Yield every descendant of ``node`` in post-order (children first)."""
    if node is None:
        return
    for child in node.children():
        for descendant in walk_postorder(child):
            yield descendant
    yield node


def find_all(node, node_type, stop_at=None):
    """Find every descendant of ``node`` that is an instance of ``node_type``.

    Parameters
    ----------
    node:
        The root node to search from (inclusive).
    node_type:
        A node class or tuple of classes to match.
    stop_at:
        Optional class or tuple of classes; traversal does not descend *into*
        nodes of these types (the matching node itself is still tested).  This
        is how the extractor collects column references of a query block
        without descending into its subqueries.
    """
    results = []
    if node is None:
        return results

    def _visit(current):
        if isinstance(current, node_type):
            results.append(current)
        if stop_at is not None and isinstance(current, stop_at) and current is not node:
            return
        for child in current.children():
            _visit(child)

    _visit(node)
    return results


def transform(node, function):
    """Apply ``function`` to every node bottom-up and return the result.

    ``function`` receives a node and must return a node (possibly the same
    one).  Children are transformed before their parents.  Lists of child
    nodes are rebuilt in place.
    """
    if node is None:
        return None
    from .ast_nodes import field_names

    for name in field_names(type(node)):
        value = getattr(node, name)
        if isinstance(value, ast.Node):
            setattr(node, name, transform(value, function))
        elif isinstance(value, list):
            new_list = []
            for element in value:
                if isinstance(element, ast.Node):
                    new_list.append(transform(element, function))
                else:
                    new_list.append(element)
            setattr(node, name, new_list)
    return function(node)


def query_of(statement):
    """Return the query expression embedded in a statement, if any."""
    if isinstance(statement, (ast.Select, ast.SetOperation)):
        return statement
    if isinstance(statement, ast.QueryStatement):
        return statement.query
    if isinstance(statement, (ast.CreateView, ast.CreateTableAs)):
        return statement.query
    if isinstance(statement, ast.InsertStatement):
        return statement.query
    return None


def created_name(statement):
    """Return the object name a statement creates/populates, if any."""
    if isinstance(statement, (ast.CreateView, ast.CreateTableAs, ast.CreateTable)):
        return statement.name.dotted()
    if isinstance(statement, ast.InsertStatement):
        return statement.table.dotted()
    return None


def referenced_tables(query):
    """Return the set of table names referenced anywhere under ``query``.

    CTE names defined within the query are *not* excluded here; callers that
    need only external references should subtract the CTE names themselves
    (see :mod:`repro.core.extractor`).
    """
    names = set()
    for node in walk(query):
        if isinstance(node, ast.TableRef):
            names.add(node.name.dotted())
    return names
