"""Exception hierarchy for the SQL parsing substrate."""


class SQLError(Exception):
    """Base class for all errors raised by :mod:`repro.sqlparser`."""


class TokenizeError(SQLError):
    """Raised when the lexer encounters an invalid character sequence.

    Attributes
    ----------
    position:
        Character offset into the source text where tokenization failed.
    line:
        1-based line number of the failure.
    column:
        1-based column number of the failure.
    """

    def __init__(self, message, position=None, line=None, column=None):
        location = ""
        if line is not None and column is not None:
            location = f" at line {line}, column {column}"
        super().__init__(f"{message}{location}")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SQLError):
    """Raised when the parser cannot build an AST from a token stream.

    Attributes
    ----------
    token:
        The :class:`~repro.sqlparser.tokens.Token` at which parsing failed,
        if available.
    """

    def __init__(self, message, token=None):
        if token is not None:
            message = (
                f"{message} (near {token.value!r} at line {token.line}, "
                f"column {token.column})"
            )
        super().__init__(message)
        self.token = token
