"""Tokenizer for a PostgreSQL-flavoured SQL dialect.

The lexer turns a SQL string into a list of :class:`~repro.sqlparser.tokens.Token`
objects.  It understands:

* line comments (``-- ...``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping and ``E'...'`` strings,
* double-quoted identifiers with ``""`` escaping,
* dollar-quoted strings (``$$ ... $$`` and ``$tag$ ... $tag$``),
* numeric literals (integers, decimals, scientific notation),
* multi-character operators (``::``, ``<=``, ``||``, ``->>`` ...),
* positional (``$1``) and named (``:name``, ``%(name)s``) parameters.

Comments are skipped by default but can be preserved with
``Lexer(sql, keep_comments=True)``.

Implementation: one compiled *master pattern* — an ordered alternation of
named groups equivalent to the precedence of the old char-by-char scanner —
drives the whole hot loop.  Each iteration makes a single ``re`` match
(leading whitespace folded in) and dispatches on the matched group; only
nested block comments and dollar-quoted bodies (both unmatchable by a
regular expression) drop into auxiliary scans.  Keyword and operator token values are interned and word
classification is cached, so a corpus that repeats the same identifiers
(every real corpus) never re-uppercases or re-hashes them.  Line/column
bookkeeping is gone from the loop entirely: tokens carry only character
offsets, and :class:`~repro.sqlparser.tokens.Token` derives line/column
lazily when an error message asks for them.
"""

import re
from sys import intern

from .errors import TokenizeError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
    source_location,
)


def tokenize(sql, keep_comments=False):
    """Tokenize ``sql`` and return a list of tokens ending with an EOF token."""
    return Lexer(sql, keep_comments=keep_comments).tokenize()


#: The ordered alternation.  Alternatives are tried in order by the regex
#: engine, so they are arranged by token frequency (words and punctuation
#: first) subject to the precedence constraints of the old scanner:
#:
#: * ``(?![eE]')`` keeps WORD from swallowing the prefix of an E-string;
#: * NUMBER precedes PUNCT so ``.5`` lexes as a number, not DOT then 5;
#: * comments, parameters and pyformat precede SOP so ``--``/``/*``/
#:   ``:name``/``%(`` are not split into single-char operators;
#: * DOLLAR precedes PPARAM so ``$tag$`` opens a dollar-quote while a
#:   lone ``$1`` stays a positional parameter; its tag class is ``\w``
#:   (Unicode-aware) to match the old scanner's ``isalnum() or '_'``.
#:
#: Leading whitespace is folded into every match (the ``[ \t\r\n]*``
#: prefix plus an optional payload), so a whitespace run never costs its
#: own loop iteration.  String/identifier bodies use the unrolled
#: ``x[^x]*(?:xx[^x]*)*x`` form, which never backtracks.
_MASTER = re.compile(
    r"""[ \t\r\n]*
    (?:
      (?P<WORD>(?![eE]')[^\W\d][\w$]*)
    | (?P<NUMBER>(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?)
    | (?P<PUNCT>[,.();*])
    | (?P<OP>"""
    + "|".join(
        re.escape(op) for op in sorted(MULTI_CHAR_OPERATORS, key=len, reverse=True)
    )
    + r""")
    | (?P<STRING>[eE]?'[^']*(?:''[^']*)*')
    | (?P<QIDENT>"[^"]*(?:""[^"]*)*")
    | (?P<LINE_COMMENT>--[^\n]*)
    | (?P<BLOCK_COMMENT>/\*)
    | (?P<DOLLAR>\$\w*\$)
    | (?P<PPARAM>\$\d+)
    | (?P<NPARAM>:[^\W\d]\w*)
    | (?P<PYFORMAT>%\(.*?\)s)
    | (?P<BADPYFORMAT>%\()
    | (?P<SOP>["""
    + "".join(re.escape(char) for char in sorted(SINGLE_CHAR_OPERATORS | {":"}))
    + r"""])
    )?
    """,
    re.VERBOSE | re.DOTALL,
).match

#: group indices, for integer dispatch on ``match.lastindex`` (cheaper
#: than resolving and string-comparing group names per token).
_GROUPS = _MASTER.__self__.groupindex
_IDX_WORD = _GROUPS["WORD"]
_IDX_NUMBER = _GROUPS["NUMBER"]
_IDX_PUNCT = _GROUPS["PUNCT"]
_IDX_OP = _GROUPS["OP"]
_IDX_STRING = _GROUPS["STRING"]
_IDX_QIDENT = _GROUPS["QIDENT"]
_IDX_LINE_COMMENT = _GROUPS["LINE_COMMENT"]
_IDX_BLOCK_COMMENT = _GROUPS["BLOCK_COMMENT"]
_IDX_DOLLAR = _GROUPS["DOLLAR"]
_IDX_BADPYFORMAT = _GROUPS["BADPYFORMAT"]
_IDX_SOP = _GROUPS["SOP"]
#: the remaining payload groups (positional/named/pyformat parameters)
_PARAM_INDICES = frozenset(
    (_GROUPS["PPARAM"], _GROUPS["NPARAM"], _GROUPS["PYFORMAT"])
)

#: block-comment delimiters, for the nested-depth auxiliary scan.
_BLOCK_DELIM = re.compile(r"/\*|\*/").search

_PUNCT_TOKENS = {
    ",": (TokenType.COMMA, ","),
    ".": (TokenType.DOT, "."),
    "(": (TokenType.LPAREN, "("),
    ")": (TokenType.RPAREN, ")"),
    ";": (TokenType.SEMICOLON, ";"),
    "*": (TokenType.STAR, "*"),
}

#: interned canonical values for every fixed-spelling token.
_OP_VALUES = {op: intern(op) for op in MULTI_CHAR_OPERATORS}
_SOP_VALUES = {char: intern(char) for char in SINGLE_CHAR_OPERATORS | {":"}}

#: word -> (token_type, canonical_value) classification cache.  Keywords
#: interned upper-cased once; identifiers interned as spelled.  Capped so a
#: pathological stream of unique words cannot grow it without bound.
_WORD_CACHE = {}
_WORD_CACHE_LIMIT = 65536


def _classify_word(word):
    info = _WORD_CACHE.get(word)
    if info is None:
        upper = word.upper()
        if upper in KEYWORDS:
            info = (TokenType.KEYWORD, intern(upper))
        else:
            info = (TokenType.IDENTIFIER, intern(word))
        if len(_WORD_CACHE) < _WORD_CACHE_LIMIT:
            _WORD_CACHE[word] = info
    return info


class Lexer:
    """A master-pattern scanner over a SQL source string."""

    def __init__(self, sql, keep_comments=False):
        if sql is None:
            raise TokenizeError("cannot tokenize None")
        self.sql = sql
        self.length = len(sql)
        self.keep_comments = keep_comments
        self.tokens = []

    # ------------------------------------------------------------------
    def _error(self, message, position):
        line, column = source_location(self.sql, position)
        raise TokenizeError(message, position, line, column)

    def _fail(self, position):
        """Diagnose the character no alternative matched."""
        sql = self.sql
        char = sql[position]
        if char == "'" or (
            char in "eE" and sql.startswith("'", position + 1)
        ):
            self._error("unterminated string literal", position)
        if char == '"':
            self._error("unterminated quoted identifier", position)
        self._error(f"unexpected character {char!r}", position)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tokenize(self):
        """Scan the whole input and return the token list (ending with EOF)."""
        sql = self.sql
        length = self.length
        keep_comments = self.keep_comments
        append = self.tokens.append
        classify = _classify_word
        word_cache = _WORD_CACHE
        punct = _PUNCT_TOKENS
        pos = 0
        while pos < length:
            match = _MASTER(sql, pos)
            index = match.lastindex
            if index is None:
                # whitespace-only match: either the trailing run of the
                # input, or whitespace followed by an unmatchable character
                end = match.end()
                if end >= length:
                    break
                self._fail(end)
            start = match.start(index)
            pos = match.end()
            if index == _IDX_WORD:
                word = sql[start:pos]
                info = word_cache.get(word)
                if info is None:
                    info = classify(word)
                append(Token(info[0], info[1], start, sql))
                continue
            if index == _IDX_PUNCT:
                token_type, value = punct[sql[start]]
                append(Token(token_type, value, start, sql))
                continue
            if index == _IDX_NUMBER:
                append(Token(TokenType.NUMBER, sql[start:pos], start, sql))
                continue
            if index == _IDX_OP:
                append(
                    Token(TokenType.OPERATOR, _OP_VALUES[sql[start:pos]], start, sql)
                )
                continue
            if index == _IDX_SOP:
                append(
                    Token(TokenType.OPERATOR, _SOP_VALUES[sql[start]], start, sql)
                )
                continue
            if index == _IDX_STRING:
                raw = sql[start:pos]
                if raw[0] != "'":
                    raw = raw[1:]  # E'...' prefix
                value = raw[1:-1]
                if "''" in value:
                    value = value.replace("''", "'")
                append(Token(TokenType.STRING, value, start, sql))
                continue
            if index == _IDX_QIDENT:
                value = sql[start + 1 : pos - 1]
                if '""' in value:
                    value = value.replace('""', '"')
                append(Token(TokenType.QUOTED_IDENTIFIER, value, start, sql))
                continue
            if index == _IDX_DOLLAR:
                tag = sql[start:pos]
                closing = sql.find(tag, pos)
                if closing < 0:
                    self._error("unterminated dollar-quoted string", pos)
                append(Token(TokenType.STRING, sql[pos:closing], start, sql))
                pos = closing + len(tag)
                continue
            if index == _IDX_LINE_COMMENT:
                if keep_comments:
                    append(Token(TokenType.COMMENT, sql[start:pos], start, sql))
                continue
            if index == _IDX_BLOCK_COMMENT:
                pos = self._scan_block_comment(start, pos)
                continue
            if index in _PARAM_INDICES:
                append(Token(TokenType.PARAMETER, sql[start:pos], start, sql))
                continue
            # BADPYFORMAT: "%(" with no ")s" terminator anywhere after it
            self._error("unterminated pyformat parameter", start)
        append(Token(TokenType.EOF, "", self.length, sql))
        return self.tokens

    # ------------------------------------------------------------------
    # Auxiliary scans (constructs a regular expression cannot match)
    # ------------------------------------------------------------------
    def _scan_block_comment(self, start, body_start):
        """Consume a (possibly nested) block comment; return the end offset."""
        sql = self.sql
        depth = 1
        scan = body_start
        while depth:
            delimiter = _BLOCK_DELIM(sql, scan)
            if delimiter is None:
                self._error("unterminated block comment", self.length)
            depth += 1 if delimiter.group() == "/*" else -1
            scan = delimiter.end()
        if self.keep_comments:
            self.tokens.append(
                Token(TokenType.COMMENT, sql[start:scan], start, sql)
            )
        return scan
