"""Tokenizer for a PostgreSQL-flavoured SQL dialect.

The lexer turns a SQL string into a list of :class:`~repro.sqlparser.tokens.Token`
objects.  It understands:

* line comments (``-- ...``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping and ``E'...'`` strings,
* double-quoted identifiers with ``""`` escaping,
* dollar-quoted strings (``$$ ... $$`` and ``$tag$ ... $tag$``),
* numeric literals (integers, decimals, scientific notation),
* multi-character operators (``::``, ``<=``, ``||``, ``->>`` ...),
* positional (``$1``) and named (``:name``, ``%(name)s``) parameters.

Comments are skipped by default but can be preserved with
``Lexer(sql, keep_comments=True)``.
"""

from .errors import TokenizeError
from .tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)


def tokenize(sql, keep_comments=False):
    """Tokenize ``sql`` and return a list of tokens ending with an EOF token."""
    return Lexer(sql, keep_comments=keep_comments).tokenize()


class Lexer:
    """A hand-written scanner over a SQL source string."""

    def __init__(self, sql, keep_comments=False):
        if sql is None:
            raise TokenizeError("cannot tokenize None")
        self.sql = sql
        self.length = len(sql)
        self.pos = 0
        self.line = 1
        self.column = 1
        self.keep_comments = keep_comments
        self.tokens = []

    # ------------------------------------------------------------------
    # Character helpers
    # ------------------------------------------------------------------
    def _peek(self, offset=0):
        index = self.pos + offset
        if index < self.length:
            return self.sql[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= self.length:
                return
            if self.sql[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _starts_with(self, text):
        return self.sql.startswith(text, self.pos)

    def _error(self, message):
        raise TokenizeError(message, self.pos, self.line, self.column)

    def _emit(self, token_type, value, position, line, column):
        self.tokens.append(Token(token_type, value, position, line, column))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tokenize(self):
        """Scan the whole input and return the token list (ending with EOF)."""
        while self.pos < self.length:
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":
                self._scan_line_comment()
                continue
            if char == "/" and self._peek(1) == "*":
                self._scan_block_comment()
                continue
            if char == "'" or (
                char in "eE" and self._peek(1) == "'"
            ):
                self._scan_string()
                continue
            if char == '"':
                self._scan_quoted_identifier()
                continue
            if char == "$" and self._is_dollar_quote_start():
                self._scan_dollar_string()
                continue
            if char.isdigit() or (char == "." and self._peek(1).isdigit()):
                self._scan_number()
                continue
            if char.isalpha() or char == "_":
                self._scan_word()
                continue
            if char == "$" and self._peek(1).isdigit():
                self._scan_positional_parameter()
                continue
            if char == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
                self._scan_named_parameter()
                continue
            if char == "%" and self._peek(1) == "(":
                self._scan_pyformat_parameter()
                continue
            self._scan_punctuation()
        self._emit(TokenType.EOF, "", self.pos, self.line, self.column)
        return self.tokens

    # ------------------------------------------------------------------
    # Scanners for individual token classes
    # ------------------------------------------------------------------
    def _scan_line_comment(self):
        start, line, column = self.pos, self.line, self.column
        while self.pos < self.length and self._peek() != "\n":
            self._advance()
        if self.keep_comments:
            self._emit(
                TokenType.COMMENT, self.sql[start : self.pos], start, line, column
            )

    def _scan_block_comment(self):
        start, line, column = self.pos, self.line, self.column
        self._advance(2)
        depth = 1
        while self.pos < self.length and depth > 0:
            if self._starts_with("/*"):
                depth += 1
                self._advance(2)
            elif self._starts_with("*/"):
                depth -= 1
                self._advance(2)
            else:
                self._advance()
        if depth > 0:
            self._error("unterminated block comment")
        if self.keep_comments:
            self._emit(
                TokenType.COMMENT, self.sql[start : self.pos], start, line, column
            )

    def _scan_string(self):
        start, line, column = self.pos, self.line, self.column
        if self._peek() in "eE":
            self._advance()
        # consume the opening quote
        self._advance()
        value_chars = []
        while True:
            if self.pos >= self.length:
                self._error("unterminated string literal")
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":
                    value_chars.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            value_chars.append(char)
            self._advance()
        self._emit(TokenType.STRING, "".join(value_chars), start, line, column)

    def _scan_quoted_identifier(self):
        start, line, column = self.pos, self.line, self.column
        self._advance()
        value_chars = []
        while True:
            if self.pos >= self.length:
                self._error("unterminated quoted identifier")
            char = self._peek()
            if char == '"':
                if self._peek(1) == '"':
                    value_chars.append('"')
                    self._advance(2)
                    continue
                self._advance()
                break
            value_chars.append(char)
            self._advance()
        self._emit(
            TokenType.QUOTED_IDENTIFIER, "".join(value_chars), start, line, column
        )

    def _is_dollar_quote_start(self):
        # $$ or $tag$ where tag is alphanumeric/underscore
        if self._peek(1) == "$":
            return True
        offset = 1
        while True:
            char = self._peek(offset)
            if char == "$":
                return offset > 1
            if not (char.isalnum() or char == "_"):
                return False
            offset += 1

    def _scan_dollar_string(self):
        start, line, column = self.pos, self.line, self.column
        end_of_tag = self.sql.index("$", self.pos + 1)
        tag = self.sql[self.pos : end_of_tag + 1]
        self._advance(len(tag))
        closing = self.sql.find(tag, self.pos)
        if closing < 0:
            self._error("unterminated dollar-quoted string")
        value = self.sql[self.pos : closing]
        self._advance(len(value) + len(tag))
        self._emit(TokenType.STRING, value, start, line, column)

    def _scan_number(self):
        start, line, column = self.pos, self.line, self.column
        seen_dot = False
        seen_exponent = False
        while self.pos < self.length:
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not seen_dot and not seen_exponent:
                seen_dot = True
                self._advance()
            elif char in "eE" and not seen_exponent and self._peek(1).isdigit():
                seen_exponent = True
                self._advance(2)
            elif (
                char in "eE"
                and not seen_exponent
                and self._peek(1) in "+-"
                and self._peek(2).isdigit()
            ):
                seen_exponent = True
                self._advance(3)
            else:
                break
        self._emit(TokenType.NUMBER, self.sql[start : self.pos], start, line, column)

    def _scan_word(self):
        start, line, column = self.pos, self.line, self.column
        while self.pos < self.length and (
            self._peek().isalnum() or self._peek() in "_$"
        ):
            self._advance()
        word = self.sql[start : self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            self._emit(TokenType.KEYWORD, upper, start, line, column)
        else:
            self._emit(TokenType.IDENTIFIER, word, start, line, column)

    def _scan_positional_parameter(self):
        start, line, column = self.pos, self.line, self.column
        self._advance()
        while self.pos < self.length and self._peek().isdigit():
            self._advance()
        self._emit(
            TokenType.PARAMETER, self.sql[start : self.pos], start, line, column
        )

    def _scan_named_parameter(self):
        start, line, column = self.pos, self.line, self.column
        self._advance()
        while self.pos < self.length and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        self._emit(
            TokenType.PARAMETER, self.sql[start : self.pos], start, line, column
        )

    def _scan_pyformat_parameter(self):
        start, line, column = self.pos, self.line, self.column
        closing = self.sql.find(")s", self.pos)
        if closing < 0:
            self._error("unterminated pyformat parameter")
        self._advance(closing + 2 - self.pos)
        self._emit(
            TokenType.PARAMETER, self.sql[start : self.pos], start, line, column
        )

    def _scan_punctuation(self):
        start, line, column = self.pos, self.line, self.column
        char = self._peek()
        if char == ",":
            self._advance()
            self._emit(TokenType.COMMA, ",", start, line, column)
            return
        if char == ".":
            self._advance()
            self._emit(TokenType.DOT, ".", start, line, column)
            return
        if char == "(":
            self._advance()
            self._emit(TokenType.LPAREN, "(", start, line, column)
            return
        if char == ")":
            self._advance()
            self._emit(TokenType.RPAREN, ")", start, line, column)
            return
        if char == ";":
            self._advance()
            self._emit(TokenType.SEMICOLON, ";", start, line, column)
            return
        if char == "*":
            self._advance()
            self._emit(TokenType.STAR, "*", start, line, column)
            return
        for operator in MULTI_CHAR_OPERATORS:
            if self._starts_with(operator):
                self._advance(len(operator))
                self._emit(TokenType.OPERATOR, operator, start, line, column)
                return
        if char in SINGLE_CHAR_OPERATORS or char == ":":
            self._advance()
            self._emit(TokenType.OPERATOR, char, start, line, column)
            return
        self._error(f"unexpected character {char!r}")
