"""Typed abstract-syntax-tree nodes produced by the SQL parser.

Every node derives from :class:`Node`, a small dataclass base that knows how
to enumerate its child nodes generically (used by the visitor utilities in
:mod:`repro.sqlparser.visitor`).  The node taxonomy mirrors the relational
structure the lineage extractor cares about:

* statements: :class:`CreateView`, :class:`CreateTableAs`, :class:`CreateTable`,
  :class:`InsertStatement`, and bare query expressions;
* query expressions: :class:`Select` and :class:`SetOperation` (with optional
  :class:`CTE` lists attached);
* table sources: :class:`TableRef`, :class:`SubquerySource`, :class:`Join`,
  :class:`ValuesSource`;
* scalar expressions: :class:`ColumnRef`, :class:`Star`, :class:`Literal`,
  :class:`FunctionCall`, :class:`BinaryOp`, :class:`Case`, :class:`Cast`,
  :class:`ExtractExpr`, :class:`SubqueryExpr`, :class:`ExistsExpr`,
  :class:`InExpr`, :class:`BetweenExpr`, :class:`IsNullExpr`, ...
"""

from dataclasses import dataclass as _dataclass, field, fields
from typing import List, Optional, Tuple


def dataclass(cls):
    """The node decorator: a slotted dataclass.

    ``__slots__`` (via ``dataclass(slots=True)``) halves the per-node
    memory footprint and makes field access a fixed-offset load instead of
    a dict lookup — AST construction and visitor walks are the cold path's
    hottest loops, and every node in :mod:`repro.sqlparser.ast_nodes` goes
    through them.
    """
    return _dataclass(slots=True)(cls)


#: class -> tuple of field names, populated lazily.  ``dataclasses.fields``
#: rebuilds a tuple of Field objects on every call; visitors enumerate
#: children once per node per walk, so the names are cached per class.
_FIELD_NAMES = {}


def field_names(cls):
    """The dataclass field names of ``cls``, cached per class."""
    names = _FIELD_NAMES.get(cls)
    if names is None:
        names = _FIELD_NAMES[cls] = tuple(item.name for item in fields(cls))
    return names


#: class -> compiled children enumerator (see ``_build_children``).
_CHILDREN_FNS = {}

_CHILDREN_FIELD_TEMPLATE = """
    value = self.{name}
    if isinstance(value, Node):
        append(value)
    elif value and isinstance(value, (list, tuple)):
        for element in value:
            if isinstance(element, Node):
                append(element)
            elif isinstance(element, (list, tuple)):
                for nested in element:
                    if isinstance(nested, Node):
                        append(nested)
"""


def _build_children(cls):
    """Compile a per-class ``children`` enumerator.

    The field list of a node class is static, so each class gets a flat
    function with direct (slot) attribute loads instead of a generic loop
    doing ``getattr`` by name — visitor walks call this once per node per
    pass, making it one of the hottest code paths in the system.
    """
    parts = ["def _children(self):\n    found = []\n    append = found.append"]
    for name in field_names(cls):
        parts.append(_CHILDREN_FIELD_TEMPLATE.format(name=name))
    parts.append("    return found")
    namespace = {"Node": Node}
    exec("".join(parts), namespace)  # noqa: S102 - static, class-derived source
    return namespace["_children"]


# ----------------------------------------------------------------------
# Base node
# ----------------------------------------------------------------------
@dataclass
class Node:
    """Base class for all AST nodes."""

    def children(self):
        """Every direct child :class:`Node` of this node, in order.

        Children are discovered generically from the dataclass fields: any
        field whose value is a :class:`Node`, or a list/tuple containing
        :class:`Node` instances, contributes its nodes in declaration order.
        Returns a list (historically a generator): visitor walks enumerate
        children once per node per pass, and an eagerly-built list is
        measurably cheaper than generator resumption in those loops.

        The first call on each class compiles a specialised enumerator and
        installs it *as that class's* ``children`` method, so every later
        call dispatches straight to flat, per-field code.
        """
        cls = type(self)
        fn = _CHILDREN_FNS.get(cls)
        if fn is None:
            fn = _CHILDREN_FNS[cls] = _build_children(cls)
            cls.children = fn
        return fn(self)

    @property
    def node_name(self):
        """The class name of this node; handy for debugging and tracing."""
        return type(self).__name__


# ----------------------------------------------------------------------
# Names
# ----------------------------------------------------------------------
@dataclass
class QualifiedName(Node):
    """A possibly schema-qualified object name, e.g. ``public.orders``."""

    parts: List[str] = field(default_factory=list)

    @property
    def name(self):
        """The unqualified (last) part of the name."""
        return self.parts[-1] if self.parts else ""

    @property
    def schema(self):
        """The schema part if present, else ``None``."""
        return self.parts[-2] if len(self.parts) >= 2 else None

    def dotted(self):
        """Return the dotted string form of the name."""
        return ".".join(self.parts)

    def __str__(self):
        return self.dotted()


# ----------------------------------------------------------------------
# Scalar expressions
# ----------------------------------------------------------------------
@dataclass
class Expression(Node):
    """Marker base class for scalar expressions."""


@dataclass
class ColumnRef(Expression):
    """A column reference, optionally qualified: ``c``, ``t.c``, ``s.t.c``."""

    name: str = ""
    qualifier: List[str] = field(default_factory=list)

    @property
    def table(self):
        """The table/alias qualifier immediately before the column name."""
        return self.qualifier[-1] if self.qualifier else None

    def dotted(self):
        return ".".join(self.qualifier + [self.name])

    def __str__(self):
        return self.dotted()


@dataclass
class Star(Expression):
    """A star projection: ``*`` or ``alias.*``."""

    qualifier: List[str] = field(default_factory=list)

    @property
    def table(self):
        return self.qualifier[-1] if self.qualifier else None

    def __str__(self):
        if self.qualifier:
            return ".".join(self.qualifier) + ".*"
        return "*"


@dataclass
class Literal(Expression):
    """A literal constant (string, number, boolean, NULL, interval)."""

    value: object = None
    kind: str = "string"  # one of: string, number, boolean, null, interval


@dataclass
class Parameter(Expression):
    """A query parameter placeholder such as ``$1`` or ``:name``."""

    name: str = ""


@dataclass
class OrderByItem(Node):
    """One element of an ORDER BY list."""

    expression: Expression = None
    descending: bool = False
    nulls: Optional[str] = None  # "FIRST" | "LAST" | None


@dataclass
class WindowFrame(Node):
    """A window frame clause (``ROWS BETWEEN ... AND ...``), kept as text."""

    kind: str = "ROWS"  # ROWS | RANGE
    text: str = ""


@dataclass
class WindowSpec(Node):
    """An OVER (...) window specification."""

    name: Optional[str] = None
    partition_by: List[Expression] = field(default_factory=list)
    order_by: List[OrderByItem] = field(default_factory=list)
    frame: Optional[WindowFrame] = None


@dataclass
class FunctionCall(Expression):
    """A function or aggregate call, optionally with DISTINCT/FILTER/OVER."""

    name: str = ""
    args: List[Expression] = field(default_factory=list)
    distinct: bool = False
    is_star_arg: bool = False          # e.g. COUNT(*)
    filter_clause: Optional[Expression] = None
    over: Optional[WindowSpec] = None


@dataclass
class BinaryOp(Expression):
    """A binary operation: comparisons, arithmetic, AND/OR, ||, ..."""

    operator: str = ""
    left: Expression = None
    right: Expression = None


@dataclass
class UnaryOp(Expression):
    """A unary operation: NOT, -, +."""

    operator: str = ""
    operand: Expression = None


@dataclass
class CaseWhen(Node):
    """A single WHEN ... THEN ... arm of a CASE expression."""

    condition: Expression = None
    result: Expression = None


@dataclass
class Case(Expression):
    """A CASE expression (simple or searched)."""

    operand: Optional[Expression] = None
    whens: List[CaseWhen] = field(default_factory=list)
    else_result: Optional[Expression] = None


@dataclass
class Cast(Expression):
    """CAST(expr AS type) or the PostgreSQL ``expr::type`` shorthand."""

    operand: Expression = None
    type_name: str = ""


@dataclass
class ExtractExpr(Expression):
    """EXTRACT(field FROM expr)."""

    part: str = ""
    operand: Expression = None


@dataclass
class SubqueryExpr(Expression):
    """A scalar subquery used inside an expression."""

    query: "QueryExpression" = None


@dataclass
class ExistsExpr(Expression):
    """EXISTS (subquery)."""

    query: "QueryExpression" = None
    negated: bool = False


@dataclass
class InExpr(Expression):
    """``expr IN (list)`` or ``expr IN (subquery)``."""

    operand: Expression = None
    values: List[Expression] = field(default_factory=list)
    query: Optional["QueryExpression"] = None
    negated: bool = False


@dataclass
class BetweenExpr(Expression):
    """``expr BETWEEN low AND high``."""

    operand: Expression = None
    low: Expression = None
    high: Expression = None
    negated: bool = False


@dataclass
class IsNullExpr(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression = None
    negated: bool = False


@dataclass
class LikeExpr(Expression):
    """``expr [NOT] LIKE/ILIKE/SIMILAR TO pattern``."""

    operand: Expression = None
    pattern: Expression = None
    operator: str = "LIKE"
    negated: bool = False


@dataclass
class ExpressionList(Expression):
    """A parenthesised tuple of expressions, e.g. ``(a, b)`` in row comparisons.

    Also used for the grouping elements of :class:`GroupingSetSpec`, where an
    empty ``items`` list renders as the grand-total grouping set ``()``.
    """

    items: List[Expression] = field(default_factory=list)


@dataclass
class GroupingSetSpec(Node):
    """A multi-grouping element of GROUP BY.

    ``kind`` is one of ``"GROUPING SETS"``, ``"ROLLUP"`` or ``"CUBE"``;
    ``items`` holds the grouping elements in order — plain expressions, or
    :class:`ExpressionList` for parenthesised composite/empty sets.
    """

    kind: str = "GROUPING SETS"
    items: List[Expression] = field(default_factory=list)


# ----------------------------------------------------------------------
# Table sources
# ----------------------------------------------------------------------
@dataclass
class TableSource(Node):
    """Marker base class for anything that can appear in FROM."""


@dataclass
class TableRef(TableSource):
    """A reference to a base table or view in FROM."""

    name: QualifiedName = None
    alias: Optional[str] = None
    column_aliases: List[str] = field(default_factory=list)

    @property
    def effective_name(self):
        """The name this source is visible as inside the query."""
        return self.alias or self.name.name


@dataclass
class SubquerySource(TableSource):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "QueryExpression" = None
    alias: Optional[str] = None
    column_aliases: List[str] = field(default_factory=list)
    lateral: bool = False

    @property
    def effective_name(self):
        return self.alias


@dataclass
class ValuesSource(TableSource):
    """A VALUES list used as a table source."""

    rows: List[List[Expression]] = field(default_factory=list)
    alias: Optional[str] = None
    column_aliases: List[str] = field(default_factory=list)

    @property
    def effective_name(self):
        return self.alias


@dataclass
class FunctionSource(TableSource):
    """A set-returning function in FROM, e.g. ``generate_series(1, 10) g``."""

    function: FunctionCall = None
    alias: Optional[str] = None
    column_aliases: List[str] = field(default_factory=list)

    @property
    def effective_name(self):
        return self.alias or (self.function.name if self.function else None)


@dataclass
class Join(TableSource):
    """A join between two table sources."""

    left: TableSource = None
    right: TableSource = None
    join_type: str = "INNER"  # INNER | LEFT | RIGHT | FULL | CROSS
    condition: Optional[Expression] = None
    using_columns: List[str] = field(default_factory=list)
    natural: bool = False


# ----------------------------------------------------------------------
# Query expressions
# ----------------------------------------------------------------------
@dataclass
class QueryExpression(Node):
    """Marker base class for SELECT-like query expressions."""


@dataclass
class Projection(Node):
    """One item of the SELECT list."""

    expression: Expression = None
    alias: Optional[str] = None

    @property
    def output_name(self):
        """The output column name if statically determinable, else None."""
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, FunctionCall):
            return self.expression.name.lower()
        if isinstance(self.expression, ExtractExpr):
            return "extract"
        if isinstance(self.expression, Cast):
            inner = self.expression.operand
            if isinstance(inner, ColumnRef):
                return inner.name
        return None


@dataclass
class CTE(Node):
    """One common table expression of a WITH clause."""

    name: str = ""
    column_names: List[str] = field(default_factory=list)
    query: QueryExpression = None
    materialized: Optional[bool] = None


@dataclass
class Select(QueryExpression):
    """A single SELECT block."""

    ctes: List[CTE] = field(default_factory=list)
    recursive: bool = False
    distinct: bool = False
    distinct_on: List[Expression] = field(default_factory=list)
    projections: List[Projection] = field(default_factory=list)
    from_sources: List[TableSource] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderByItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    windows: List[Tuple] = field(default_factory=list)  # (name, WindowSpec)
    #: post-window row filter (Snowflake/BigQuery/DuckDB QUALIFY); may
    #: reference projection aliases like ORDER BY does.
    qualify: Optional[Expression] = None


@dataclass
class SetOperation(QueryExpression):
    """A set operation combining two query expressions."""

    operator: str = "UNION"  # UNION | INTERSECT | EXCEPT
    all: bool = False
    left: QueryExpression = None
    right: QueryExpression = None
    ctes: List[CTE] = field(default_factory=list)
    order_by: List[OrderByItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None

    def leaves(self):
        """Yield the non-set-operation leaf query blocks, left to right."""
        for side in (self.left, self.right):
            if isinstance(side, SetOperation):
                for leaf in side.leaves():
                    yield leaf
            elif side is not None:
                yield side


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Statement(Node):
    """Marker base class for top-level statements."""


@dataclass
class QueryStatement(Statement):
    """A bare query used as a statement (a plain SELECT)."""

    query: QueryExpression = None


@dataclass
class ColumnDef(Node):
    """A column definition in CREATE TABLE."""

    name: str = ""
    type_name: str = ""
    constraints: List[str] = field(default_factory=list)


@dataclass
class CreateTable(Statement):
    """CREATE TABLE with an explicit column list (DDL, no query)."""

    name: QualifiedName = None
    columns: List[ColumnDef] = field(default_factory=list)
    temporary: bool = False
    if_not_exists: bool = False


@dataclass
class CreateView(Statement):
    """CREATE [OR REPLACE] [MATERIALIZED] VIEW name AS query."""

    name: QualifiedName = None
    column_names: List[str] = field(default_factory=list)
    query: QueryExpression = None
    or_replace: bool = False
    materialized: bool = False


@dataclass
class CreateTableAs(Statement):
    """CREATE [TEMP] TABLE name AS query."""

    name: QualifiedName = None
    query: QueryExpression = None
    temporary: bool = False
    if_not_exists: bool = False


@dataclass
class OnConflictClause(Node):
    """The upsert tail of an INSERT: ``ON CONFLICT [(cols)] DO ...``.

    ``do_update`` selects between ``DO UPDATE SET`` (with ``assignments``
    and an optional ``where``) and ``DO NOTHING``.  Assignment expressions
    may reference the ``excluded`` pseudo-relation (the would-be inserted
    row) as well as the target table.
    """

    columns: List[str] = field(default_factory=list)
    do_update: bool = False
    assignments: List[Tuple] = field(default_factory=list)  # (column, Expression)
    where: Optional[Expression] = None


@dataclass
class InsertStatement(Statement):
    """INSERT INTO table [(cols)] query|VALUES [ON CONFLICT ...]."""

    table: QualifiedName = None
    columns: List[str] = field(default_factory=list)
    query: Optional[QueryExpression] = None
    values: List[List[Expression]] = field(default_factory=list)
    on_conflict: Optional[OnConflictClause] = None


@dataclass
class UpdateStatement(Statement):
    """UPDATE table SET col = expr, ... [FROM ...] [WHERE ...]."""

    table: QualifiedName = None
    alias: Optional[str] = None
    assignments: List[Tuple] = field(default_factory=list)  # (column, Expression)
    from_sources: List[TableSource] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class DeleteStatement(Statement):
    """DELETE FROM table [USING ...] [WHERE ...]."""

    table: QualifiedName = None
    alias: Optional[str] = None
    using_sources: List[TableSource] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class MergeWhen(Node):
    """One ``WHEN [NOT] MATCHED [AND cond] THEN action`` arm of a MERGE.

    ``action`` is ``"update"`` (with ``assignments``), ``"delete"``,
    ``"insert"`` (with ``columns``/``values``) or ``"nothing"``.
    """

    matched: bool = True
    condition: Optional[Expression] = None
    action: str = "update"
    assignments: List[Tuple] = field(default_factory=list)  # (column, Expression)
    columns: List[str] = field(default_factory=list)
    values: List[Expression] = field(default_factory=list)


@dataclass
class MergeStatement(Statement):
    """MERGE INTO target USING source ON condition WHEN ... THEN ...."""

    target: QualifiedName = None
    alias: Optional[str] = None
    source: TableSource = None
    condition: Expression = None
    when_clauses: List[MergeWhen] = field(default_factory=list)


@dataclass
class DropStatement(Statement):
    """DROP TABLE/VIEW name (recorded but ignored by lineage extraction)."""

    object_type: str = "TABLE"
    name: QualifiedName = None
    if_exists: bool = False
    cascade: bool = False
