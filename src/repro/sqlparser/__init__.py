"""A from-scratch SQL tokenizer and parser.

This package is the substrate that replaces SQLGlot in the original
LineageX implementation.  It provides:

* :mod:`repro.sqlparser.lexer` -- a tokenizer for a PostgreSQL-flavoured
  SQL dialect.
* :mod:`repro.sqlparser.parser` -- a recursive-descent parser producing
  typed abstract-syntax trees (:mod:`repro.sqlparser.ast_nodes`).
* :mod:`repro.sqlparser.printer` -- regeneration of SQL text from an AST.
* :mod:`repro.sqlparser.visitor` -- generic tree walking utilities used by
  the lineage extraction module.

The public convenience entry points are :func:`parse` (parse a script into
a list of statements) and :func:`parse_one` (parse exactly one statement).
"""

from .errors import SQLError, TokenizeError, ParseError
from .tokens import Token, TokenType
from .lexer import Lexer, tokenize
from . import ast_nodes as ast
from .parser import Parser, parse, parse_one
from .printer import to_sql
from .visitor import walk, walk_postorder, find_all, transform

__all__ = [
    "SQLError",
    "TokenizeError",
    "ParseError",
    "Token",
    "TokenType",
    "Lexer",
    "tokenize",
    "ast",
    "Parser",
    "parse",
    "parse_one",
    "to_sql",
    "walk",
    "walk_postorder",
    "find_all",
    "transform",
]
