"""Regenerate SQL text from an AST.

The printer produces canonical, single-line SQL that can be re-parsed by
:mod:`repro.sqlparser.parser`.  It is used by the round-trip property tests,
by the EXPLAIN simulator (to display plan steps), and by the dbt wrapper when
it materialises compiled model text.

Implementation: the renderer *streams* — every method writes string pieces
into a sink callable instead of composing and returning intermediate
strings, so one render of a statement allocates a single flat piece list
joined exactly once.  :func:`canonical_sql_and_hash` rides the same pass to
produce the canonical text *and* its content hash together (the fingerprint
the incremental layer and the persistent store key on), eliminating the
separate print-then-hash passes the cold path used to pay.  The hash input
is byte-identical to the historical ``sha256(kind + "\\0" + sql)`` form, so
existing store keys remain valid.
"""

import hashlib

from . import ast_nodes as ast
from .dialect import quote_identifier, quote_literal


def to_sql(node):
    """Render ``node`` (a statement, query or expression) as SQL text."""
    pieces = []
    _Printer(pieces.append).render(node)
    return "".join(pieces)


def canonical_sql_and_hash(node, kind):
    """One pass over ``node``: ``(canonical_sql, content_hash)``.

    ``content_hash`` is ``sha256(kind || "\\0" || canonical_sql)`` — exactly
    the fingerprint :attr:`repro.core.preprocess.ParsedQuery.content_hash`
    exposes, computed here without re-rendering or re-walking the AST.
    """
    pieces = []
    _Printer(pieces.append).render(node)
    sql = "".join(pieces)
    return sql, content_hash_of(sql, kind)


def content_hash_of(sql, kind):
    """The content hash of already-canonical SQL text (replayed records)."""
    digest = hashlib.sha256()
    digest.update(kind.encode("utf-8"))
    digest.update(b"\0")
    digest.update(sql.encode("utf-8"))
    return digest.hexdigest()


#: (node class) -> unbound renderer function, resolved once per class.
_DISPATCH = {}


class _Printer:
    """Streaming recursive SQL renderer over a ``write(piece)`` sink."""

    __slots__ = ("_write",)

    def __init__(self, write):
        self._write = write

    # ------------------------------------------------------------------
    def render(self, node):
        if node is None:
            return
        cls = type(node)
        method = _DISPATCH.get(cls)
        if method is None:
            method = getattr(_Printer, f"_render_{cls.__name__}", None)
            if method is None:
                raise TypeError(f"cannot render node of type {cls.__name__}")
            _DISPATCH[cls] = method
        method(self, node)

    def _render_list(self, items, separator=", "):
        write = self._write
        for index, item in enumerate(items):
            if index:
                write(separator)
            self.render(item)

    def _write_identifiers(self, names, separator=", "):
        write = self._write
        for index, name in enumerate(names):
            if index:
                write(separator)
            write(quote_identifier(name))

    # -- names -----------------------------------------------------------
    def _render_QualifiedName(self, node):
        self._write_identifiers(node.parts, separator=".")

    # -- statements -------------------------------------------------------
    def _render_QueryStatement(self, node):
        self.render(node.query)

    def _render_CreateView(self, node):
        write = self._write
        write("CREATE ")
        if node.or_replace:
            write("OR REPLACE ")
        if node.materialized:
            write("MATERIALIZED ")
        write("VIEW ")
        self._render_QualifiedName(node.name)
        if node.column_names:
            write(" (")
            self._write_identifiers(node.column_names)
            write(")")
        write(" AS ")
        self.render(node.query)

    def _render_CreateTableAs(self, node):
        write = self._write
        write("CREATE ")
        if node.temporary:
            write("TEMP ")
        write("TABLE ")
        if node.if_not_exists:
            write("IF NOT EXISTS ")
        self._render_QualifiedName(node.name)
        write(" AS ")
        self.render(node.query)

    def _render_CreateTable(self, node):
        write = self._write
        write("CREATE TEMP TABLE" if node.temporary else "CREATE TABLE")
        if node.if_not_exists:
            write(" IF NOT EXISTS")
        write(" ")
        self._render_QualifiedName(node.name)
        write(" (")
        for index, column in enumerate(node.columns):
            if index:
                write(", ")
            write(f"{quote_identifier(column.name)} {column.type_name}".strip())
        write(")")

    def _render_InsertStatement(self, node):
        write = self._write
        write("INSERT INTO ")
        self._render_QualifiedName(node.table)
        if node.columns:
            write(" (")
            self._write_identifiers(node.columns)
            write(")")
        if node.query is not None:
            write(" ")
            self.render(node.query)
        elif node.values:
            write(" VALUES ")
            self._render_value_rows(node.values)
        if node.on_conflict is not None:
            self._render_OnConflictClause(node.on_conflict)

    def _render_assignments(self, assignments):
        write = self._write
        for index, (column, expression) in enumerate(assignments):
            if index:
                write(", ")
            write(quote_identifier(column))
            write(" = ")
            self.render(expression)

    def _render_OnConflictClause(self, node):
        write = self._write
        write(" ON CONFLICT")
        if node.columns:
            write(" (")
            self._write_identifiers(node.columns)
            write(")")
        if not node.do_update:
            write(" DO NOTHING")
            return
        write(" DO UPDATE SET ")
        self._render_assignments(node.assignments)
        if node.where is not None:
            write(" WHERE ")
            self.render(node.where)

    def _render_MergeStatement(self, node):
        write = self._write
        write("MERGE INTO ")
        self._render_QualifiedName(node.target)
        if node.alias:
            write(f" AS {quote_identifier(node.alias)}")
        write(" USING ")
        self.render(node.source)
        write(" ON ")
        self.render(node.condition)
        for when in node.when_clauses:
            self._render_MergeWhen(when)

    def _render_MergeWhen(self, node):
        write = self._write
        write(" WHEN MATCHED" if node.matched else " WHEN NOT MATCHED")
        if node.condition is not None:
            write(" AND ")
            self.render(node.condition)
        write(" THEN ")
        action = node.action
        if action == "update":
            write("UPDATE SET ")
            self._render_assignments(node.assignments)
        elif action == "delete":
            write("DELETE")
        elif action == "insert":
            write("INSERT")
            if node.columns:
                write(" (")
                self._write_identifiers(node.columns)
                write(")")
            write(" VALUES (")
            self._render_list(node.values)
            write(")")
        else:
            write("DO NOTHING")

    def _render_value_rows(self, rows):
        write = self._write
        for index, row in enumerate(rows):
            if index:
                write(", ")
            write("(")
            self._render_list(row)
            write(")")

    def _render_UpdateStatement(self, node):
        write = self._write
        write("UPDATE ")
        self._render_QualifiedName(node.table)
        if node.alias:
            write(f" AS {quote_identifier(node.alias)}")
        write(" SET ")
        for index, (column, expression) in enumerate(node.assignments):
            if index:
                write(", ")
            write(quote_identifier(column))
            write(" = ")
            self.render(expression)
        if node.from_sources:
            write(" FROM ")
            self._render_list(node.from_sources)
        if node.where is not None:
            write(" WHERE ")
            self.render(node.where)

    def _render_DeleteStatement(self, node):
        write = self._write
        write("DELETE FROM ")
        self._render_QualifiedName(node.table)
        if node.alias:
            write(f" AS {quote_identifier(node.alias)}")
        if node.using_sources:
            write(" USING ")
            self._render_list(node.using_sources)
        if node.where is not None:
            write(" WHERE ")
            self.render(node.where)

    def _render_DropStatement(self, node):
        write = self._write
        write("DROP ")
        write(node.object_type)
        if node.if_exists:
            write(" IF EXISTS")
        write(" ")
        self._render_QualifiedName(node.name)
        if node.cascade:
            write(" CASCADE")

    # -- query expressions --------------------------------------------------
    def _render_Select(self, node):
        write = self._write
        if node.ctes:
            self._render_with(node.ctes, node.recursive)
            write(" ")
        write("SELECT")
        if node.distinct:
            if node.distinct_on:
                write(" DISTINCT ON (")
                self._render_list(node.distinct_on)
                write(")")
            else:
                write(" DISTINCT")
        if node.projections:
            write(" ")
            self._render_list(node.projections)
        if node.from_sources:
            write(" FROM ")
            self._render_list(node.from_sources)
        if node.where is not None:
            write(" WHERE ")
            self.render(node.where)
        if node.group_by:
            write(" GROUP BY ")
            self._render_list(node.group_by)
        if node.having is not None:
            write(" HAVING ")
            self.render(node.having)
        if node.windows:
            write(" WINDOW ")
            for index, (name, spec) in enumerate(node.windows):
                if index:
                    write(", ")
                write(quote_identifier(name))
                write(" AS (")
                self._render_window_body(spec)
                write(")")
        if node.qualify is not None:
            write(" QUALIFY ")
            self.render(node.qualify)
        self._render_trailing(node)

    def _render_SetOperation(self, node):
        write = self._write
        if node.ctes:
            self._render_with(node.ctes, False)
            write(" ")
        self.render(node.left)
        write(" ")
        write(node.operator)
        if node.all:
            write(" ALL")
        write(" ")
        if isinstance(node.right, ast.SetOperation):
            write("(")
            self.render(node.right)
            write(")")
        else:
            self.render(node.right)
        self._render_trailing(node)

    def _render_with(self, ctes, recursive):
        write = self._write
        write("WITH RECURSIVE " if recursive else "WITH ")
        for index, cte in enumerate(ctes):
            if index:
                write(", ")
            write(quote_identifier(cte.name))
            if cte.column_names:
                write("(")
                self._write_identifiers(cte.column_names)
                write(")")
            write(" AS (")
            self.render(cte.query)
            write(")")

    def _render_trailing(self, node):
        write = self._write
        order_by = getattr(node, "order_by", None)
        if order_by:
            write(" ORDER BY ")
            self._render_list(order_by)
        limit = getattr(node, "limit", None)
        if limit is not None:
            write(" LIMIT ")
            self.render(limit)
        offset = getattr(node, "offset", None)
        if offset is not None:
            write(" OFFSET ")
            self.render(offset)

    def _render_CTE(self, node):
        write = self._write
        write(quote_identifier(node.name))
        write(" AS (")
        self.render(node.query)
        write(")")

    def _render_Projection(self, node):
        self.render(node.expression)
        if node.alias:
            self._write(f" AS {quote_identifier(node.alias)}")

    def _render_OrderByItem(self, node):
        self.render(node.expression)
        if node.descending:
            self._write(" DESC")
        if node.nulls:
            self._write(f" NULLS {node.nulls}")

    # -- table sources --------------------------------------------------------
    def _render_alias_suffix(self, alias, column_aliases):
        write = self._write
        if alias:
            write(f" AS {quote_identifier(alias)}")
            if column_aliases:
                write("(")
                self._write_identifiers(column_aliases)
                write(")")

    def _render_TableRef(self, node):
        self._render_QualifiedName(node.name)
        self._render_alias_suffix(node.alias, node.column_aliases)

    def _render_SubquerySource(self, node):
        write = self._write
        if node.lateral:
            write("LATERAL ")
        write("(")
        self.render(node.query)
        write(")")
        self._render_alias_suffix(node.alias, node.column_aliases)

    def _render_ValuesSource(self, node):
        write = self._write
        write("(VALUES ")
        self._render_value_rows(node.rows)
        write(")")
        self._render_alias_suffix(node.alias, node.column_aliases)

    def _render_FunctionSource(self, node):
        self.render(node.function)
        self._render_alias_suffix(node.alias, node.column_aliases)

    def _render_Join(self, node):
        write = self._write
        self.render(node.left)
        if node.join_type == "CROSS":
            write(" CROSS JOIN ")
            self.render(node.right)
            return
        keyword = "JOIN" if node.join_type == "INNER" else f"{node.join_type} JOIN"
        if node.natural:
            keyword = "NATURAL " + keyword
        write(" ")
        write(keyword)
        write(" ")
        self.render(node.right)
        if node.condition is not None:
            write(" ON ")
            self.render(node.condition)
        elif node.using_columns:
            write(" USING (")
            self._write_identifiers(node.using_columns)
            write(")")

    # -- expressions --------------------------------------------------------
    def _render_ColumnRef(self, node):
        write = self._write
        for part in node.qualifier:
            write(quote_identifier(part))
            write(".")
        write(quote_identifier(node.name))

    def _render_Star(self, node):
        write = self._write
        for part in node.qualifier:
            write(quote_identifier(part))
            write(".")
        write("*")

    def _render_Literal(self, node):
        write = self._write
        kind = node.kind
        if kind == "null":
            write("NULL")
        elif kind == "boolean":
            write("TRUE" if node.value else "FALSE")
        elif kind == "number":
            write(str(node.value))
        elif kind == "interval":
            write(f"INTERVAL {quote_literal(node.value)}")
        else:
            write(quote_literal(node.value))

    def _render_Parameter(self, node):
        self._write(node.name)

    def _render_FunctionCall(self, node):
        write = self._write
        if (
            node.name.lower() in ("current_date", "current_time", "current_timestamp")
            and not node.args
            and node.over is None
            and node.filter_clause is None
        ):
            write(node.name.upper())
            return
        write(node.name)
        write("(")
        if node.distinct:
            write("DISTINCT ")
        if node.is_star_arg:
            write("*")
        else:
            self._render_list(node.args)
        write(")")
        if node.filter_clause is not None:
            write(" FILTER (WHERE ")
            self.render(node.filter_clause)
            write(")")
        if node.over is not None:
            write(" OVER (")
            self._render_window_body(node.over)
            write(")")

    def _render_window_body(self, spec):
        write = self._write
        first = True
        if spec.name:
            write(quote_identifier(spec.name))
            first = False
        if spec.partition_by:
            if not first:
                write(" ")
            write("PARTITION BY ")
            self._render_list(spec.partition_by)
            first = False
        if spec.order_by:
            if not first:
                write(" ")
            write("ORDER BY ")
            self._render_list(spec.order_by)
            first = False
        if spec.frame is not None:
            if not first:
                write(" ")
            write(f"{spec.frame.kind} {spec.frame.text}".strip())

    def _render_WindowSpec(self, node):
        self._render_window_body(node)

    def _render_WindowFrame(self, node):
        self._write(f"{node.kind} {node.text}".strip())

    def _render_BinaryOp(self, node):
        write = self._write
        wrap = node.operator in ("AND", "OR")
        if wrap:
            write("(")
        self.render(node.left)
        write(" ")
        write(node.operator)
        write(" ")
        self.render(node.right)
        if wrap:
            write(")")

    def _render_UnaryOp(self, node):
        write = self._write
        if node.operator == "NOT":
            write("NOT (")
            self.render(node.operand)
            write(")")
            return
        write(node.operator)
        self.render(node.operand)

    def _render_Case(self, node):
        write = self._write
        write("CASE")
        if node.operand is not None:
            write(" ")
            self.render(node.operand)
        for when in node.whens:
            write(" WHEN ")
            self.render(when.condition)
            write(" THEN ")
            self.render(when.result)
        if node.else_result is not None:
            write(" ELSE ")
            self.render(node.else_result)
        write(" END")

    def _render_CaseWhen(self, node):
        write = self._write
        write("WHEN ")
        self.render(node.condition)
        write(" THEN ")
        self.render(node.result)

    def _render_Cast(self, node):
        write = self._write
        write("CAST(")
        self.render(node.operand)
        write(f" AS {node.type_name})")

    def _render_ExtractExpr(self, node):
        write = self._write
        write(f"EXTRACT({node.part} FROM ")
        self.render(node.operand)
        write(")")

    def _render_SubqueryExpr(self, node):
        write = self._write
        write("(")
        self.render(node.query)
        write(")")

    def _render_ExistsExpr(self, node):
        write = self._write
        write("NOT EXISTS (" if node.negated else "EXISTS (")
        self.render(node.query)
        write(")")

    def _render_InExpr(self, node):
        write = self._write
        self.render(node.operand)
        write(" NOT IN (" if node.negated else " IN (")
        if node.query is not None:
            self.render(node.query)
        else:
            self._render_list(node.values)
        write(")")

    def _render_BetweenExpr(self, node):
        write = self._write
        self.render(node.operand)
        write(" NOT BETWEEN " if node.negated else " BETWEEN ")
        self.render(node.low)
        write(" AND ")
        self.render(node.high)

    def _render_IsNullExpr(self, node):
        self.render(node.operand)
        self._write(" IS NOT NULL" if node.negated else " IS NULL")

    def _render_LikeExpr(self, node):
        write = self._write
        self.render(node.operand)
        write(" NOT " if node.negated else " ")
        write(node.operator)
        write(" ")
        self.render(node.pattern)

    def _render_ExpressionList(self, node):
        write = self._write
        write("(")
        self._render_list(node.items)
        write(")")

    def _render_GroupingSetSpec(self, node):
        write = self._write
        write(node.kind)
        write(" (")
        self._render_list(node.items)
        write(")")
