"""Regenerate SQL text from an AST.

The printer produces canonical, single-line SQL that can be re-parsed by
:mod:`repro.sqlparser.parser`.  It is used by the round-trip property tests,
by the EXPLAIN simulator (to display plan steps), and by the dbt wrapper when
it materialises compiled model text.
"""

from . import ast_nodes as ast
from .dialect import quote_identifier, quote_literal


def to_sql(node):
    """Render ``node`` (a statement, query or expression) as SQL text."""
    return _Printer().render(node)


class _Printer:
    """Stateless recursive SQL renderer."""

    # ------------------------------------------------------------------
    def render(self, node):
        if node is None:
            return ""
        method = getattr(self, f"_render_{type(node).__name__}", None)
        if method is None:
            raise TypeError(f"cannot render node of type {type(node).__name__}")
        return method(node)

    # -- names -----------------------------------------------------------
    def _render_QualifiedName(self, node):
        return ".".join(quote_identifier(part) for part in node.parts)

    # -- statements -------------------------------------------------------
    def _render_QueryStatement(self, node):
        return self.render(node.query)

    def _render_CreateView(self, node):
        pieces = ["CREATE"]
        if node.or_replace:
            pieces.append("OR REPLACE")
        if node.materialized:
            pieces.append("MATERIALIZED")
        pieces.append("VIEW")
        pieces.append(self.render(node.name))
        if node.column_names:
            pieces.append("(" + ", ".join(quote_identifier(c) for c in node.column_names) + ")")
        pieces.append("AS")
        pieces.append(self.render(node.query))
        return " ".join(pieces)

    def _render_CreateTableAs(self, node):
        pieces = ["CREATE"]
        if node.temporary:
            pieces.append("TEMP")
        pieces.append("TABLE")
        if node.if_not_exists:
            pieces.append("IF NOT EXISTS")
        pieces.append(self.render(node.name))
        pieces.append("AS")
        pieces.append(self.render(node.query))
        return " ".join(pieces)

    def _render_CreateTable(self, node):
        columns = ", ".join(
            f"{quote_identifier(column.name)} {column.type_name}".strip()
            for column in node.columns
        )
        prefix = "CREATE TEMP TABLE" if node.temporary else "CREATE TABLE"
        if node.if_not_exists:
            prefix += " IF NOT EXISTS"
        return f"{prefix} {self.render(node.name)} ({columns})"

    def _render_InsertStatement(self, node):
        pieces = ["INSERT INTO", self.render(node.table)]
        if node.columns:
            pieces.append("(" + ", ".join(quote_identifier(c) for c in node.columns) + ")")
        if node.query is not None:
            pieces.append(self.render(node.query))
        elif node.values:
            rows = ", ".join(
                "(" + ", ".join(self.render(v) for v in row) + ")" for row in node.values
            )
            pieces.append("VALUES " + rows)
        return " ".join(pieces)

    def _render_UpdateStatement(self, node):
        pieces = ["UPDATE", self.render(node.table)]
        if node.alias:
            pieces.append(f"AS {quote_identifier(node.alias)}")
        assignments = ", ".join(
            f"{quote_identifier(column)} = {self.render(expression)}"
            for column, expression in node.assignments
        )
        pieces.append("SET " + assignments)
        if node.from_sources:
            pieces.append("FROM " + ", ".join(self.render(s) for s in node.from_sources))
        if node.where is not None:
            pieces.append("WHERE " + self.render(node.where))
        return " ".join(pieces)

    def _render_DeleteStatement(self, node):
        pieces = ["DELETE FROM", self.render(node.table)]
        if node.alias:
            pieces.append(f"AS {quote_identifier(node.alias)}")
        if node.using_sources:
            pieces.append("USING " + ", ".join(self.render(s) for s in node.using_sources))
        if node.where is not None:
            pieces.append("WHERE " + self.render(node.where))
        return " ".join(pieces)

    def _render_DropStatement(self, node):
        pieces = ["DROP", node.object_type]
        if node.if_exists:
            pieces.append("IF EXISTS")
        pieces.append(self.render(node.name))
        if node.cascade:
            pieces.append("CASCADE")
        return " ".join(pieces)

    # -- query expressions --------------------------------------------------
    def _render_Select(self, node):
        pieces = []
        if node.ctes:
            pieces.append(self._render_with(node.ctes, node.recursive))
        pieces.append("SELECT")
        if node.distinct:
            if node.distinct_on:
                pieces.append(
                    "DISTINCT ON ("
                    + ", ".join(self.render(e) for e in node.distinct_on)
                    + ")"
                )
            else:
                pieces.append("DISTINCT")
        pieces.append(", ".join(self.render(p) for p in node.projections))
        if node.from_sources:
            pieces.append("FROM")
            pieces.append(", ".join(self.render(s) for s in node.from_sources))
        if node.where is not None:
            pieces.append("WHERE " + self.render(node.where))
        if node.group_by:
            pieces.append("GROUP BY " + ", ".join(self.render(e) for e in node.group_by))
        if node.having is not None:
            pieces.append("HAVING " + self.render(node.having))
        if node.windows:
            rendered = ", ".join(
                f"{quote_identifier(name)} AS ({self._render_window_body(spec)})"
                for name, spec in node.windows
            )
            pieces.append("WINDOW " + rendered)
        pieces.append(self._render_trailing(node))
        return " ".join(piece for piece in pieces if piece)

    def _render_SetOperation(self, node):
        pieces = []
        if node.ctes:
            pieces.append(self._render_with(node.ctes, False))
        operator = node.operator + (" ALL" if node.all else "")
        left = self.render(node.left)
        right = self.render(node.right)
        if isinstance(node.right, ast.SetOperation):
            right = f"({right})"
        pieces.append(f"{left} {operator} {right}")
        pieces.append(self._render_trailing(node))
        return " ".join(piece for piece in pieces if piece)

    def _render_with(self, ctes, recursive):
        keyword = "WITH RECURSIVE" if recursive else "WITH"
        rendered = []
        for cte in ctes:
            header = quote_identifier(cte.name)
            if cte.column_names:
                header += "(" + ", ".join(quote_identifier(c) for c in cte.column_names) + ")"
            rendered.append(f"{header} AS ({self.render(cte.query)})")
        return f"{keyword} " + ", ".join(rendered)

    def _render_trailing(self, node):
        pieces = []
        if getattr(node, "order_by", None):
            pieces.append(
                "ORDER BY " + ", ".join(self.render(item) for item in node.order_by)
            )
        if getattr(node, "limit", None) is not None:
            pieces.append("LIMIT " + self.render(node.limit))
        if getattr(node, "offset", None) is not None:
            pieces.append("OFFSET " + self.render(node.offset))
        return " ".join(pieces)

    def _render_CTE(self, node):
        return f"{quote_identifier(node.name)} AS ({self.render(node.query)})"

    def _render_Projection(self, node):
        text = self.render(node.expression)
        if node.alias:
            text += f" AS {quote_identifier(node.alias)}"
        return text

    def _render_OrderByItem(self, node):
        text = self.render(node.expression)
        if node.descending:
            text += " DESC"
        if node.nulls:
            text += f" NULLS {node.nulls}"
        return text

    # -- table sources --------------------------------------------------------
    def _render_TableRef(self, node):
        text = self.render(node.name)
        if node.alias:
            text += f" AS {quote_identifier(node.alias)}"
            if node.column_aliases:
                text += "(" + ", ".join(quote_identifier(c) for c in node.column_aliases) + ")"
        return text

    def _render_SubquerySource(self, node):
        text = f"({self.render(node.query)})"
        if node.lateral:
            text = "LATERAL " + text
        if node.alias:
            text += f" AS {quote_identifier(node.alias)}"
            if node.column_aliases:
                text += "(" + ", ".join(quote_identifier(c) for c in node.column_aliases) + ")"
        return text

    def _render_ValuesSource(self, node):
        rows = ", ".join(
            "(" + ", ".join(self.render(v) for v in row) + ")" for row in node.rows
        )
        text = f"(VALUES {rows})"
        if node.alias:
            text += f" AS {quote_identifier(node.alias)}"
            if node.column_aliases:
                text += "(" + ", ".join(quote_identifier(c) for c in node.column_aliases) + ")"
        return text

    def _render_FunctionSource(self, node):
        text = self.render(node.function)
        if node.alias:
            text += f" AS {quote_identifier(node.alias)}"
            if node.column_aliases:
                text += "(" + ", ".join(quote_identifier(c) for c in node.column_aliases) + ")"
        return text

    def _render_Join(self, node):
        left = self.render(node.left)
        right = self.render(node.right)
        if node.join_type == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = "JOIN" if node.join_type == "INNER" else f"{node.join_type} JOIN"
        if node.natural:
            keyword = "NATURAL " + keyword
        text = f"{left} {keyword} {right}"
        if node.condition is not None:
            text += f" ON {self.render(node.condition)}"
        elif node.using_columns:
            text += " USING (" + ", ".join(quote_identifier(c) for c in node.using_columns) + ")"
        return text

    # -- expressions --------------------------------------------------------
    def _render_ColumnRef(self, node):
        parts = list(node.qualifier) + [node.name]
        return ".".join(quote_identifier(part) for part in parts)

    def _render_Star(self, node):
        if node.qualifier:
            return ".".join(quote_identifier(part) for part in node.qualifier) + ".*"
        return "*"

    def _render_Literal(self, node):
        if node.kind == "null":
            return "NULL"
        if node.kind == "boolean":
            return "TRUE" if node.value else "FALSE"
        if node.kind == "number":
            return str(node.value)
        if node.kind == "interval":
            return f"INTERVAL {quote_literal(node.value)}"
        return quote_literal(node.value)

    def _render_Parameter(self, node):
        return node.name

    def _render_FunctionCall(self, node):
        if (
            node.name.lower() in ("current_date", "current_time", "current_timestamp")
            and not node.args
            and node.over is None
            and node.filter_clause is None
        ):
            return node.name.upper()
        if node.is_star_arg:
            inner = "*"
        else:
            inner = ", ".join(self.render(a) for a in node.args)
        if node.distinct:
            inner = "DISTINCT " + inner
        text = f"{node.name}({inner})"
        if node.filter_clause is not None:
            text += f" FILTER (WHERE {self.render(node.filter_clause)})"
        if node.over is not None:
            text += f" OVER ({self._render_window_body(node.over)})"
        return text

    def _render_window_body(self, spec):
        pieces = []
        if spec.name:
            pieces.append(quote_identifier(spec.name))
        if spec.partition_by:
            pieces.append(
                "PARTITION BY " + ", ".join(self.render(e) for e in spec.partition_by)
            )
        if spec.order_by:
            pieces.append(
                "ORDER BY " + ", ".join(self.render(i) for i in spec.order_by)
            )
        if spec.frame is not None:
            pieces.append(f"{spec.frame.kind} {spec.frame.text}".strip())
        return " ".join(pieces)

    def _render_WindowSpec(self, node):
        return self._render_window_body(node)

    def _render_WindowFrame(self, node):
        return f"{node.kind} {node.text}".strip()

    def _render_BinaryOp(self, node):
        left = self.render(node.left)
        right = self.render(node.right)
        if node.operator in ("AND", "OR"):
            return f"({left} {node.operator} {right})"
        return f"{left} {node.operator} {right}"

    def _render_UnaryOp(self, node):
        if node.operator == "NOT":
            return f"NOT ({self.render(node.operand)})"
        return f"{node.operator}{self.render(node.operand)}"

    def _render_Case(self, node):
        pieces = ["CASE"]
        if node.operand is not None:
            pieces.append(self.render(node.operand))
        for when in node.whens:
            pieces.append(f"WHEN {self.render(when.condition)} THEN {self.render(when.result)}")
        if node.else_result is not None:
            pieces.append(f"ELSE {self.render(node.else_result)}")
        pieces.append("END")
        return " ".join(pieces)

    def _render_CaseWhen(self, node):
        return f"WHEN {self.render(node.condition)} THEN {self.render(node.result)}"

    def _render_Cast(self, node):
        return f"CAST({self.render(node.operand)} AS {node.type_name})"

    def _render_ExtractExpr(self, node):
        return f"EXTRACT({node.part} FROM {self.render(node.operand)})"

    def _render_SubqueryExpr(self, node):
        return f"({self.render(node.query)})"

    def _render_ExistsExpr(self, node):
        prefix = "NOT EXISTS" if node.negated else "EXISTS"
        return f"{prefix} ({self.render(node.query)})"

    def _render_InExpr(self, node):
        keyword = "NOT IN" if node.negated else "IN"
        if node.query is not None:
            return f"{self.render(node.operand)} {keyword} ({self.render(node.query)})"
        values = ", ".join(self.render(v) for v in node.values)
        return f"{self.render(node.operand)} {keyword} ({values})"

    def _render_BetweenExpr(self, node):
        keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"{self.render(node.operand)} {keyword} "
            f"{self.render(node.low)} AND {self.render(node.high)}"
        )

    def _render_IsNullExpr(self, node):
        keyword = "IS NOT NULL" if node.negated else "IS NULL"
        return f"{self.render(node.operand)} {keyword}"

    def _render_LikeExpr(self, node):
        keyword = node.operator
        if node.negated:
            keyword = "NOT " + keyword
        return f"{self.render(node.operand)} {keyword} {self.render(node.pattern)}"

    def _render_ExpressionList(self, node):
        return "(" + ", ".join(self.render(item) for item in node.items) + ")"
