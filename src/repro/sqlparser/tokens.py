"""Token definitions for the SQL lexer.

A :class:`Token` is a small value object carrying the token type, the raw
text, and its location in the source.  :class:`TokenType` enumerates the
lexical categories the parser distinguishes.
"""

from enum import Enum, auto


def source_location(source, position):
    """``(line, column)`` (1-based) of character ``position`` in ``source``.

    Computed on demand from the offset — the lexer's hot path only carries
    offsets and defers line/column bookkeeping to error reporting.
    """
    line = source.count("\n", 0, position) + 1
    column = position - source.rfind("\n", 0, position)
    return line, column


class TokenType(Enum):
    """Lexical categories produced by :class:`repro.sqlparser.lexer.Lexer`."""

    KEYWORD = auto()        # reserved SQL keywords (SELECT, FROM, ...)
    IDENTIFIER = auto()     # unquoted identifiers (table, column names)
    QUOTED_IDENTIFIER = auto()  # "double quoted" identifiers
    STRING = auto()         # 'single quoted' string literals
    NUMBER = auto()         # integer and decimal literals
    OPERATOR = auto()       # + - * / % = <> != < <= > >= || :: etc.
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    SEMICOLON = auto()
    STAR = auto()           # the * character (projection star or multiply)
    PARAMETER = auto()      # positional ($1) or named (:name, %(name)s) params
    COMMENT = auto()        # -- line comments and /* block comments */
    EOF = auto()


#: Reserved words recognised by the lexer.  Matching is case-insensitive; the
#: lexer upper-cases keyword token values so the parser can compare directly.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "ANY",
        "AS",
        "ASC",
        "BETWEEN",
        "BY",
        "CASE",
        "CAST",
        "CREATE",
        "CROSS",
        "CURRENT_DATE",
        "CURRENT_TIME",
        "CURRENT_TIMESTAMP",
        "DELETE",
        "DESC",
        "DISTINCT",
        "DROP",
        "ELSE",
        "END",
        "EXCEPT",
        "EXISTS",
        "EXTRACT",
        "FALSE",
        "FETCH",
        "FILTER",
        "FIRST",
        "FOLLOWING",
        "FOR",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IF",
        "ILIKE",
        "IN",
        "INNER",
        "INSERT",
        "INTERSECT",
        "INTERVAL",
        "INTO",
        "IS",
        "JOIN",
        "LAST",
        "LATERAL",
        "LEFT",
        "LIKE",
        "LIMIT",
        "MATERIALIZED",
        "NATURAL",
        "NOT",
        "NULL",
        "NULLS",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "OVER",
        "PARTITION",
        "PRECEDING",
        "PRIMARY",
        "KEY",
        "RANGE",
        "RECURSIVE",
        "REPLACE",
        "RIGHT",
        "ROW",
        "ROWS",
        "SELECT",
        "SET",
        "SIMILAR",
        "SOME",
        "TABLE",
        "TEMP",
        "TEMPORARY",
        "THEN",
        "TRUE",
        "UNBOUNDED",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "USING",
        "VALUES",
        "VIEW",
        "WHEN",
        "WHERE",
        "WINDOW",
        "WITH",
        "WITHIN",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = (
    "::",
    "<=",
    ">=",
    "<>",
    "!=",
    "||",
    "->>",
    "->",
    "#>>",
    "#>",
    "~*",
    "!~*",
    "!~",
)

#: Single-character operators.
SINGLE_CHAR_OPERATORS = frozenset("+-/%=<>^~&|#")


class Token:
    """A single lexical token.

    Parameters
    ----------
    type:
        The :class:`TokenType` of this token.
    value:
        The token text.  Keywords are upper-cased; identifiers preserve the
        original casing (SQL identifier folding is applied later, by the
        parser / name resolution code).
    position:
        0-based character offset of the first character in the source text.
    line / column:
        1-based source location.  Lazily derived from ``position`` against
        the ``source`` text the lexer attaches — the scanner never pays for
        per-character line tracking; the numbers only materialise when an
        error message (or a caller) asks for them.  Explicit values may be
        passed for tokens constructed without a source.
    """

    __slots__ = ("type", "value", "position", "_source", "_line", "_column")

    def __init__(self, type, value, position=0, source=None, line=None, column=None):
        # the hot path (one call per token) stores exactly four slots;
        # _line/_column stay unset until a property materialises them
        self.type = type
        self.value = value
        self.position = position
        self._source = source
        if line is not None or column is not None:
            # explicit location (tokens built without a source); the old
            # dataclass defaulted each to 1
            self._line = 1 if line is None else line
            self._column = 1 if column is None else column

    @property
    def line(self):
        try:
            return self._line
        except AttributeError:
            self._line, self._column = source_location(
                self._source or "", self.position
            )
        return self._line

    @property
    def column(self):
        try:
            return self._column
        except AttributeError:
            self._line, self._column = source_location(
                self._source or "", self.position
            )
        return self._column

    def is_keyword(self, *names):
        """Return True if this token is a keyword with one of ``names``."""
        return self.type == TokenType.KEYWORD and self.value in names

    def __eq__(self, other):
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.type == other.type
            and self.value == other.value
            and self.position == other.position
        )

    def __hash__(self):
        return hash((self.type, self.value, self.position))

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"
