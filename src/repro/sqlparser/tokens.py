"""Token definitions for the SQL lexer.

A :class:`Token` is a small value object carrying the token type, the raw
text, and its location in the source.  :class:`TokenType` enumerates the
lexical categories the parser distinguishes.
"""

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """Lexical categories produced by :class:`repro.sqlparser.lexer.Lexer`."""

    KEYWORD = auto()        # reserved SQL keywords (SELECT, FROM, ...)
    IDENTIFIER = auto()     # unquoted identifiers (table, column names)
    QUOTED_IDENTIFIER = auto()  # "double quoted" identifiers
    STRING = auto()         # 'single quoted' string literals
    NUMBER = auto()         # integer and decimal literals
    OPERATOR = auto()       # + - * / % = <> != < <= > >= || :: etc.
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    SEMICOLON = auto()
    STAR = auto()           # the * character (projection star or multiply)
    PARAMETER = auto()      # positional ($1) or named (:name, %(name)s) params
    COMMENT = auto()        # -- line comments and /* block comments */
    EOF = auto()


#: Reserved words recognised by the lexer.  Matching is case-insensitive; the
#: lexer upper-cases keyword token values so the parser can compare directly.
KEYWORDS = frozenset(
    {
        "ALL",
        "AND",
        "ANY",
        "AS",
        "ASC",
        "BETWEEN",
        "BY",
        "CASE",
        "CAST",
        "CREATE",
        "CROSS",
        "CURRENT_DATE",
        "CURRENT_TIME",
        "CURRENT_TIMESTAMP",
        "DELETE",
        "DESC",
        "DISTINCT",
        "DROP",
        "ELSE",
        "END",
        "EXCEPT",
        "EXISTS",
        "EXTRACT",
        "FALSE",
        "FETCH",
        "FILTER",
        "FIRST",
        "FOLLOWING",
        "FOR",
        "FROM",
        "FULL",
        "GROUP",
        "HAVING",
        "IF",
        "ILIKE",
        "IN",
        "INNER",
        "INSERT",
        "INTERSECT",
        "INTERVAL",
        "INTO",
        "IS",
        "JOIN",
        "LAST",
        "LATERAL",
        "LEFT",
        "LIKE",
        "LIMIT",
        "MATERIALIZED",
        "NATURAL",
        "NOT",
        "NULL",
        "NULLS",
        "OFFSET",
        "ON",
        "OR",
        "ORDER",
        "OUTER",
        "OVER",
        "PARTITION",
        "PRECEDING",
        "PRIMARY",
        "KEY",
        "RANGE",
        "RECURSIVE",
        "REPLACE",
        "RIGHT",
        "ROW",
        "ROWS",
        "SELECT",
        "SET",
        "SIMILAR",
        "SOME",
        "TABLE",
        "TEMP",
        "TEMPORARY",
        "THEN",
        "TRUE",
        "UNBOUNDED",
        "UNION",
        "UNIQUE",
        "UPDATE",
        "USING",
        "VALUES",
        "VIEW",
        "WHEN",
        "WHERE",
        "WINDOW",
        "WITH",
        "WITHIN",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = (
    "::",
    "<=",
    ">=",
    "<>",
    "!=",
    "||",
    "->>",
    "->",
    "#>>",
    "#>",
    "~*",
    "!~*",
    "!~",
)

#: Single-character operators.
SINGLE_CHAR_OPERATORS = frozenset("+-/%=<>^~&|#")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Parameters
    ----------
    type:
        The :class:`TokenType` of this token.
    value:
        The token text.  Keywords are upper-cased; identifiers preserve the
        original casing (SQL identifier folding is applied later, by the
        parser / name resolution code).
    position:
        0-based character offset of the first character in the source text.
    line:
        1-based line number.
    column:
        1-based column number.
    """

    type: TokenType
    value: str
    position: int = 0
    line: int = 1
    column: int = 1

    def is_keyword(self, *names):
        """Return True if this token is a keyword with one of ``names``."""
        return self.type == TokenType.KEYWORD and self.value in names

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"
