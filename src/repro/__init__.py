"""repro — a reproduction of LineageX (ICDE 2025).

LineageX is a lightweight Python library that infers column-level lineage
from SQL query logs by static analysis and visualizes the result.  The
public API mirrors the paper's one-call workflow:

>>> import repro
>>> result = repro.lineagex(open("customer.sql").read())
>>> result.save("output/")          # lineagex.json + lineagex.html
>>> impact = result.impact_analysis("web.page")
>>> sorted(str(c) for c in impact.all_columns)[:3]
['info.age', 'info.name', 'info.oid']

Package map
-----------
``repro.sqlparser``   the SQL tokenizer/parser substrate (replaces SQLGlot)
``repro.core``        the lineage extraction pipeline (the paper's contribution)
``repro.catalog``     schema catalog + simulated EXPLAIN (database-connection mode)
``repro.analysis``    impact analysis, graph diff, accuracy metrics
``repro.output``      JSON / HTML / DOT / text renderings
``repro.baselines``   SQLLineage-like, SQLGlot-like and LLM-like baselines
``repro.datasets``    Example 1, retail, synthetic MIMIC, random workloads
``repro.dbt``         dbt project wrapper
"""

from .core.runner import LineageXResult, LineageXRunner, lineagex
from .core.lineage import ColumnEdge, LineageGraph, TableLineage
from .core.column_refs import ColumnName
from .core.dag import DependencyDAG
from .core.errors import (
    AmbiguousColumnError,
    CyclicDependencyError,
    DeferralLimitExceededError,
    LineageError,
    UnknownRelationError,
)
from .core.plan_extractor import PlanModeRunner, lineagex_with_connection
from .catalog import Catalog, catalog_from_sql
from .analysis.impact import impact_analysis
from .dbt import lineagex_dbt

__version__ = "1.0.0"

__all__ = [
    "lineagex",
    "lineagex_with_connection",
    "lineagex_dbt",
    "LineageXResult",
    "LineageXRunner",
    "PlanModeRunner",
    "LineageGraph",
    "TableLineage",
    "ColumnEdge",
    "ColumnName",
    "DependencyDAG",
    "Catalog",
    "catalog_from_sql",
    "impact_analysis",
    "LineageError",
    "UnknownRelationError",
    "AmbiguousColumnError",
    "CyclicDependencyError",
    "DeferralLimitExceededError",
    "__version__",
]
