"""repro — a reproduction of LineageX (ICDE 2025).

LineageX is a lightweight Python library that infers column-level lineage
from SQL query logs by static analysis and visualizes the result.  The
public API mirrors the paper's one-call workflow:

>>> import repro
>>> result = repro.lineagex(open("customer.sql").read())
>>> result.save("output/")          # lineagex.json + lineagex.html
>>> impact = result.impact_analysis("web.page")
>>> sorted(str(c) for c in impact.all_columns)[:3]
['info.age', 'info.name', 'info.oid']

The one-call functions are shims over the **Session API**, which unifies
source handling (auto-detected adapters for text, files, directories, dbt
projects and JSONL query logs), engine selection (``static`` AST pipeline
vs ``plan`` database-connection mode) and output rendering (a named
renderer registry):

>>> session = repro.LineageSession("warehouse/", workers=4)
>>> result = session.extract()
>>> print(result.render("markdown"))
>>> session.refresh()               # rescan + incremental re-extraction

Package map
-----------
``repro.sqlparser``   the SQL tokenizer/parser substrate (replaces SQLGlot)
``repro.core``        the lineage extraction pipeline (the paper's contribution)
``repro.session``     the LineageSession façade (sources x engines x renderers)
``repro.sources``     input adapters + the auto-detection registry
``repro.store``       persistent content-addressed lineage store (warm starts)
``repro.catalog``     schema catalog + simulated EXPLAIN (database-connection mode)
``repro.analysis``    impact analysis, graph diff, accuracy metrics
``repro.output``      JSON / HTML / DOT / text / CSV / Markdown renderers + registry
``repro.baselines``   SQLLineage-like, SQLGlot-like and LLM-like baselines
``repro.datasets``    Example 1, retail, synthetic MIMIC, random workloads
``repro.dbt``         dbt project wrapper
"""

from .core.runner import LineageXResult, LineageXRunner, lineagex
from .core.lineage import ColumnEdge, LineageGraph, TableLineage
from .core.column_refs import ColumnName
from .core.dag import DependencyDAG
from .core.errors import (
    AmbiguousColumnError,
    CyclicDependencyError,
    DeferralLimitExceededError,
    LineageError,
    LineageRecordError,
    UnknownRelationError,
)
from .core.plan_extractor import PlanModeRunner, lineagex_with_connection
from .store import LineageStore
from .catalog import Catalog, catalog_from_sql
from .analysis.impact import impact_analysis
from .dbt import lineagex_dbt
from .session import LineageResult, LineageSession, SessionConfig
from .streaming import QueryLogStreamer
from .sources import (
    DbtSource,
    DirectorySource,
    FileSource,
    QueryLogSource,
    Source,
    TextSource,
    detect_source,
    register_source,
)
from .output.registry import (
    UnknownFormatError,
    register_renderer,
    renderer_names,
)

__version__ = "1.9.0"

__all__ = [
    "lineagex",
    "lineagex_with_connection",
    "lineagex_dbt",
    "LineageSession",
    "SessionConfig",
    "LineageResult",
    "Source",
    "TextSource",
    "FileSource",
    "DirectorySource",
    "DbtSource",
    "QueryLogSource",
    "QueryLogStreamer",
    "detect_source",
    "register_source",
    "register_renderer",
    "renderer_names",
    "UnknownFormatError",
    "LineageXResult",
    "LineageXRunner",
    "PlanModeRunner",
    "LineageGraph",
    "TableLineage",
    "ColumnEdge",
    "ColumnName",
    "DependencyDAG",
    "Catalog",
    "catalog_from_sql",
    "impact_analysis",
    "LineageError",
    "LineageRecordError",
    "LineageStore",
    "UnknownRelationError",
    "AmbiguousColumnError",
    "CyclicDependencyError",
    "DeferralLimitExceededError",
    "__version__",
]
