"""Test-support utilities shipped with the library.

This package holds machinery that production code *hooks into* but never
depends on for behaviour: today that is the deterministic fault-injection
harness (:mod:`repro.testing.faults`).  Shipping it inside ``repro``
(rather than under ``tests/``) is deliberate — the serving daemon runs as
a subprocess in the crash-recovery suite, and the injection sites live in
production modules, so the harness must be importable wherever the
library is.
"""

from . import faults

__all__ = ["faults"]
