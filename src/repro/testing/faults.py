"""Deterministic fault injection — seedable failures at named sites.

Robustness claims are only worth something when they are *demonstrated
against real faults*, and faults must be reproducible to be debuggable.
This module gives production code cheap named injection points::

    from repro.testing import faults
    ...
    faults.fire("store.read", shard=index)   # no-op unless a plan is active

and gives tests/benchmarks a :class:`FaultPlan` that decides — from a
seed, deterministically, independently per site — what each ``fire``
call does:

* **error rates** — ``rates={"store.read": 0.3}`` makes 30% of hits
  raise :class:`InjectedFault`.  Each site draws from its own
  ``random.Random`` seeded by ``(seed, site)``, so adding a new site (or
  reordering calls across sites) never perturbs another site's
  sequence — the fault schedule of a seed is stable across refactors;
* **delays** — ``delays={"batcher.refresh": 0.5}`` sleeps at the site
  (slow-parse / slow-batch scenarios);
* **process kills** — ``kill={"site": "journal.append", "after": 3}``
  SIGKILLs the *current process* on the third hit of the site: the
  crash-recovery suite uses this to die at an exact journal offset.

Site naming: ``<component>.<operation>``, optionally targeted at one
shard with ``rates={"store.read[2]": 1.0}`` (a shard-qualified rate wins
over the bare site rate).

Plans install process-globally (:func:`install` / :func:`reset`) because
the code under test — the daemon's store threads, the journal, worker
pools — spans threads that cannot thread a plan argument through.  The
crash suite configures subprocess daemons through the ``REPRO_FAULTS``
environment variable (a JSON plan; see :func:`install_from_env`), which
``python -m repro serve`` reads at boot.

With no plan installed every ``fire`` is a dict lookup and a ``None``
check — cheap enough to leave the hooks in production paths.
"""

import json
import os
import random
import signal
import threading
import time

#: environment variable holding a JSON plan for subprocess daemons, e.g.
#: ``{"seed": 7, "rates": {"store.read": 0.3}, "kill": {"site": "journal.append", "after": 5}}``
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(Exception):
    """A deliberately injected failure (never raised by real code paths).

    Attributes
    ----------
    site:
        The injection-site name that fired.
    """

    def __init__(self, site):
        self.site = site
        super().__init__(f"injected fault at {site}")

    def __reduce__(self):
        return (type(self), (self.site,))


class FaultPlan:
    """One deterministic fault schedule.

    Parameters
    ----------
    seed:
        Root seed; each site derives its own independent RNG from it.
    rates:
        ``{site: probability}`` of raising :class:`InjectedFault` per hit.
        A shard-qualified key (``"store.write[1]"``) takes precedence over
        the bare site key for hits carrying that ``shard``.
    delays:
        ``{site: seconds}`` slept on every hit (before any error draw).
    kill:
        ``{"site": name, "after": n}`` — SIGKILL the process on the n-th
        hit of ``site`` (1-based).  ``{"signal": "SIGTERM"}`` selects a
        different signal.
    """

    def __init__(self, seed=0, rates=None, delays=None, kill=None):
        self.seed = int(seed)
        self.rates = dict(rates or {})
        self.delays = dict(delays or {})
        self.kill = dict(kill) if kill else None
        self._rngs = {}
        self._hits = {}
        self._lock = threading.Lock()

    @classmethod
    def from_dict(cls, payload):
        return cls(
            seed=payload.get("seed", 0),
            rates=payload.get("rates"),
            delays=payload.get("delays"),
            kill=payload.get("kill"),
        )

    def to_dict(self):
        payload = {"seed": self.seed, "rates": self.rates, "delays": self.delays}
        if self.kill:
            payload["kill"] = self.kill
        return payload

    def to_env(self):
        """The JSON value to put in :data:`ENV_VAR` for a subprocess."""
        return json.dumps(self.to_dict(), sort_keys=True)

    # ------------------------------------------------------------------
    def _rng(self, key):
        rng = self._rngs.get(key)
        if rng is None:
            # per-site stream: one site's draw count never shifts another's
            rng = self._rngs[key] = random.Random(f"{self.seed}:{key}")
        return rng

    def hits(self, site):
        """How many times ``site`` has fired under this plan."""
        return self._hits.get(site, 0)

    def fire(self, site, shard=None):
        """Apply the plan at ``site``; raises :class:`InjectedFault` on a hit."""
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            delay = self.delays.get(site)
            kill_now = (
                self.kill is not None
                and self.kill.get("site") == site
                and count >= int(self.kill.get("after", 1))
            )
            qualified = f"{site}[{shard}]" if shard is not None else None
            draw_key = None
            if qualified is not None and qualified in self.rates:
                draw_key = qualified
            elif site in self.rates:
                draw_key = site
            failed = (
                draw_key is not None
                and self._rng(draw_key).random() < float(self.rates[draw_key])
            )
        if delay:
            time.sleep(float(delay))
        if kill_now:
            signame = (self.kill or {}).get("signal", "SIGKILL")
            os.kill(os.getpid(), getattr(signal, signame))
            # SIGKILL never returns; a catchable signal (SIGTERM) does —
            # fall through so the site behaves normally while handlers run
        if failed:
            raise InjectedFault(draw_key)


#: the process-global active plan (``None`` = every fire() is a no-op).
_active = None


def install(plan):
    """Activate ``plan`` process-wide; returns it (for chaining)."""
    global _active
    _active = plan
    return plan


def reset():
    """Deactivate fault injection (tests call this in teardown)."""
    global _active
    _active = None


def active():
    """The installed :class:`FaultPlan`, or ``None``."""
    return _active


def fire(site, shard=None):
    """Production-side hook: apply the active plan at ``site`` (no-op otherwise)."""
    plan = _active
    if plan is not None:
        plan.fire(site, shard=shard)


def plan_from_env(environ=None):
    """Parse :data:`ENV_VAR` into a :class:`FaultPlan` (``None`` if unset/bad)."""
    raw = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not raw:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(payload, dict):
        return None
    return FaultPlan.from_dict(payload)


def install_from_env(environ=None):
    """Install the environment-configured plan, if any (daemon boot calls this)."""
    plan = plan_from_env(environ)
    if plan is not None:
        install(plan)
    return plan
