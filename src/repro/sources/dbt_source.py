"""dbt-project input: resolve ``ref()``/``source()`` macros before extraction.

Accepts a :class:`~repro.dbt.project.DbtProject`, a path to a project
directory, or an in-memory ``{model: raw_sql}`` mapping whose bodies use
dbt macros.  Detection claims a directory only when it carries dbt markers
(a ``dbt_project.yml`` or a ``models/`` subdirectory) so plain directories
of ``.sql`` files still go to :class:`~repro.sources.filesystem.DirectorySource`;
an in-memory mapping is claimed when any model body contains a macro.
Construct :class:`DbtSource` explicitly to force dbt handling either way.
"""

import os
import re

from .base import Source, fingerprint_mapping, register_source
from ..dbt.project import DbtProject

_MACRO_PATTERN = re.compile(r"\{\{\s*(ref|source|config)\s*\(")


def _has_dbt_markers(path):
    return (
        os.path.isfile(os.path.join(path, "dbt_project.yml"))
        or os.path.isdir(os.path.join(path, "models"))
    )


@register_source
class DbtSource(Source):
    """A dbt project, compiled down to a ``{model: sql}`` Query Dictionary."""

    kind = "dbt"
    priority = 20

    def __init__(self, raw, source_mapping=None):
        super().__init__(raw)
        self.source_mapping = source_mapping

    @classmethod
    def matches(cls, raw):
        if isinstance(raw, DbtProject):
            return True
        if isinstance(raw, dict):
            return any(
                isinstance(sql, str) and _MACRO_PATTERN.search(sql)
                for sql in raw.values()
            )
        if isinstance(raw, (str, os.PathLike)):
            path = os.fspath(raw)
            if "\n" in path or ";" in path:
                return False
            return os.path.isdir(path) and _has_dbt_markers(path)
        return False

    # ------------------------------------------------------------------
    def project(self):
        """The input materialised as a :class:`DbtProject`."""
        raw = self.raw
        if isinstance(raw, DbtProject):
            return raw
        if isinstance(raw, dict):
            return DbtProject.from_models(raw, source_mapping=self.source_mapping)
        return DbtProject.from_directory(
            os.fspath(raw), source_mapping=self.source_mapping
        )

    def load(self):
        return self.project().compiled()

    def fingerprint(self):
        return fingerprint_mapping(self.load())

    @property
    def supports_rescan(self):
        return isinstance(self.raw, (str, os.PathLike))

    def rescan(self):
        if not self.supports_rescan:
            return super().rescan()
        return self.project().compiled()
