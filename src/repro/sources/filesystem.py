"""Filesystem-backed SQL input: one ``.sql`` file or a directory of them.

:class:`DirectorySource` is the adapter behind the session's rescan-based
``refresh()``: it reads every ``*.sql`` file into a ``{stem: sql}`` mapping
(the same shape and key normalisation :func:`repro.core.preprocess` uses
for directory paths), so a second scan can be content-hash-diffed against
the first and only the edited files re-extracted.
"""

import os

from .base import Source, register_source
from ..sqlparser.dialect import normalize_name


def _is_pathlike(raw):
    return isinstance(raw, (str, os.PathLike))


def _fspath(raw):
    return os.fspath(raw) if isinstance(raw, os.PathLike) else raw


@register_source
class FileSource(Source):
    """A single ``.sql`` file."""

    kind = "file"
    priority = 40

    @classmethod
    def matches(cls, raw):
        if not _is_pathlike(raw):
            return False
        path = _fspath(raw)
        if "\n" in path or ";" in path:
            return False
        return os.path.isfile(path) and path.endswith(".sql")

    @property
    def path(self):
        return _fspath(self.raw)

    def load(self):
        # hand the path itself to preprocess() so identifier generation for
        # anonymous statements matches the historical file-input behaviour
        return self.path


@register_source
class DirectorySource(Source):
    """A directory of ``.sql`` files (non-recursive, sorted by filename)."""

    kind = "directory"
    priority = 30

    @classmethod
    def matches(cls, raw):
        if not _is_pathlike(raw):
            return False
        path = _fspath(raw)
        if "\n" in path or ";" in path:
            return False
        return os.path.isdir(path)

    @property
    def path(self):
        return _fspath(self.raw)

    def load(self):
        return self.scan()

    def scan(self):
        """``{normalized stem: text}`` for every ``*.sql`` file, sorted."""
        mapping = {}
        for filename in sorted(os.listdir(self.path)):
            if not filename.endswith(".sql"):
                continue
            full = os.path.join(self.path, filename)
            with open(full, "r", encoding="utf-8") as handle:
                mapping[normalize_name(os.path.splitext(filename)[0])] = handle.read()
        return mapping

    @property
    def supports_rescan(self):
        return True

    def rescan(self):
        return self.scan()
