"""The source-adapter contract and the auto-detection registry.

A :class:`Source` adapts one kind of input — raw SQL text, a ``.sql`` file,
a directory of files, a dbt project, a JSONL query log — into the
``{name: sql}`` / text shape the preprocessing module consumes.  Adapters
register themselves with :func:`register_source`; :meth:`Source.detect`
walks the registry in priority order and returns the first adapter whose
:meth:`~Source.matches` accepts the raw input, so the session façade (and
the one-call API on top of it) can take "anything" without a mode flag.

Adapters that are backed by something re-scannable (a directory, a log
file) additionally support :meth:`~Source.rescan` and
:meth:`~Source.fingerprint`, which the session's ``refresh()`` uses for
content-hash change detection: re-scan, diff the per-name hashes against
the snapshot taken at extraction time, and feed only the delta into the
incremental layer.
"""

import hashlib


class SourceDetectionError(TypeError):
    """No registered adapter accepts the given raw input."""


class Source:
    """Base class for input adapters.

    Subclasses set :attr:`kind` (the registry name), :attr:`priority`
    (lower = consulted earlier during detection) and implement
    :meth:`matches` and :meth:`load`.
    """

    #: registry name, e.g. ``"directory"`` — also what ``detect`` reports.
    kind = "abstract"
    #: detection order; more specific adapters get lower numbers so the
    #: catch-all text adapter only fires when nothing else claims the input.
    priority = 100

    def __init__(self, raw):
        self.raw = raw

    # -- the adapter contract ------------------------------------------
    @classmethod
    def matches(cls, raw):
        """True when this adapter can ingest ``raw`` (used by ``detect``)."""
        return False

    def load(self):
        """The preprocess()-compatible payload (SQL text or ``{name: sql}``)."""
        raise NotImplementedError

    # -- refresh support (optional) ------------------------------------
    @property
    def supports_rescan(self):
        """Whether :meth:`rescan` re-reads the backing store."""
        return False

    def rescan(self):
        """Re-read the backing store and return a fresh ``{name: sql}`` map.

        Only meaningful when :attr:`supports_rescan` is true; the default
        raises so callers get a clear message instead of stale data.
        """
        raise SourceDetectionError(
            f"{self.kind!r} sources are not backed by a re-scannable store; "
            "pass the changes to refresh() explicitly"
        )

    def fingerprint(self):
        """``{name: sha256(text)}`` over the current payload, when mappable.

        Returns ``None`` for payloads without stable per-name addressing
        (raw scripts, lists) — the session then skips rescan-based change
        detection for this source.
        """
        payload = self.load()
        if isinstance(payload, dict):
            return fingerprint_mapping(payload)
        return None

    def __repr__(self):
        return f"{type(self).__name__}({self.raw!r})"


def content_hash(text):
    """A stable hex fingerprint of one source text."""
    return hashlib.sha256(str(text).encode("utf-8")).hexdigest()


def fingerprint_mapping(mapping):
    """Per-name content hashes for a ``{name: sql}`` payload."""
    return {name: content_hash(sql) for name, sql in mapping.items()}


def diff_fingerprints(old, new_mapping):
    """The ``{name: sql-or-None}`` delta between a snapshot and a re-scan.

    Names whose hash changed (or that are new) map to their current text;
    names that disappeared map to ``None`` — exactly the ``changes`` shape
    :meth:`repro.core.runner.LineageXResult.update` consumes.
    """
    new_hashes = fingerprint_mapping(new_mapping)
    changes = {
        name: new_mapping[name]
        for name, value in new_hashes.items()
        if old.get(name) != value
    }
    for name in old:
        if name not in new_hashes:
            changes[name] = None
    return changes


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_SOURCE_TYPES = []


def register_source(source_class):
    """Register an adapter class for auto-detection (usable as a decorator).

    Registration is idempotent per class; adapters are consulted in
    ascending :attr:`Source.priority` order (registration order breaks
    ties).
    """
    if source_class not in _SOURCE_TYPES:
        _SOURCE_TYPES.append(source_class)
        _SOURCE_TYPES.sort(key=lambda cls: cls.priority)
    return source_class


def registered_sources():
    """The registered adapter classes in detection order."""
    return list(_SOURCE_TYPES)


def detect(raw):
    """Dispatch ``raw`` to the first adapter that claims it.

    A :class:`Source` instance passes through unchanged, so callers can
    always force a specific adapter by constructing it themselves.
    """
    if isinstance(raw, Source):
        return raw
    for source_class in _SOURCE_TYPES:
        if source_class.matches(raw):
            return source_class(raw)
    raise SourceDetectionError(
        "no source adapter accepts input of type "
        f"{type(raw).__name__}; expected SQL text, a {{name: sql}} mapping, "
        "a .sql file or directory path, a dbt project, or a JSONL query log"
    )


# give Source itself the registry entry point
Source.detect = staticmethod(detect)
