"""Source adapters: pluggable input handling for the Session API.

``Source.detect(raw)`` (also exported as :func:`detect_source`) dispatches
any supported raw input to the right adapter:

=================  ==========================================================
adapter            claims
=================  ==========================================================
``QueryLogSource`` ``.jsonl``/``.ndjson`` paths and inline JSONL query logs
``DbtSource``      dbt projects (directory with dbt markers, DbtProject,
                   or a mapping whose bodies use ``ref()``/``source()``)
``DirectorySource`` a directory of ``.sql`` files
``FileSource``     a single ``.sql`` file
``TextSource``     everything else preprocess() accepts (scripts, lists,
                   plain ``{name: sql}`` mappings)
=================  ==========================================================

Third-party adapters subclass :class:`Source` and call
:func:`register_source`; detection order follows ``Source.priority``.
"""

from .base import (
    Source,
    SourceDetectionError,
    content_hash,
    detect as detect_source,
    diff_fingerprints,
    register_source,
    registered_sources,
)
from .text import TextSource
from .filesystem import DirectorySource, FileSource
from .dbt_source import DbtSource
from .query_log import (
    LogPosition,
    LogTailer,
    QueryLogFormatError,
    QueryLogRecord,
    QueryLogSource,
    parse_query_log,
)

__all__ = [
    "Source",
    "SourceDetectionError",
    "TextSource",
    "FileSource",
    "DirectorySource",
    "DbtSource",
    "QueryLogSource",
    "QueryLogRecord",
    "QueryLogFormatError",
    "LogPosition",
    "LogTailer",
    "parse_query_log",
    "detect_source",
    "register_source",
    "registered_sources",
    "content_hash",
    "diff_fingerprints",
]
