"""JSONL query-log input — the captured-workload workload class.

Database proxies and warehouse audit logs commonly emit one JSON object per
executed statement.  :class:`QueryLogSource` ingests that shape directly:
each line is an object with

``sql``        the statement text (required; ``query`` is accepted as an alias),
``name``       an optional stable identifier for the statement (plays the
               dbt-model role for bare ``SELECT`` statements),
``timestamp``  an optional sort key (ISO-8601 string or epoch number).

Any other keys are preserved on the parsed record for callers that want
them.  When every record carries a *parseable* timestamp (ISO-8601 string,
offset-aware or naive, or an epoch number) the log is replayed in
chronological order (ties keep file order); if any timestamp is missing or
unparseable, file order is used for the whole log.
Re-executions of the same ``name`` are collapsed to the **latest**
definition, which turns an append-only log into the warehouse's current
state.  The input may be a path to a ``.jsonl``/``.ndjson`` file (re-scannable,
so ``session.refresh()`` picks up appended lines) or the log text itself.
"""

import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone

from .base import Source, fingerprint_mapping, register_source
from ..sqlparser.dialect import normalize_name

_LOG_SUFFIXES = (".jsonl", ".ndjson")


class QueryLogFormatError(ValueError):
    """A line of the JSONL query log is malformed."""


def _timestamp_key(value):
    """A comparable chronological key for a timestamp, or ``None``.

    Epoch numbers and ISO-8601 strings (with or without a UTC offset; a
    trailing ``Z`` is accepted) all reduce to an epoch float so mixed
    timestamp styles within one log still order correctly.  Naive
    datetimes are interpreted as UTC.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        if text.endswith(("Z", "z")):
            text = text[:-1] + "+00:00"
        try:
            parsed = datetime.fromisoformat(text)
        except ValueError:
            return None
        if parsed.tzinfo is None:
            parsed = parsed.replace(tzinfo=timezone.utc)
        return parsed.timestamp()
    return None


@dataclass
class QueryLogRecord:
    """One parsed line of the query log."""

    name: str
    sql: str
    timestamp: object = None
    line_number: int = 0
    extra: dict = field(default_factory=dict)


def parse_query_log(text):
    """Parse JSONL query-log text into a list of :class:`QueryLogRecord`."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise QueryLogFormatError(
                f"query log line {line_number} is not valid JSON: {error}"
            ) from None
        if not isinstance(payload, dict):
            raise QueryLogFormatError(
                f"query log line {line_number} must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        sql = payload.get("sql", payload.get("query"))
        if not isinstance(sql, str) or not sql.strip():
            raise QueryLogFormatError(
                f"query log line {line_number} has no 'sql' (or 'query') string"
            )
        name = payload.get("name")
        if name is None:
            name = f"query_log_{line_number}"
        extra = {
            key: value
            for key, value in payload.items()
            if key not in ("sql", "query", "name", "timestamp")
        }
        records.append(
            QueryLogRecord(
                name=normalize_name(str(name)),
                sql=sql,
                timestamp=payload.get("timestamp"),
                line_number=line_number,
                extra=extra,
            )
        )
    keys = [_timestamp_key(record.timestamp) for record in records]
    if records and all(key is not None for key in keys):
        order = {id(record): key for record, key in zip(records, keys)}
        records.sort(key=lambda record: (order[id(record)], record.line_number))
    return records


@register_source
class QueryLogSource(Source):
    """A JSONL query log (file path or inline text)."""

    kind = "query_log"
    priority = 10

    @classmethod
    def matches(cls, raw):
        if isinstance(raw, os.PathLike):
            raw = os.fspath(raw)
        if not isinstance(raw, str):
            return False
        if "\n" not in raw and raw.endswith(_LOG_SUFFIXES):
            return os.path.isfile(raw)
        return cls._looks_like_log_text(raw)

    @staticmethod
    def _looks_like_log_text(text):
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if not line.startswith("{"):
                return False
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                return False
            return isinstance(payload, dict) and (
                "sql" in payload or "query" in payload
            )
        return False

    # ------------------------------------------------------------------
    @property
    def is_file_backed(self):
        raw = self.raw
        if isinstance(raw, os.PathLike):
            return True
        return isinstance(raw, str) and "\n" not in raw and os.path.isfile(raw)

    def _text(self):
        if self.is_file_backed:
            with open(os.fspath(self.raw), "r", encoding="utf-8") as handle:
                return handle.read()
        return self.raw

    def records(self):
        """The parsed :class:`QueryLogRecord` list, in replay order."""
        return parse_query_log(self._text())

    def load(self):
        mapping = {}
        for record in self.records():
            # the latest definition per name wins (re-created views in an
            # append-only log collapse to the current state)
            mapping.pop(record.name, None)
            mapping[record.name] = record.sql
        return mapping

    def fingerprint(self):
        return fingerprint_mapping(self.load())

    @property
    def supports_rescan(self):
        return self.is_file_backed

    def rescan(self):
        if not self.supports_rescan:
            return super().rescan()
        return self.load()
