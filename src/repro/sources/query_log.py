"""JSONL query-log input — the captured-workload workload class.

Database proxies and warehouse audit logs commonly emit one JSON object per
executed statement.  :class:`QueryLogSource` ingests that shape directly:
each line is an object with

``sql``        the statement text (required; ``query`` is accepted as an alias),
``name``       an optional stable identifier for the statement (plays the
               dbt-model role for bare ``SELECT`` statements),
``timestamp``  an optional sort key (ISO-8601 string or epoch number).

Any other keys are preserved on the parsed record for callers that want
them.  When every record carries a *parseable* timestamp (ISO-8601 string,
offset-aware or naive, or an epoch number) the log is replayed in
chronological order (ties keep file order); if any timestamp is missing or
unparseable, file order is used for the whole log.
Re-executions of the same ``name`` are collapsed to the **latest**
definition, which turns an append-only log into the warehouse's current
state.  The input may be a path to a ``.jsonl``/``.ndjson`` file (re-scannable,
so ``session.refresh()`` picks up appended lines) or the log text itself.

Unnamed statements get an auto-generated identifier in the **reserved**
``query_log:<line>`` namespace.  The colon keeps auto-names structurally
distinct from anything a warehouse would call a relation; an explicit
``name`` spelled like a reserved auto-name is rejected rather than silently
merged with an unrelated auto-named statement.

File-backed logs are read **incrementally**: a :class:`LogTailer` consumes
only the bytes appended since the previous read (tracking byte offset,
line count and a running prefix digest), detects rotation/truncation and
restarts clean, and never commits a torn final line — so ``rescan()`` on a
growing firehose log costs the tail, not the whole file.  The same tailer
is the substrate of the continuous streaming mode
(:class:`repro.streaming.QueryLogStreamer`).
"""

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from datetime import datetime, timezone

from .base import Source, fingerprint_mapping, register_source
from ..sqlparser.dialect import normalize_name

_LOG_SUFFIXES = (".jsonl", ".ndjson")

#: how many non-empty lines ``_looks_like_log_text`` samples before
#: claiming inline text as a query log.  Every sampled line must parse —
#: a JSON first line over a SQL remainder falls through to TextSource.
SNIFF_WINDOW = 8

#: auto-generated names live in the reserved ``query_log:<line>`` namespace;
#: the colon cannot appear in a SQL relation name, so a collision with a
#: user-supplied ``name`` is impossible by construction (and an explicit
#: name spelled like one is rejected instead of silently merging).
_AUTO_NAME_PATTERN = re.compile(r"query_log:\d+\Z")

#: bytes of the first log line remembered for cheap rotation detection
#: (a copy-truncate rotation keeps the inode; a changed head betrays it).
_HEAD_PROBE_BYTES = 256


class QueryLogFormatError(ValueError):
    """A line of the JSONL query log is malformed."""


def _timestamp_key(value):
    """A comparable chronological key for a timestamp, or ``None``.

    Epoch numbers and ISO-8601 strings (with or without a UTC offset; a
    trailing ``Z`` is accepted) all reduce to an epoch float so mixed
    timestamp styles within one log still order correctly.  Naive
    datetimes are interpreted as UTC.
    """
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        if text.endswith(("Z", "z")):
            text = text[:-1] + "+00:00"
        try:
            parsed = datetime.fromisoformat(text)
        except ValueError:
            return None
        if parsed.tzinfo is None:
            parsed = parsed.replace(tzinfo=timezone.utc)
        return parsed.timestamp()
    return None


@dataclass
class QueryLogRecord:
    """One parsed line of the query log."""

    name: str
    sql: str
    timestamp: object = None
    line_number: int = 0
    extra: dict = field(default_factory=dict)


def _parse_log_line(line, line_number):
    """``line`` -> :class:`QueryLogRecord`, or ``None`` for a blank line.

    The single parsing path shared by the one-shot loader, the incremental
    tailer and the streamer — whatever consumes the log, a given line
    always produces the same record (or the same error).
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise QueryLogFormatError(
            f"query log line {line_number} is not valid JSON: {error}"
        ) from None
    if not isinstance(payload, dict):
        raise QueryLogFormatError(
            f"query log line {line_number} must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    sql = payload.get("sql", payload.get("query"))
    if not isinstance(sql, str) or not sql.strip():
        raise QueryLogFormatError(
            f"query log line {line_number} has no 'sql' (or 'query') string"
        )
    name = payload.get("name")
    if name is None:
        name = f"query_log:{line_number}"
    else:
        name = normalize_name(str(name))
        if _AUTO_NAME_PATTERN.match(name):
            raise QueryLogFormatError(
                f"query log line {line_number}: explicit name {name!r} is in "
                "the reserved auto-name namespace 'query_log:<line>'; "
                "pick a different name"
            )
    extra = {
        key: value
        for key, value in payload.items()
        if key not in ("sql", "query", "name", "timestamp")
    }
    return QueryLogRecord(
        name=name,
        sql=sql,
        timestamp=payload.get("timestamp"),
        line_number=line_number,
        extra=extra,
    )


def _replay_order(records):
    """``records`` sorted into replay order (a new list).

    Chronological (ties broken by line number) when **every** record's
    timestamp parses; file order for the whole log otherwise.
    """
    keys = [_timestamp_key(record.timestamp) for record in records]
    ordered = list(records)
    if ordered and all(key is not None for key in keys):
        order = {id(record): key for record, key in zip(ordered, keys)}
        ordered.sort(key=lambda record: (order[id(record)], record.line_number))
    return ordered


def parse_query_log(text):
    """Parse JSONL query-log text into a list of :class:`QueryLogRecord`."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        record = _parse_log_line(line, line_number)
        if record is not None:
            records.append(record)
    return _replay_order(records)


# ----------------------------------------------------------------------
# Incremental tail reading
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogPosition:
    """A consumed-prefix checkpoint of a log file.

    ``byte_offset`` and ``line_count`` locate the resume point;
    ``prefix_sha256`` is the digest of every byte consumed up to it, so a
    rotated or rewritten log (same length, different content) is detected
    on resume instead of being silently mis-spliced.
    """

    byte_offset: int = 0
    line_count: int = 0
    prefix_sha256: str = ""

    def to_dict(self):
        return {
            "byte_offset": self.byte_offset,
            "line_count": self.line_count,
            "prefix_sha256": self.prefix_sha256,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            byte_offset=int(payload["byte_offset"]),
            line_count=int(payload["line_count"]),
            prefix_sha256=str(payload["prefix_sha256"]),
        )


class LogTailer:
    """Incremental reader of a JSONL log file.

    Consumes only bytes appended since the previous :meth:`read`, keeping
    the consumed-prefix state (byte offset, raw line count, running SHA-256
    over the consumed bytes).  Only **complete** lines (ending in a
    newline) are ever committed — a torn final line written concurrently by
    the producer is left for the next poll (:meth:`peek_tail` parses it
    without committing, for quiescent-log replay parity with
    :func:`parse_query_log`).

    Rotation and truncation are detected per poll: a shrunken file, a
    changed inode, or changed head bytes reset the tailer to offset 0 so
    the caller can restart clean.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._offset = 0
        self._lines = 0
        self._digest = hashlib.sha256()
        self._inode = None
        self._head = b""

    # -- state ----------------------------------------------------------
    @property
    def position(self):
        """The committed consumed-prefix checkpoint."""
        return LogPosition(
            byte_offset=self._offset,
            line_count=self._lines,
            prefix_sha256=self._digest.hexdigest(),
        )

    def reset(self):
        """Forget the consumed prefix; the next read starts at offset 0."""
        self._offset = 0
        self._lines = 0
        self._digest = hashlib.sha256()
        self._inode = None
        self._head = b""

    # -- reading --------------------------------------------------------
    def _rotated(self, stat):
        """True when the file at ``path`` is no longer our consumed log."""
        if self._offset == 0:
            return False
        if stat.st_size < self._offset:
            return True  # truncated
        if self._inode is not None and stat.st_ino not in (0, self._inode):
            return True  # replaced (new inode)
        if self._head:
            try:
                with open(self.path, "rb") as handle:
                    head = handle.read(len(self._head))
            except OSError:
                return True
            if head != self._head:
                return True  # rewritten in place (copy-truncate rotation)
        return False

    def read(self, max_lines=None):
        """Consume up to ``max_lines`` complete new lines.

        Returns ``(records, reset)``: the parsed, non-blank
        :class:`QueryLogRecord` list (line numbers continue across reads),
        and whether rotation/truncation was detected — in which case the
        tailer restarted from offset 0 and ``records`` already holds the
        beginning of the *new* log (the caller must discard state derived
        from the old one first).
        """
        reset = False
        try:
            stat = os.stat(self.path)
        except OSError:
            if self._offset:
                self.reset()
                reset = True
            return [], reset
        if self._rotated(stat):
            self.reset()
            reset = True
        records = []
        if stat.st_size <= self._offset:
            return records, reset
        consumed = 0
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            while max_lines is None or consumed < max_lines:
                line = handle.readline()
                if not line or not line.endswith(b"\n"):
                    break  # EOF, or a torn tail the producer is mid-write on
                # parse BEFORE committing: a malformed line is never folded
                # into the consumed prefix, so every rescan re-raises the
                # same error the one-shot loader would
                record = self._decode(line, self._lines + 1)
                if self._offset == 0 and not self._head:
                    self._head = line[:_HEAD_PROBE_BYTES]
                self._digest.update(line)
                self._offset += len(line)
                self._lines += 1
                consumed += 1
                if record is not None:
                    records.append(record)
        if self._inode is None:
            self._inode = stat.st_ino or None
        return records, reset

    def peek_tail(self):
        """Parse the uncommitted trailing bytes (a final line without a
        newline), without advancing the committed position.

        Returns the record, or ``None`` when there is no tail, the tail is
        blank, or it contains a newline (i.e. complete lines appeared since
        the last :meth:`read` — call :meth:`read` again instead).  Because
        nothing is committed, re-reading a log that later grows re-parses
        the (now longer) final line correctly.
        """
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return None
        if not chunk or b"\n" in chunk:
            return None
        return self._decode(chunk, self._lines + 1)

    def _decode(self, raw, line_number):
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise QueryLogFormatError(
                f"query log line {line_number} is not valid UTF-8: {error}"
            ) from None
        return _parse_log_line(text, line_number)


@register_source
class QueryLogSource(Source):
    """A JSONL query log (file path or inline text)."""

    kind = "query_log"
    priority = 10

    def __init__(self, raw):
        super().__init__(raw)
        self._tailer = None          # LogTailer for file-backed sources
        self._records = None         # parsed records, file order
        self._keys_ok = True         # every cached record's timestamp parses

    @classmethod
    def matches(cls, raw):
        if isinstance(raw, os.PathLike):
            raw = os.fspath(raw)
        if not isinstance(raw, str):
            return False
        if "\n" not in raw and raw.endswith(_LOG_SUFFIXES):
            return os.path.isfile(raw)
        return cls._looks_like_log_text(raw)

    @staticmethod
    def _looks_like_log_text(text):
        """Claim inline text only when a whole window of lines parses.

        Sampling just the first line mis-claims mixed content (a JSON
        header over a SQL script) and then fails mid-extraction; requiring
        every line of a bounded window to be a JSON object with a
        ``sql``/``query`` key lets such text fall through to TextSource.
        """
        sampled = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if sampled >= SNIFF_WINDOW:
                break
            if not line.startswith("{"):
                return False
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                return False
            if not isinstance(payload, dict) or not (
                "sql" in payload or "query" in payload
            ):
                return False
            sampled += 1
        return sampled > 0

    # ------------------------------------------------------------------
    @property
    def is_file_backed(self):
        raw = self.raw
        if isinstance(raw, os.PathLike):
            return True
        return isinstance(raw, str) and "\n" not in raw and os.path.isfile(raw)

    def _ensure_records(self):
        """``(records, all_keyed)`` — cached file-order records plus any
        uncommitted tail, reading only the appended bytes for file-backed
        logs (full parse once for inline text)."""
        if not self.is_file_backed:
            if self._records is None:
                records = []
                for number, line in enumerate(self.raw.splitlines(), start=1):
                    record = _parse_log_line(line, number)
                    if record is not None:
                        records.append(record)
                self._records = records
                self._keys_ok = all(
                    _timestamp_key(record.timestamp) is not None
                    for record in records
                )
            return self._records, self._keys_ok
        if self._tailer is None:
            self._tailer = LogTailer(os.fspath(self.raw))
            self._records = []
            self._keys_ok = True
        new_records, reset = self._tailer.read()
        if reset:
            self._records = []
            self._keys_ok = True
        if new_records:
            self._records.extend(new_records)
            if self._keys_ok:
                self._keys_ok = all(
                    _timestamp_key(record.timestamp) is not None
                    for record in new_records
                )
        # a final line without a newline is parsed but never committed, so
        # a log that grows past it re-reads the complete line next time
        tail = self._tailer.peek_tail()
        if tail is not None:
            records = self._records + [tail]
            keys_ok = self._keys_ok and _timestamp_key(tail.timestamp) is not None
            return records, keys_ok
        return self._records, self._keys_ok

    def records(self):
        """The parsed :class:`QueryLogRecord` list, in replay order."""
        records, keys_ok = self._ensure_records()
        if keys_ok:
            return _replay_order(records)
        return list(records)

    def load(self):
        mapping = {}
        for record in self.records():
            # the latest definition per name wins (re-created views in an
            # append-only log collapse to the current state)
            mapping.pop(record.name, None)
            mapping[record.name] = record.sql
        return mapping

    def fingerprint(self):
        return fingerprint_mapping(self.load())

    @property
    def supports_rescan(self):
        return self.is_file_backed

    def rescan(self):
        if not self.supports_rescan:
            return super().rescan()
        return self.load()
