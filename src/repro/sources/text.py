"""In-memory SQL input: scripts, lists of scripts, ``{name: sql}`` mappings.

This is the catch-all adapter (highest priority number): anything the more
specific adapters do not claim is handed to :func:`repro.core.preprocess`
verbatim, which preserves the historical behaviour of the one-call API for
every input shape it ever accepted — including filesystem paths, so the
legacy entry points can wrap *any* raw input in a :class:`TextSource` and
behave exactly as before.
"""

from .base import Source, fingerprint_mapping, register_source


@register_source
class TextSource(Source):
    """Raw SQL text, a list of texts, or a ``{name: sql}`` mapping."""

    kind = "text"
    priority = 100

    @classmethod
    def matches(cls, raw):
        if isinstance(raw, str):
            return True
        if isinstance(raw, dict):
            return all(isinstance(sql, str) for sql in raw.values())
        if isinstance(raw, (list, tuple)):
            return all(isinstance(item, str) for item in raw)
        return False

    def load(self):
        return self.raw

    def fingerprint(self):
        if isinstance(self.raw, dict):
            return fingerprint_mapping(self.raw)
        return None
