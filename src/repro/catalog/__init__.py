"""Schema catalog and simulated DBMS substrate.

The original LineageX can optionally connect to PostgreSQL and use
``EXPLAIN`` to obtain exact column metadata.  This package provides the
offline equivalent:

* :mod:`repro.catalog.schema` -- table/column schema objects;
* :mod:`repro.catalog.catalog` -- an in-memory catalog with search-path
  resolution, the stand-in for ``information_schema``;
* :mod:`repro.catalog.introspect` -- build a catalog from ``CREATE TABLE``
  DDL scripts;
* :mod:`repro.catalog.explain` -- a logical planner producing
  PostgreSQL-EXPLAIN-like plan trees with full output-column metadata,
  the stand-in for a live database connection.
"""

from .errors import CatalogError, UndefinedTableError, DuplicateTableError
from .schema import ColumnSchema, TableSchema
from .catalog import Catalog
from .introspect import catalog_from_sql, catalog_from_statements
from .explain import ExplainSimulator, PlanNode

__all__ = [
    "CatalogError",
    "UndefinedTableError",
    "DuplicateTableError",
    "ColumnSchema",
    "TableSchema",
    "Catalog",
    "catalog_from_sql",
    "catalog_from_statements",
    "ExplainSimulator",
    "PlanNode",
]
