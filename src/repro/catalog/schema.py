"""Schema objects: columns and tables.

These are deliberately light-weight -- the lineage extractor only needs
ordered column names (plus, for documentation purposes, types) -- but they
carry enough structure for the EXPLAIN simulator and the dataset generators.
"""

from dataclasses import dataclass, field

from ..sqlparser.dialect import normalize_identifier, normalize_name


@dataclass
class ColumnSchema:
    """One column of a table or view."""

    name: str
    type_name: str = "text"
    nullable: bool = True
    description: str = ""

    def __post_init__(self):
        self.name = normalize_identifier(self.name)

    def to_dict(self):
        return {
            "name": self.name,
            "type": self.type_name,
            "nullable": self.nullable,
            "description": self.description,
        }


@dataclass
class TableSchema:
    """A table or view schema: an ordered list of columns."""

    name: str
    columns: list = field(default_factory=list)
    is_view: bool = False
    definition_sql: str = ""
    description: str = ""

    def __post_init__(self):
        self.name = normalize_name(self.name)
        normalized = []
        for column in self.columns:
            if isinstance(column, ColumnSchema):
                normalized.append(column)
            elif isinstance(column, (tuple, list)) and len(column) >= 2:
                normalized.append(ColumnSchema(name=column[0], type_name=column[1]))
            else:
                normalized.append(ColumnSchema(name=str(column)))
        self.columns = normalized
        # memoized column_names() backing list; every schema provider asks
        # for the names once per referencing statement, so wide schemas
        # would otherwise rebuild this list thousands of times per run
        self._names = None

    # ------------------------------------------------------------------
    def column_names(self):
        """Ordered list of column names (a fresh list; callers may mutate)."""
        names = self._names
        if names is None:
            names = self._names = [column.name for column in self.columns]
        return list(names)

    def has_column(self, name):
        """True if this table has a column named ``name`` (normalised)."""
        return normalize_identifier(name) in set(self.column_names())

    def column(self, name):
        """Return the :class:`ColumnSchema` named ``name`` or ``None``."""
        wanted = normalize_identifier(name)
        for column in self.columns:
            if column.name == wanted:
                return column
        return None

    def add_column(self, name, type_name="text", nullable=True, description=""):
        """Append a column if not already present; return the column."""
        existing = self.column(name)
        if existing is not None:
            return existing
        column = ColumnSchema(
            name=name, type_name=type_name, nullable=nullable, description=description
        )
        self.columns.append(column)
        self._names = None
        return column

    def to_dict(self):
        return {
            "name": self.name,
            "is_view": self.is_view,
            "columns": [column.to_dict() for column in self.columns],
            "description": self.description,
        }

    def ddl(self):
        """Render this schema as a ``CREATE TABLE`` statement."""
        columns = ",\n  ".join(
            f"{column.name} {column.type_name}"
            + ("" if column.nullable else " NOT NULL")
            for column in self.columns
        )
        return f"CREATE TABLE {self.name} (\n  {columns}\n)"
