"""Schema providers backed by the catalog, including the strict variant.

The *strict* provider mirrors a live database connection: a relation that is
not in the catalog raises :class:`UndefinedTableError` immediately (the same
``undefined_table`` error ``EXPLAIN`` would return), instead of being treated
as an external table of unknown schema.
"""

from .errors import UndefinedTableError


class StrictCatalogProvider:
    """Answers column lookups from the catalog; errors on missing relations."""

    def __init__(self, catalog):
        self.catalog = catalog

    def get_columns(self, name):
        table = self.catalog.get(name)
        if table is None:
            raise UndefinedTableError(name)
        return table.column_names()
