"""An in-memory schema catalog.

The catalog plays the role of ``information_schema`` / ``pg_catalog`` in the
paper's database-connection mode: it answers "which columns does relation X
have?" queries, supports schema-qualified names with a search path, and can
be extended at runtime when the EXPLAIN simulator materialises views.
"""

from .errors import DuplicateTableError, UndefinedTableError
from .schema import TableSchema
from ..sqlparser.dialect import normalize_name


class Catalog:
    """A dictionary of :class:`~repro.catalog.schema.TableSchema` objects.

    Relation names may be schema-qualified (``public.orders``).  Lookups try
    the exact name first, then each schema on ``search_path``, then an
    unqualified match — mirroring how PostgreSQL resolves relation names.
    """

    def __init__(self, tables=None, search_path=("public",)):
        self.tables = {}
        self.search_path = list(search_path)
        #: memoized ``resolve_name`` outcomes (hits *and* misses), keyed by
        #: the normalised lookup name.  Resolution walks the search path and
        #: is asked the same relation names once per referencing statement,
        #: so a run over a wide corpus repeats identical lookups thousands
        #: of times.  Invalidated on every registration change; mutating
        #: ``search_path`` in place after lookups started is unsupported.
        self._lookup_cache = {}
        for table in tables or []:
            self.add_table(table)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_table(self, table, replace=False):
        """Register a :class:`TableSchema`; raise on duplicates unless replace."""
        name = normalize_name(table.name)
        if name in self.tables and not replace:
            raise DuplicateTableError(name)
        self.tables[name] = table
        self._lookup_cache.clear()
        return table

    def create_table(self, name, columns, is_view=False, definition_sql="", replace=False):
        """Convenience: build and register a :class:`TableSchema`."""
        table = TableSchema(
            name=name, columns=list(columns), is_view=is_view, definition_sql=definition_sql
        )
        return self.add_table(table, replace=replace)

    def drop_table(self, name, if_exists=False):
        """Remove a relation from the catalog."""
        resolved = self.resolve_name(name)
        if resolved is None:
            if if_exists:
                return False
            raise UndefinedTableError(name)
        del self.tables[resolved]
        self._lookup_cache.clear()
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def resolve_name(self, name):
        """Resolve ``name`` to the registered key, or ``None`` if absent."""
        wanted = normalize_name(name)
        tables = self.tables
        if wanted in tables:
            return wanted
        cache = self._lookup_cache
        if wanted in cache:
            return cache[wanted]
        resolved = None
        if "." not in wanted:
            for schema in self.search_path:
                qualified = f"{schema}.{wanted}"
                if qualified in tables:
                    resolved = qualified
                    break
        else:
            # allow unqualified registration to satisfy a qualified lookup
            bare = wanted.rsplit(".", 1)[-1]
            if bare in tables:
                resolved = bare
        cache[wanted] = resolved
        return resolved

    def __contains__(self, name):
        return self.resolve_name(name) is not None

    def get(self, name):
        """Return the :class:`TableSchema` for ``name`` or ``None``."""
        resolved = self.resolve_name(name)
        if resolved is None:
            return None
        return self.tables[resolved]

    def __getitem__(self, name):
        table = self.get(name)
        if table is None:
            raise UndefinedTableError(name)
        return table

    def columns_of(self, name):
        """Ordered column names of ``name``; raise if the relation is absent."""
        return self[name].column_names()

    def relation_names(self):
        """All registered relation names, sorted."""
        return sorted(self.tables)

    def views(self):
        """All registered views."""
        return [table for table in self.tables.values() if table.is_view]

    def base_tables(self):
        """All registered non-view relations."""
        return [table for table in self.tables.values() if not table.is_view]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "search_path": list(self.search_path),
            "tables": {name: table.to_dict() for name, table in sorted(self.tables.items())},
        }

    @classmethod
    def from_dict(cls, data):
        catalog = cls(search_path=data.get("search_path", ["public"]))
        for name, payload in data.get("tables", {}).items():
            catalog.create_table(
                name,
                [(column["name"], column.get("type", "text")) for column in payload["columns"]],
                is_view=payload.get("is_view", False),
            )
        return catalog

    def copy(self):
        """A shallow copy sharing no table dict (schemas are reused)."""
        clone = Catalog(search_path=self.search_path)
        clone.tables = dict(self.tables)
        return clone

    def ddl_script(self):
        """Render every base table as CREATE TABLE DDL (views are omitted)."""
        return ";\n\n".join(table.ddl() for table in self.base_tables()) + ";\n"
