"""Exception types for the catalog / simulated DBMS substrate."""


class CatalogError(Exception):
    """Base class for catalog errors."""


class UndefinedTableError(CatalogError):
    """Raised when a relation is not present in the catalog.

    This mirrors PostgreSQL's ``undefined_table`` (42P01) error that the
    paper's database-connection mode receives from ``EXPLAIN`` when a view's
    dependencies have not been created yet; the auto-inference stack reacts
    to it by creating the missing dependency first.
    """

    def __init__(self, name):
        self.name = name
        super().__init__(f'relation "{name}" does not exist')


class DuplicateTableError(CatalogError):
    """Raised when registering a relation name that already exists."""

    def __init__(self, name):
        self.name = name
        super().__init__(f'relation "{name}" already exists')
