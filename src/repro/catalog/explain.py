"""A logical planner that simulates PostgreSQL ``EXPLAIN (VERBOSE)``.

The paper's database-connection mode feeds each query to ``EXPLAIN`` instead
of a SQL parser: the returned plan carries exact column metadata, and a
missing dependency surfaces as an ``undefined_table`` error which the
auto-inference stack resolves by creating the dependent views first.

This simulator reproduces that behaviour offline:

* :meth:`ExplainSimulator.explain` builds a :class:`PlanNode` tree for a
  query, resolving every relation against the catalog and raising
  :class:`~repro.catalog.errors.UndefinedTableError` when one is absent —
  the same signal a live PostgreSQL would produce;
* :meth:`ExplainSimulator.create_view` plans a view definition, registers
  the resulting schema in the catalog (so later queries can reference it),
  and returns the plan;
* :meth:`ExplainSimulator.explain_text` formats the plan in the familiar
  indented ``->`` style.

Unlike PostgreSQL, views are *not* inlined into the plans of queries that
read them (a ``View Scan`` node is emitted instead) unless
``inline_views=True`` is requested: LineageX wants lineage edges that point
at the adjacent view, not through it, and keeping that behaviour here lets
the tests assert that the EXPLAIN mode and the static mode agree exactly.
"""

from dataclasses import dataclass, field

from .errors import UndefinedTableError
from .schema import TableSchema
from ..sqlparser import ast, parse_one
from ..sqlparser.dialect import normalize_identifier, normalize_name
from ..sqlparser.printer import to_sql
from ..sqlparser.visitor import find_all


@dataclass
class PlanNode:
    """One node of a simulated query plan."""

    node_type: str
    relation: str = ""
    alias: str = ""
    output: list = field(default_factory=list)
    details: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            for node in child.walk():
                yield node

    def scans(self):
        """All scan nodes (Seq Scan / View Scan / CTE Scan / Subquery Scan)."""
        return [node for node in self.walk() if node.node_type.endswith("Scan")]

    def relations(self):
        """Distinct relation names scanned anywhere in the plan."""
        return sorted({node.relation for node in self.scans() if node.relation})

    def format(self, indent=0):
        """Render in the indented ``->`` style of ``EXPLAIN`` output."""
        header = self.node_type
        if self.relation:
            header += f" on {self.relation}"
            if self.alias and self.alias != self.relation.split(".")[-1]:
                header += f" {self.alias}"
        prefix = "" if indent == 0 else " " * indent + "->  "
        lines = [prefix + header]
        detail_indent = " " * (indent + 6)
        if self.output:
            lines.append(f"{detail_indent}Output: {', '.join(self.output)}")
        for key, value in self.details.items():
            lines.append(f"{detail_indent}{key}: {value}")
        for child in self.children:
            lines.append(child.format(indent + 2))
        return "\n".join(lines)


class ExplainSimulator:
    """Catalog-backed logical planner with PostgreSQL-style error behaviour."""

    def __init__(self, catalog, inline_views=False):
        self.catalog = catalog
        self.inline_views = inline_views
        self.view_definitions = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def explain(self, query):
        """Plan a query (SQL text or parsed statement/expression).

        Raises :class:`UndefinedTableError` if any referenced relation is
        not present in the catalog — the signal that drives the view
        creation stack in database-connection mode.
        """
        expression = self._as_query_expression(query)
        return self._plan_query(expression, cte_names=set())

    def explain_text(self, query):
        """Plan a query and return the formatted plan text."""
        return self.explain(query).format()

    def create_view(self, name, query, replace=True):
        """Validate, register, and plan a view definition.

        The view's column list is derived from the planned output and stored
        in the catalog so later ``EXPLAIN`` calls (and the lineage extractor
        in database-connection mode) see exact metadata for it.
        """
        expression = self._as_query_expression(query)
        plan = self._plan_query(expression, cte_names=set())
        columns = self._output_columns(expression)
        schema = TableSchema(
            name=name,
            columns=[(column, "unknown") for column in columns],
            is_view=True,
            definition_sql=to_sql(expression),
        )
        self.catalog.add_table(schema, replace=replace)
        self.view_definitions[normalize_name(name)] = expression
        return plan

    def create_view_from_statement(self, statement):
        """Register a view from a parsed ``CREATE VIEW`` / ``CREATE TABLE AS``."""
        return self.create_view(statement.name.dotted(), statement.query)

    def drop_view(self, name, if_exists=True):
        """Remove a view registered through :meth:`create_view`."""
        self.view_definitions.pop(normalize_name(name), None)
        return self.catalog.drop_table(name, if_exists=if_exists)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _as_query_expression(self, query):
        if isinstance(query, str):
            statement = parse_one(query)
        else:
            statement = query
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            return statement
        if isinstance(statement, ast.QueryStatement):
            return statement.query
        if isinstance(statement, (ast.CreateView, ast.CreateTableAs)):
            return statement.query
        raise TypeError(f"cannot EXPLAIN a {type(statement).__name__}")

    def _plan_query(self, expression, cte_names):
        if isinstance(expression, ast.Select):
            return self._plan_select(expression, cte_names)
        if isinstance(expression, ast.SetOperation):
            return self._plan_set_operation(expression, cte_names)
        raise TypeError(f"cannot plan {type(expression).__name__}")

    def _plan_select(self, select, cte_names):
        local_cte_names = set(cte_names)
        cte_plans = []
        for cte in select.ctes:
            cte_plan = self._plan_query(cte.query, local_cte_names)
            cte_plan.details["CTE Name"] = cte.name
            cte_plans.append(cte_plan)
            local_cte_names.add(normalize_identifier(cte.name))

        source_plans = [
            self._plan_source(source, local_cte_names) for source in select.from_sources
        ]
        if not source_plans:
            plan = PlanNode(node_type="Result")
        elif len(source_plans) == 1:
            plan = source_plans[0]
        else:
            plan = PlanNode(node_type="Nested Loop", children=source_plans)

        if select.where is not None:
            plan = PlanNode(
                node_type="Filter",
                details={"Filter": to_sql(select.where)},
                children=[plan],
            )
        if select.group_by or self._has_aggregate(select):
            details = {}
            if select.group_by:
                details["Group Key"] = ", ".join(to_sql(e) for e in select.group_by)
            if select.having is not None:
                details["Having"] = to_sql(select.having)
            plan = PlanNode(node_type="HashAggregate", details=details, children=[plan])
        if self._has_window(select):
            plan = PlanNode(node_type="WindowAgg", children=[plan])
        if select.qualify is not None:
            plan = PlanNode(
                node_type="Filter",
                details={"Qualify Filter": to_sql(select.qualify)},
                children=[plan],
            )
        if select.distinct:
            plan = PlanNode(node_type="Unique", children=[plan])
        if select.order_by:
            plan = PlanNode(
                node_type="Sort",
                details={"Sort Key": ", ".join(to_sql(i.expression) for i in select.order_by)},
                children=[plan],
            )
        if select.limit is not None or select.offset is not None:
            plan = PlanNode(node_type="Limit", children=[plan])

        plan.output = [to_sql(projection) for projection in select.projections]
        for cte_plan in cte_plans:
            plan.children.append(
                PlanNode(
                    node_type="CTE",
                    relation=cte_plan.details.get("CTE Name", ""),
                    children=[cte_plan],
                )
            )
        return plan

    def _plan_set_operation(self, operation, cte_names):
        local_cte_names = set(cte_names)
        for cte in operation.ctes:
            local_cte_names.add(normalize_identifier(cte.name))
        children = [
            self._plan_query(leaf, local_cte_names) for leaf in operation.leaves()
        ]
        node_type = {
            "UNION": "Append" if operation.all else "HashSetOp Union",
            "INTERSECT": "HashSetOp Intersect",
            "EXCEPT": "HashSetOp Except",
        }.get(operation.operator, "Append")
        plan = PlanNode(node_type=node_type, children=children)
        if children and children[0].output:
            plan.output = list(children[0].output)
        return plan

    def _plan_source(self, source, cte_names):
        if isinstance(source, ast.Join):
            left = self._plan_source(source.left, cte_names)
            right = self._plan_source(source.right, cte_names)
            node_type = {
                "INNER": "Hash Join",
                "LEFT": "Hash Left Join",
                "RIGHT": "Hash Right Join",
                "FULL": "Hash Full Join",
                "CROSS": "Nested Loop",
            }.get(source.join_type, "Hash Join")
            details = {}
            if source.condition is not None:
                details["Hash Cond"] = to_sql(source.condition)
            elif source.using_columns:
                details["Hash Cond"] = "USING (" + ", ".join(source.using_columns) + ")"
            return PlanNode(node_type=node_type, details=details, children=[left, right])
        if isinstance(source, ast.TableRef):
            return self._plan_table_ref(source, cte_names)
        if isinstance(source, ast.SubquerySource):
            child = self._plan_query(source.query, cte_names)
            return PlanNode(
                node_type="Subquery Scan",
                relation=source.alias or "subquery",
                alias=source.alias or "subquery",
                children=[child],
                output=list(child.output),
            )
        if isinstance(source, ast.ValuesSource):
            return PlanNode(
                node_type="Values Scan",
                relation=source.alias or "values",
                alias=source.alias or "values",
            )
        if isinstance(source, ast.FunctionSource):
            return PlanNode(
                node_type="Function Scan",
                relation=source.function.name if source.function else "function",
                alias=source.alias or "",
            )
        raise TypeError(f"cannot plan FROM source {type(source).__name__}")

    def _plan_table_ref(self, table_ref, cte_names):
        name = normalize_name(table_ref.name.dotted())
        alias = normalize_identifier(table_ref.alias) or name.split(".")[-1]
        if table_ref.name.schema is None and normalize_identifier(name) in cte_names:
            return PlanNode(node_type="CTE Scan", relation=name, alias=alias)
        schema = self.catalog.get(name)
        if schema is None:
            raise UndefinedTableError(name)
        output = [f"{alias}.{column}" for column in schema.column_names()]
        if schema.is_view and not self.inline_views:
            return PlanNode(node_type="View Scan", relation=name, alias=alias, output=output)
        if schema.is_view and self.inline_views:
            definition = self.view_definitions.get(normalize_name(name))
            if definition is not None:
                child = self._plan_query(definition, set())
                return PlanNode(
                    node_type="Subquery Scan",
                    relation=name,
                    alias=alias,
                    children=[child],
                    output=output,
                )
        return PlanNode(node_type="Seq Scan", relation=name, alias=alias, output=output)

    # ------------------------------------------------------------------
    # Output column computation (exact, catalog-backed)
    # ------------------------------------------------------------------
    def _output_columns(self, expression):
        """The output column names of a query, resolved with exact metadata."""
        from ..core.extractor import LineageExtractor
        from .provider import StrictCatalogProvider

        extractor = LineageExtractor(provider=StrictCatalogProvider(self.catalog))
        lineage, _ = extractor.extract("__explain__", expression)
        return list(lineage.output_columns)

    # ------------------------------------------------------------------
    @staticmethod
    def _has_aggregate(select):
        aggregates = {"count", "sum", "avg", "min", "max", "string_agg", "array_agg", "bool_or", "bool_and"}
        for projection in select.projections:
            for call in find_all(projection, ast.FunctionCall, stop_at=ast.QueryExpression):
                if call.name.lower() in aggregates and call.over is None:
                    return True
        return False

    @staticmethod
    def _has_window(select):
        for projection in select.projections:
            for call in find_all(projection, ast.FunctionCall, stop_at=ast.QueryExpression):
                if call.over is not None:
                    return True
        return bool(select.windows)
