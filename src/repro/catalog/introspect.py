"""Build a :class:`~repro.catalog.catalog.Catalog` from SQL DDL.

LineageX users who have access to schema dumps (``pg_dump --schema-only``)
can seed the extractor with exact table metadata.  This module parses
``CREATE TABLE`` statements with the project's own SQL parser and registers
the resulting schemas.
"""

from ..sqlparser import ast, parse
from .catalog import Catalog
from .schema import ColumnSchema, TableSchema


def catalog_from_sql(sql, search_path=("public",)):
    """Parse a DDL script and return the catalog of its CREATE TABLE statements."""
    return catalog_from_statements(parse(sql), search_path=search_path)


def catalog_from_statements(statements, search_path=("public",)):
    """Build a catalog from already-parsed statements.

    Only ``CREATE TABLE`` (with a column list) statements define relations.
    ``DROP TABLE`` statements remove them, which lets a catalog be built from
    a migration-style script.  Other statements are ignored.
    """
    catalog = Catalog(search_path=search_path)
    for statement in statements:
        if isinstance(statement, ast.CreateTable):
            table = TableSchema(
                name=statement.name.dotted(),
                columns=[
                    ColumnSchema(
                        name=column.name,
                        type_name=column.type_name or "text",
                        nullable="NOT" not in [c.upper() for c in column.constraints],
                    )
                    for column in statement.columns
                ],
            )
            catalog.add_table(table, replace=True)
        elif isinstance(statement, ast.DropStatement):
            catalog.drop_table(statement.name.dotted(), if_exists=True)
    return catalog
