"""The unified Session API — one façade over sources, engines and renderers.

Historically the library grew three parallel entry points (``lineagex``,
``lineagex_with_connection``, ``lineagex_dbt``), each with its own kwargs
and input handling.  :class:`LineageSession` replaces them with a single
configured object:

>>> import repro
>>> session = repro.LineageSession("models/", workers=4)
>>> result = session.extract()               # auto-detected source adapter
>>> print(result.render("markdown"))         # any registered format
>>> # ... edit files under models/ ...
>>> refreshed = session.refresh()            # content-hash diff -> incremental

With ``cache_dir`` the session keeps a persistent content-addressed
lineage store, so a *new process* over an unchanged corpus warm-starts by
splicing every extraction from disk; ``executor="process"`` runs DAG-wave
extraction on a process pool (true multi-core, byte-identical output):

>>> session = repro.LineageSession(
...     "models/", cache_dir=".lineage-cache", workers=8, executor="process"
... )

Three orthogonal axes compose:

* **sources** — input handling is delegated to the adapter registry in
  :mod:`repro.sources` (``Source.detect``): raw text, ``.sql`` files,
  directories, dbt projects and JSONL query logs all work, and adapters
  backed by a re-scannable store power :meth:`LineageSession.refresh`;
* **engines** — ``engine="static"`` runs the AST pipeline
  (:class:`~repro.core.runner.LineageXRunner`), ``engine="plan"`` runs the
  database-connection mode
  (:class:`~repro.core.plan_extractor.PlanModeRunner`); both produce the
  same :class:`LineageResult` surface;
* **renderers** — every output format resolves through
  :mod:`repro.output.registry`, so ``result.render(fmt)`` and the CLI share
  one table.

The legacy one-call functions are thin shims over this class and keep
working unchanged.
"""

import os
import threading
from dataclasses import dataclass, replace as dataclass_replace
from typing import Protocol, runtime_checkable

from .core.errors import SessionClosedError
from .core.plan_extractor import PlanModeRunner
from .core.runner import LineageXRunner
from .core.scheduler import EXECUTORS
from .sources import Source, diff_fingerprints

#: engine name -> builder; the seam future engines plug into.
ENGINES = ("static", "plan")
_MODES = ("dag", "stack")
_DIALECTS = {"postgres": "postgres", "postgresql": "postgres"}


@runtime_checkable
class LineageResult(Protocol):
    """What every engine's result exposes (the engine-parity contract).

    Both the static and the plan engine return
    :class:`~repro.core.runner.LineageXResult`, which satisfies this
    protocol; any future engine must as well, so downstream code (CLI,
    renderers, impact analysis) never branches on the engine.
    """

    def stats(self): ...

    def to_dict(self): ...

    def save(self, output_dir, basename="lineagex"): ...

    def impact_analysis(self, column, direction="downstream"): ...

    def render(self, fmt, **options): ...


@dataclass(frozen=True)
class SessionConfig:
    """Immutable extraction configuration for a :class:`LineageSession`.

    Parameters
    ----------
    strict:
        Raise on ambiguous unqualified columns instead of attributing them
        conservatively.
    mode:
        Static-engine scheduling: ``"dag"`` (topological waves, default) or
        ``"stack"`` (the paper's reactive LIFO deferral).
    workers:
        Worker-pool width for DAG-wave extraction (``None``/1 = sequential).
        Must be a positive integer.
    executor:
        Wave-parallel backend when ``workers > 1``: ``"thread"`` (default;
        GIL-bound on stock CPython) or ``"process"`` (a
        ``ProcessPoolExecutor`` that actually uses the cores; output is
        byte-identical to serial mode, and environments without working
        fork/spawn degrade gracefully to threads).
    cache_dir:
        Directory of the persistent content-addressed lineage store.  When
        set, ``extract()``/``refresh()`` splice unchanged statements from
        disk (warm start across processes) and persist new extractions.
        ``None`` (default) disables persistence.
    use_stack:
        Enable the auto-inference deferral stack (disable only for the
        ablation study).
    collect_traces:
        Record per-query extraction traces (rule firings).
    engine:
        ``"static"`` (AST pipeline) or ``"plan"`` (simulated-EXPLAIN
        database-connection mode).  The plan engine validates every
        dependency against the catalog, needs no scheduling plan, and
        therefore ignores ``mode``/``workers``/``use_stack``.
    dialect:
        SQL dialect for parsing and identifier folding.  Only
        PostgreSQL semantics are implemented today (``"postgres"``,
        with ``"postgresql"`` accepted as an alias); the field exists so
        adding a dialect is a config value, not an API change.
    stream:
        Bounded-memory extraction for corpora beyond what comfortably
        fits in memory as ASTs (the 100k-statement scale tier):
        preprocessing consumes the source lazily and drops each AST once
        its parse record exists, extraction re-materialises ASTs wave by
        wave and releases them after recording, and parallel waves ship
        as store-shard-routed batches.  Output is byte-identical to the
        default mode.  Static engine only.
    cache_shards:
        Shard count for a *newly created* store at ``cache_dir`` (``None``
        = the classic single SQLite file).  An existing store's on-disk
        layout always wins; re-shard it with ``cache migrate``.  Sharding
        fans the warm-start prefetch out across per-shard connections in
        parallel and splits bulk writes into per-shard transactions.
    """

    strict: bool = False
    mode: str = "dag"
    workers: int = None
    use_stack: bool = True
    collect_traces: bool = False
    engine: str = "static"
    dialect: str = "postgres"
    executor: str = "thread"
    cache_dir: str = None
    stream: bool = False
    cache_shards: int = None

    def __post_init__(self):
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {', '.join(ENGINES)}"
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown scheduling mode {self.mode!r}; expected one of {', '.join(_MODES)}"
            )
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool) \
                    or self.workers < 1:
                raise ValueError(
                    f"workers must be a positive integer (>= 1), got {self.workers!r}"
                )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of "
                + ", ".join(EXECUTORS)
            )
        if self.cache_dir is not None:
            try:
                path = os.fsdecode(self.cache_dir)
            except TypeError:
                raise ValueError(
                    f"cache_dir must be a path or None, got {self.cache_dir!r}"
                ) from None
            object.__setattr__(self, "cache_dir", path)
        if self.cache_shards is not None:
            if not isinstance(self.cache_shards, int) \
                    or isinstance(self.cache_shards, bool) or self.cache_shards < 1:
                raise ValueError(
                    "cache_shards must be a positive integer (>= 1) or None, "
                    f"got {self.cache_shards!r}"
                )
        canonical = _DIALECTS.get(str(self.dialect).lower())
        if canonical is None:
            raise ValueError(
                f"unsupported dialect {self.dialect!r}; supported: "
                + ", ".join(sorted(set(_DIALECTS.values())))
            )
        object.__setattr__(self, "dialect", canonical)

    def replace(self, **overrides):
        """A copy of this config with ``overrides`` applied (re-validated)."""
        return dataclass_replace(self, **overrides)


class LineageSession:
    """A configured lineage workspace over one source.

    Parameters
    ----------
    source:
        Anything the source-adapter registry accepts (SQL text, a
        ``{name: sql}`` mapping, a ``.sql`` file or directory path, a dbt
        project, a JSONL query log) or an explicit
        :class:`~repro.sources.Source` instance.  May be omitted and
        supplied to :meth:`extract` instead.
    catalog:
        Optional :class:`~repro.catalog.Catalog` with base-table schemas.
        For the plan engine this plays the role of the live database.
    config:
        A :class:`SessionConfig`; keyword ``overrides`` (``strict=True``,
        ``engine="plan"``, ...) are applied on top of it (or on top of the
        default config when omitted).
    """

    def __init__(self, source=None, *, catalog=None, config=None, **overrides):
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        self.catalog = catalog
        self.source = Source.detect(source) if source is not None else None
        self._payload = None       # what load() produced at extract time
        self._fingerprint = None   # {name: hash} snapshot for rescan diffs
        self._result = None
        self._store = None         # lazily opened LineageStore (cache_dir)
        #: serialises extract()/refresh(): the session mutates one result
        #: at a time however many threads drive it (the serving daemon's
        #: ingest loop runs refreshes from a worker thread while other
        #: threads may trigger one explicitly).  An RLock keeps the
        #: refresh() -> extract() fallback re-entrant.
        self._write_lock = threading.RLock()
        self._snapshot_cache = None  # (graph, state token, frozen view)
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def result(self):
        """The most recent extraction result (``None`` before extract())."""
        return self._result

    @property
    def engine(self):
        """The configured engine name."""
        return self.config.engine

    @property
    def store(self):
        """The persistent lineage store (``None`` without ``cache_dir``).

        Opened lazily on first use and shared by every extraction this
        session runs; :meth:`close` releases it.  Only the static engine
        consults it — the plan engine re-validates everything through the
        simulated EXPLAIN by design.
        """
        if self.config.cache_dir is None or self._closed:
            return None
        if self._store is None:
            from .store import LineageStore

            self._store = LineageStore(
                self.config.cache_dir, shards=self.config.cache_shards
            )
        return self._store

    def cache_stats(self):
        """Store counters (see :meth:`repro.store.LineageStore.stats`)."""
        store = self.store
        if store is None:
            raise ValueError("no cache_dir configured: the session has no store")
        return store.stats()

    def close(self):
        """Flush and release the persistent store (if one was opened).

        Idempotent and shutdown-safe: a second call is a no-op, a store
        whose lazy open failed (``self._store`` never assigned) is simply
        skipped, and a store that errors while closing is still detached —
        a daemon's teardown path may run this from several places (signal
        handler, context-manager exit, atexit) without double-release.

        Closing is terminal for *writes*: a subsequent (or in-flight)
        ``extract()``/``refresh()`` raises
        :class:`~repro.core.errors.SessionClosedError` rather than
        adopting a result whose store flush was torn down under it.
        Reads of the last result (``render()``, ``impact()``,
        ``snapshot()``) keep working.
        """
        self._closed = True
        store, self._store = self._store, None
        if store is not None:
            try:
                store.close()
            except Exception:
                # release is best-effort: the store is a cache, and the
                # handle is already detached from the session either way
                pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    def _build_engine(self):
        if self.config.engine == "plan":
            return PlanModeRunner(catalog=self.catalog)
        return LineageXRunner(
            catalog=self.catalog,
            strict=self.config.strict,
            use_stack=self.config.use_stack,
            collect_traces=self.config.collect_traces,
            mode=self.config.mode,
            workers=self.config.workers,
            executor=self.config.executor,
            store=self.store,
            dialect=self.config.dialect,
            stream=self.config.stream,
        )

    # ------------------------------------------------------------------
    def extract(self, source=None):
        """Run the configured engine over the session's source.

        ``source`` (when given) replaces the session's source for this and
        subsequent calls.  Returns the engine's :class:`LineageResult`.
        """
        with self._write_lock:
            if self._closed:
                raise SessionClosedError("extract")
            if source is not None:
                self.source = Source.detect(source)
            if self.source is None:
                raise ValueError(
                    "no source to extract: pass one to LineageSession(...) or extract(...)"
                )
            self._payload = self.source.load()
            # the snapshot only feeds rescan-based change detection, so don't
            # charge in-memory sources (which cannot rescan) for hashing it;
            # hash the payload in hand rather than calling source.fingerprint()
            # (which would load() a second time and could race a file edit)
            if self.source.supports_rescan and isinstance(self._payload, dict):
                from .sources.base import fingerprint_mapping

                self._fingerprint = fingerprint_mapping(self._payload)
            else:
                self._fingerprint = None
            result = self._build_engine().run(self._payload)
            if self._closed:
                # close() landed while the engine ran: the store flush was
                # torn down under this extraction — refuse to adopt it
                raise SessionClosedError("extract")
            self._result = result
            return self._result

    def refresh(self, changes=None):
        """Re-extract after source changes, reusing everything unaffected.

        Parameters
        ----------
        changes:
            ``{name: new_sql}`` delta (``None`` value removes the entry).
            When omitted, the source is **re-scanned** and the delta is
            computed by content-hash diff against the snapshot taken at
            extraction time — supported for directory, dbt-directory and
            query-log-file sources.

        With the static engine this feeds the delta into the incremental
        layer (:meth:`LineageXResult.update`): only changed entries and
        their transitive DAG dependents are re-extracted.  The plan engine
        has no incremental path (EXPLAIN revalidates every dependency), so
        a full re-run over the merged sources is performed instead.
        """
        with self._write_lock:
            if self._closed:
                raise SessionClosedError("refresh")
            if self._result is None:
                if self.source is None and changes:
                    # a sourceless session (the serving daemon's shape)
                    # bootstraps straight from its first delta: the changes
                    # ARE the corpus.  Deliberately NOT routed through
                    # extract(): the session stays sourceless, and a failed
                    # bootstrap leaves no state behind (the next delta gets
                    # a clean retry instead of re-running a broken corpus)
                    payload = {
                        name: sql for name, sql in changes.items() if sql is not None
                    }
                    result = self._build_engine().run(payload)
                    if self._closed:
                        raise SessionClosedError("refresh")
                    self._payload = payload
                    self._fingerprint = None
                    self._result = result
                    return result
                return self.extract()
            if changes is None:
                changes = self._detect_changes()
            if not changes:
                return self._result
            if self.config.engine == "plan":
                merged = self._merged_payload(changes)
                rerun = self._build_engine().run(merged)
                if self._closed:
                    raise SessionClosedError("refresh")
                self._payload = merged
                self._result = rerun
            else:
                updated = self._result.update(changes)
                if self._closed:
                    # close() landed mid-update: don't adopt a result whose
                    # store writes may have been dropped by the teardown
                    raise SessionClosedError("refresh")
                self._result = updated
                if isinstance(self._payload, dict):
                    self._payload = self._merged_payload(changes)
            if self.source is not None and self.source.supports_rescan \
                    and isinstance(self._payload, dict):
                from .sources.base import fingerprint_mapping

                self._fingerprint = fingerprint_mapping(self._payload)
            return self._result

    def _detect_changes(self):
        if self.source is None or not self.source.supports_rescan:
            raise ValueError(
                "this source cannot be re-scanned for changes "
                f"({'no source' if self.source is None else self.source.kind!r}); "
                "pass the changes to refresh() explicitly"
            )
        if self._fingerprint is None:
            raise ValueError(
                "no fingerprint snapshot from the last extract(); "
                "pass the changes to refresh() explicitly"
            )
        return diff_fingerprints(self._fingerprint, self.source.rescan())

    def _merged_payload(self, changes):
        if not isinstance(self._payload, dict):
            raise ValueError(
                "refresh() with the plan engine needs a name-addressable "
                "source (directory, dbt project, query log, or {name: sql} "
                "mapping); re-run extract() instead"
            )
        merged = dict(self._payload)
        for name, sql in changes.items():
            if sql is None:
                merged.pop(name, None)
            else:
                merged[name] = sql
        return merged

    # ------------------------------------------------------------------
    def stream_log(self, log=None, **options):
        """A :class:`~repro.streaming.QueryLogStreamer` tailing ``log``.

        ``log`` is the path of a JSONL query log; when omitted, the
        session's own source must be a file-backed query log.  The
        returned streamer feeds this session in micro-batches (repeated
        statements are absorbed by content hash, changed definitions go
        through :meth:`refresh`), persists a crash-safe resume offset next
        to the log, and optionally compacts superseded store records —
        see :mod:`repro.streaming` for the knobs and the crash-safety
        contract.  A *sourceless* session is the natural shape: its first
        batch bootstraps the corpus.
        """
        from .streaming import QueryLogStreamer

        if log is None:
            source = self.source
            if (
                source is None
                or getattr(source, "kind", None) != "query_log"
                or not getattr(source, "is_file_backed", False)
            ):
                raise ValueError(
                    "stream_log() needs a file-backed JSONL query log: pass "
                    "the log path, or construct the session over one"
                )
            log = os.fspath(source.raw)
        return QueryLogStreamer(self, log, **options)

    # ------------------------------------------------------------------
    def snapshot(self):
        """An immutable, lock-free-readable view of the current graph.

        Returns the frozen point-in-time graph
        (:meth:`~repro.core.lineage.LineageGraph.freeze`) of the most
        recent extraction, or ``None`` before the first ``extract()``.
        The snapshot's adjacency index is built eagerly, so any number of
        reader threads can traverse or render it with no locking while
        this session keeps refreshing — a later ``refresh()`` assembles a
        new graph and never mutates what the snapshot captured.
        """
        result = self._result
        if result is None:
            return None
        graph = result.graph
        token = graph._state_token()
        cached = self._snapshot_cache
        if (
            cached is not None
            and cached[0] is graph
            and cached[1] == token
        ):
            return cached[2]
        seed = cached[2].reachability(build=False) if cached is not None else None
        frozen = graph.freeze(reach_seed=seed)
        # hold the graph reference so an ``is`` hit can never alias a new
        # object reusing a collected graph's id
        self._snapshot_cache = (graph, token, frozen)
        return frozen

    def render(self, fmt, **options):
        """Render the last result through the renderer registry."""
        return self._require_result().render(fmt, **options)

    def impact(self, column, direction="downstream"):
        """Impact analysis over the last result's graph."""
        return self._require_result().impact_analysis(column, direction=direction)

    def save(self, output_dir, basename="lineagex"):
        """Write the last result's JSON + HTML documents into ``output_dir``."""
        return self._require_result().save(output_dir, basename=basename)

    def _require_result(self):
        if self._result is None:
            raise ValueError("nothing extracted yet: call extract() first")
        return self._result

    def __repr__(self):
        source = self.source.kind if self.source is not None else None
        return (
            f"LineageSession(engine={self.config.engine!r}, source={source!r}, "
            f"extracted={self._result is not None})"
        )
