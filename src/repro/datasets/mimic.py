"""A synthetic MIMIC-like clinical warehouse.

Section IV of the paper demonstrates LineageX on the MIMIC dataset, whose
schema has "more than 300 columns in 26 base tables and 700 columns in 70
view definitions".  The real MIMIC-III data requires credentialed access, so
this module reproduces the *shape* of that workload: the 26 base tables
below follow the real MIMIC-III table names with realistic column lists
(~300 columns in total), and :func:`view_definitions` generates 70 view
definitions (~700 output columns) exercising the SQL features the extraction
module must handle — joins, CTEs, aggregation, window functions, set
operations, ``SELECT *`` over earlier views, and unprefixed columns.

Everything is deterministic, so tests and benchmarks can assert exact
counts.
"""

from ..catalog import Catalog

#: The 26 MIMIC-III base tables and their (abridged but realistic) columns.
BASE_TABLES = {
    "patients": [
        "row_id", "subject_id", "gender", "dob", "dod", "dod_hosp", "dod_ssn", "expire_flag",
    ],
    "admissions": [
        "row_id", "subject_id", "hadm_id", "admittime", "dischtime", "deathtime",
        "admission_type", "admission_location", "discharge_location", "insurance",
        "language", "religion", "marital_status", "ethnicity", "diagnosis",
        "hospital_expire_flag", "has_chartevents_data",
    ],
    "icustays": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "dbsource", "first_careunit",
        "last_careunit", "first_wardid", "last_wardid", "intime", "outtime", "los",
    ],
    "callout": [
        "row_id", "subject_id", "hadm_id", "submit_wardid", "curr_wardid", "callout_wardid",
        "callout_service", "request_tele", "request_resp", "request_cdiff", "request_mrsa",
        "callout_status", "callout_outcome", "createtime", "outcometime",
    ],
    "caregivers": ["row_id", "cgid", "label", "description"],
    "chartevents": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "itemid", "charttime", "storetime",
        "cgid", "value", "valuenum", "valueuom", "warning", "error", "stopped",
    ],
    "cptevents": [
        "row_id", "subject_id", "hadm_id", "costcenter", "chartdate", "cpt_cd",
        "cpt_number", "cpt_suffix", "ticket_id_seq", "sectionheader", "subsectionheader",
    ],
    "d_cpt": [
        "row_id", "category", "sectionrange", "sectionheader", "subsectionrange",
        "subsectionheader", "codesuffix", "mincodeinsubsection", "maxcodeinsubsection",
    ],
    "d_icd_diagnoses": ["row_id", "icd9_code", "short_title", "long_title"],
    "d_icd_procedures": ["row_id", "icd9_code", "short_title", "long_title"],
    "d_items": [
        "row_id", "itemid", "label", "abbreviation", "dbsource", "linksto", "category",
        "unitname", "param_type", "conceptid",
    ],
    "d_labitems": ["row_id", "itemid", "label", "fluid", "category", "loinc_code"],
    "datetimeevents": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "itemid", "charttime", "storetime",
        "cgid", "value", "valueuom", "warning", "error", "stopped",
    ],
    "diagnoses_icd": ["row_id", "subject_id", "hadm_id", "seq_num", "icd9_code"],
    "drgcodes": [
        "row_id", "subject_id", "hadm_id", "drg_type", "drg_code", "description",
        "drg_severity", "drg_mortality",
    ],
    "inputevents_cv": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "charttime", "itemid", "amount",
        "amountuom", "rate", "rateuom", "cgid", "orderid", "linkorderid", "stopped",
        "newbottle", "originalamount", "originalroute",
    ],
    "inputevents_mv": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "starttime", "endtime", "itemid",
        "amount", "amountuom", "rate", "rateuom", "cgid", "orderid", "linkorderid",
        "ordercategoryname", "patientweight", "totalamount", "statusdescription",
    ],
    "labevents": [
        "row_id", "subject_id", "hadm_id", "itemid", "charttime", "value", "valuenum",
        "valueuom", "flag",
    ],
    "microbiologyevents": [
        "row_id", "subject_id", "hadm_id", "chartdate", "charttime", "spec_itemid",
        "spec_type_desc", "org_itemid", "org_name", "isolate_num", "ab_itemid", "ab_name",
        "dilution_text", "dilution_comparison", "dilution_value", "interpretation",
    ],
    "noteevents": [
        "row_id", "subject_id", "hadm_id", "chartdate", "charttime", "storetime",
        "category", "description", "cgid", "iserror", "text",
    ],
    "outputevents": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "charttime", "itemid", "value",
        "valueuom", "storetime", "cgid", "stopped", "newbottle", "iserror",
    ],
    "prescriptions": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "startdate", "enddate", "drug_type",
        "drug", "drug_name_poe", "drug_name_generic", "formulary_drug_cd", "gsn", "ndc",
        "prod_strength", "dose_val_rx", "dose_unit_rx", "form_val_disp", "form_unit_disp",
        "route",
    ],
    "procedureevents_mv": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "starttime", "endtime", "itemid",
        "value", "valueuom", "location", "locationcategory", "cgid", "orderid",
        "statusdescription",
    ],
    "procedures_icd": ["row_id", "subject_id", "hadm_id", "seq_num", "icd9_code"],
    "services": [
        "row_id", "subject_id", "hadm_id", "transfertime", "prev_service", "curr_service",
    ],
    "transfers": [
        "row_id", "subject_id", "hadm_id", "icustay_id", "dbsource", "eventtype",
        "prev_careunit", "curr_careunit", "prev_wardid", "curr_wardid", "intime", "outtime",
        "los",
    ],
}

#: Event tables that share the (subject_id, hadm_id, itemid, charttime) shape;
#: used by the generated per-event staging and aggregate views.
EVENT_TABLES = [
    "chartevents",
    "labevents",
    "datetimeevents",
    "outputevents",
    "microbiologyevents",
]


def base_table_catalog():
    """The 26 base tables as a :class:`repro.catalog.Catalog`."""
    catalog = Catalog()
    for table, columns in BASE_TABLES.items():
        catalog.create_table(table, [(column, "text") for column in columns])
    return catalog


def base_table_ddl():
    """CREATE TABLE DDL for every base table."""
    statements = []
    for table, columns in BASE_TABLES.items():
        body = ",\n  ".join(f"{column} text" for column in columns)
        statements.append(f"CREATE TABLE {table} (\n  {body}\n);")
    return "\n\n".join(statements) + "\n"


# ----------------------------------------------------------------------
# View generation
# ----------------------------------------------------------------------
def view_definitions():
    """Return the 70 view definitions as an ordered ``{name: sql}`` mapping.

    The views form four layers:

    1. *staging* views (one per base table, 26 views): rename ``row_id`` and
       keep a cleaned projection;
    2. *event summary* views (one per event table, 5 views): per-admission
       aggregation with GROUP BY/HAVING;
    3. *cohort* views (joins, CTEs, window functions, 30 views);
    4. *report* views (set operations and ``SELECT *`` over earlier views,
       9 views).
    """
    views = {}

    # Layer 1: staging views -------------------------------------------------
    for table, columns in BASE_TABLES.items():
        projected = ", ".join(f"t.{column}" for column in columns if column != "row_id")
        views[f"stg_{table}"] = (
            f"CREATE VIEW stg_{table} AS SELECT t.row_id AS {table}_id, {projected} "
            f"FROM {table} t"
        )

    # Layer 2: per-event-table admission summaries ---------------------------
    for table in EVENT_TABLES:
        time_column = "chartdate" if table == "microbiologyevents" else "charttime"
        views[f"adm_{table}_summary"] = (
            f"CREATE VIEW adm_{table}_summary AS "
            f"SELECT e.subject_id, e.hadm_id, count(*) AS event_count, "
            f"min(e.{time_column}) AS first_event_time, max(e.{time_column}) AS last_event_time "
            f"FROM {table} e "
            f"GROUP BY e.subject_id, e.hadm_id "
            f"HAVING count(*) > 0"
        )

    # Layer 3: cohort views ---------------------------------------------------
    views["patient_admissions"] = (
        "CREATE VIEW patient_admissions AS "
        "SELECT p.subject_id, p.gender, p.dob, a.hadm_id, a.admittime, a.dischtime, "
        "a.admission_type, a.admission_location, a.discharge_location, a.insurance, "
        "a.ethnicity, a.marital_status, a.diagnosis, a.hospital_expire_flag "
        "FROM stg_patients p JOIN stg_admissions a ON p.subject_id = a.subject_id"
    )
    views["icu_admissions"] = (
        "CREATE VIEW icu_admissions AS "
        "SELECT pa.subject_id, pa.hadm_id, pa.admission_type, pa.insurance, i.icustay_id, "
        "i.first_careunit, i.last_careunit, i.dbsource, i.intime, i.outtime, i.los "
        "FROM patient_admissions pa JOIN stg_icustays i ON pa.hadm_id = i.hadm_id"
    )
    views["admission_diagnoses"] = (
        "CREATE VIEW admission_diagnoses AS "
        "SELECT d.subject_id, d.hadm_id, d.seq_num, d.icd9_code, dd.short_title, dd.long_title "
        "FROM stg_diagnoses_icd d LEFT JOIN stg_d_icd_diagnoses dd ON d.icd9_code = dd.icd9_code"
    )
    views["admission_procedures"] = (
        "CREATE VIEW admission_procedures AS "
        "SELECT pr.subject_id, pr.hadm_id, pr.seq_num, pr.icd9_code, dp.short_title, dp.long_title "
        "FROM stg_procedures_icd pr LEFT JOIN stg_d_icd_procedures dp ON pr.icd9_code = dp.icd9_code"
    )
    views["primary_diagnosis"] = (
        "CREATE VIEW primary_diagnosis AS "
        "SELECT ad.subject_id, ad.hadm_id, ad.icd9_code, ad.short_title "
        "FROM admission_diagnoses ad WHERE ad.seq_num = 1"
    )
    views["lab_abnormal"] = (
        "CREATE VIEW lab_abnormal AS "
        "SELECT l.subject_id, l.hadm_id, l.itemid, li.label, li.fluid, li.category, "
        "l.charttime, l.value, l.valuenum, l.valueuom, l.flag "
        "FROM stg_labevents l JOIN stg_d_labitems li ON l.itemid = li.itemid "
        "WHERE l.flag = 'abnormal'"
    )
    views["first_icu_stay"] = (
        "CREATE VIEW first_icu_stay AS "
        "SELECT i.subject_id, i.hadm_id, i.icustay_id, i.intime, i.outtime, i.los "
        "FROM (SELECT s.subject_id, s.hadm_id, s.icustay_id, s.intime, s.outtime, s.los, "
        "row_number() OVER (PARTITION BY s.subject_id ORDER BY s.intime) AS stay_rank "
        "FROM stg_icustays s) i WHERE i.stay_rank = 1"
    )
    views["admission_los"] = (
        "CREATE VIEW admission_los AS "
        "SELECT a.subject_id, a.hadm_id, a.admittime, a.dischtime, "
        "EXTRACT(EPOCH FROM a.dischtime) - EXTRACT(EPOCH FROM a.admittime) AS los_seconds "
        "FROM stg_admissions a"
    )
    views["mortality_flags"] = (
        "CREATE VIEW mortality_flags AS "
        "SELECT pa.subject_id, pa.hadm_id, pa.hospital_expire_flag, "
        "CASE WHEN p.dod IS NOT NULL THEN 1 ELSE 0 END AS died_ever "
        "FROM patient_admissions pa JOIN stg_patients p ON pa.subject_id = p.subject_id"
    )
    views["admission_drugs"] = (
        "CREATE VIEW admission_drugs AS "
        "SELECT pr.subject_id, pr.hadm_id, pr.icustay_id, pr.drug, pr.drug_type, "
        "pr.drug_name_generic, pr.route, pr.dose_val_rx, pr.dose_unit_rx, "
        "pr.startdate, pr.enddate "
        "FROM stg_prescriptions pr"
    )
    views["vasopressor_orders"] = (
        "CREATE VIEW vasopressor_orders AS "
        "SELECT ad.subject_id, ad.hadm_id, ad.drug, ad.startdate "
        "FROM admission_drugs ad "
        "WHERE lower(ad.drug) IN ('norepinephrine', 'epinephrine', 'vasopressin', 'dopamine')"
    )
    views["ventilation_events"] = (
        "CREATE VIEW ventilation_events AS "
        "WITH vent_items AS (SELECT di.itemid FROM stg_d_items di WHERE di.category = 'Ventilation') "
        "SELECT c.subject_id, c.hadm_id, c.icustay_id, c.charttime, c.valuenum "
        "FROM stg_chartevents c WHERE c.itemid IN (SELECT v.itemid FROM vent_items v)"
    )
    views["icu_service_transfers"] = (
        "CREATE VIEW icu_service_transfers AS "
        "SELECT t.subject_id, t.hadm_id, t.icustay_id, t.eventtype, t.prev_careunit, "
        "t.curr_careunit, t.intime, s.curr_service "
        "FROM stg_transfers t LEFT JOIN stg_services s ON t.hadm_id = s.hadm_id"
    )
    views["caregiver_notes"] = (
        "CREATE VIEW caregiver_notes AS "
        "SELECT n.subject_id, n.hadm_id, n.chartdate, n.category, n.description, cg.label AS caregiver_role "
        "FROM stg_noteevents n LEFT JOIN stg_caregivers cg ON n.cgid = cg.cgid"
    )
    views["fluid_balance"] = (
        "CREATE VIEW fluid_balance AS "
        "WITH intake AS (SELECT i.subject_id, i.hadm_id, sum(i.amount) AS total_in "
        "FROM stg_inputevents_cv i GROUP BY i.subject_id, i.hadm_id), "
        "output AS (SELECT o.subject_id, o.hadm_id, sum(o.value) AS total_out "
        "FROM stg_outputevents o GROUP BY o.subject_id, o.hadm_id) "
        "SELECT intake.subject_id, intake.hadm_id, intake.total_in, output.total_out, "
        "intake.total_in - output.total_out AS balance "
        "FROM intake JOIN output ON intake.hadm_id = output.hadm_id"
    )

    # Cohort views project the full width of their source view (mirroring how
    # clinical cohort extracts are defined in practice) and filter on one
    # predicate; several sources appear in multiple cohorts.
    _cohort_source_columns = {
        "patient_admissions": [
            "subject_id", "gender", "dob", "hadm_id", "admittime", "dischtime",
            "admission_type", "admission_location", "discharge_location", "insurance",
            "ethnicity", "marital_status", "diagnosis", "hospital_expire_flag",
        ],
        "icu_admissions": [
            "subject_id", "hadm_id", "admission_type", "insurance", "icustay_id",
            "first_careunit", "last_careunit", "dbsource", "intime", "outtime", "los",
        ],
        "mortality_flags": ["subject_id", "hadm_id", "hospital_expire_flag", "died_ever"],
        "admission_diagnoses": [
            "subject_id", "hadm_id", "seq_num", "icd9_code", "short_title", "long_title",
        ],
        "admission_procedures": [
            "subject_id", "hadm_id", "seq_num", "icd9_code", "short_title", "long_title",
        ],
        "lab_abnormal": [
            "subject_id", "hadm_id", "itemid", "label", "fluid", "category",
            "charttime", "value", "valuenum", "valueuom", "flag",
        ],
        "admission_drugs": [
            "subject_id", "hadm_id", "icustay_id", "drug", "drug_type",
            "drug_name_generic", "route", "dose_val_rx", "dose_unit_rx",
            "startdate", "enddate",
        ],
    }
    cohort_templates = [
        ("elderly_admissions", "patient_admissions", "pa",
         "EXTRACT(YEAR FROM pa.admittime) - EXTRACT(YEAR FROM pa.dob) > 65"),
        ("emergency_admissions", "patient_admissions", "pa",
         "pa.admission_type = 'EMERGENCY'"),
        ("elective_admissions", "patient_admissions", "pa",
         "pa.admission_type = 'ELECTIVE'"),
        ("long_icu_stays", "icu_admissions", "ia", "ia.los > 7"),
        ("short_icu_stays", "icu_admissions", "ia", "ia.los <= 1"),
        ("micu_stays", "icu_admissions", "ia", "ia.first_careunit = 'MICU'"),
        ("died_in_hospital", "mortality_flags", "mf", "mf.hospital_expire_flag = 1"),
        ("survived_admissions", "mortality_flags", "mf", "mf.hospital_expire_flag = 0"),
        ("sepsis_diagnoses", "admission_diagnoses", "ad", "ad.icd9_code LIKE '038%'"),
        ("cardiac_diagnoses", "admission_diagnoses", "ad", "ad.icd9_code LIKE '410%'"),
        ("renal_diagnoses", "admission_diagnoses", "ad", "ad.icd9_code LIKE '584%'"),
        ("surgical_procedures", "admission_procedures", "ap", "ap.seq_num = 1"),
        ("abnormal_creatinine", "lab_abnormal", "la", "la.label = 'Creatinine'"),
        ("abnormal_lactate", "lab_abnormal", "la", "la.label = 'Lactate'"),
        ("iv_medications", "admission_drugs", "ad", "ad.route = 'IV'"),
    ]
    for name, source, alias, predicate in cohort_templates:
        columns = _cohort_source_columns[source]
        projected = ", ".join(f"{alias}.{column}" for column in columns)
        views[name] = (
            f"CREATE VIEW {name} AS SELECT {projected} FROM {source} {alias} WHERE {predicate}"
        )

    # Layer 4: report views (aggregation, set operations, stars) --------------
    views["admission_event_profile"] = (
        "CREATE VIEW admission_event_profile AS "
        "SELECT c.subject_id, c.hadm_id, c.event_count AS chart_events, "
        "l.event_count AS lab_events, o.event_count AS output_events "
        "FROM adm_chartevents_summary c "
        "LEFT JOIN adm_labevents_summary l ON c.hadm_id = l.hadm_id "
        "LEFT JOIN adm_outputevents_summary o ON c.hadm_id = o.hadm_id"
    )
    views["high_acuity_admissions"] = (
        "CREATE VIEW high_acuity_admissions AS "
        "SELECT v.subject_id, v.hadm_id FROM vasopressor_orders v "
        "INTERSECT "
        "SELECT ve.subject_id, ve.hadm_id FROM ventilation_events ve"
    )
    views["any_critical_admissions"] = (
        "CREATE VIEW any_critical_admissions AS "
        "SELECT v.subject_id, v.hadm_id FROM vasopressor_orders v "
        "UNION "
        "SELECT ve.subject_id, ve.hadm_id FROM ventilation_events ve "
        "UNION "
        "SELECT s.subject_id, s.hadm_id FROM sepsis_diagnoses s"
    )
    views["stable_admissions"] = (
        "CREATE VIEW stable_admissions AS "
        "SELECT pa.subject_id, pa.hadm_id FROM patient_admissions pa "
        "EXCEPT "
        "SELECT ac.subject_id, ac.hadm_id FROM any_critical_admissions ac"
    )
    views["icu_mortality_report"] = (
        "CREATE VIEW icu_mortality_report AS "
        "SELECT ia.first_careunit, count(*) AS stays, sum(mf.hospital_expire_flag) AS deaths, "
        "avg(ia.los) AS avg_los "
        "FROM icu_admissions ia JOIN mortality_flags mf ON ia.hadm_id = mf.hadm_id "
        "GROUP BY ia.first_careunit"
    )
    views["insurance_mix_report"] = (
        "CREATE VIEW insurance_mix_report AS "
        "SELECT pa.insurance, count(*) AS admissions, "
        "sum(CASE WHEN pa.hospital_expire_flag = 1 THEN 1 ELSE 0 END) AS deaths "
        "FROM patient_admissions pa GROUP BY pa.insurance"
    )
    views["sepsis_cohort_detail"] = (
        "CREATE VIEW sepsis_cohort_detail AS "
        "SELECT s.*, f.balance, ep.chart_events "
        "FROM sepsis_diagnoses s "
        "LEFT JOIN fluid_balance f ON s.hadm_id = f.hadm_id "
        "LEFT JOIN admission_event_profile ep ON s.hadm_id = ep.hadm_id"
    )
    views["critical_care_overview"] = (
        "CREATE VIEW critical_care_overview AS "
        "SELECT h.*, ia.first_careunit, ia.los "
        "FROM high_acuity_admissions h JOIN icu_admissions ia ON h.hadm_id = ia.hadm_id"
    )
    views["research_cohort"] = (
        "CREATE VIEW research_cohort AS "
        "WITH eligible AS (SELECT e.subject_id, e.hadm_id FROM elderly_admissions e "
        "UNION SELECT s.subject_id, s.hadm_id FROM sepsis_diagnoses s) "
        "SELECT el.subject_id, el.hadm_id, pd.icd9_code, pd.short_title, al.los_seconds "
        "FROM eligible el "
        "LEFT JOIN primary_diagnosis pd ON el.hadm_id = pd.hadm_id "
        "LEFT JOIN admission_los al ON el.hadm_id = al.hadm_id"
    )
    return views


def view_script(shuffle_seed=None):
    """All 70 views as one SQL script, optionally in a shuffled order."""
    views = view_definitions()
    statements = list(views.values())
    if shuffle_seed is not None:
        import random

        rng = random.Random(shuffle_seed)
        rng.shuffle(statements)
    return ";\n\n".join(statements) + ";\n"


def full_script(shuffle_seed=None):
    """Base-table DDL followed by every view definition."""
    return base_table_ddl() + "\n" + view_script(shuffle_seed=shuffle_seed)


def expected_counts():
    """The scale the paper reports for MIMIC (used in benchmark output)."""
    views = view_definitions()
    return {
        "base_tables": len(BASE_TABLES),
        "base_columns": sum(len(columns) for columns in BASE_TABLES.values()),
        "views": len(views),
    }
