"""A seeded random view-pipeline generator.

Used by the scalability benchmark (how does extraction time grow with the
number of views?) and by property-based tests (every generated pipeline must
extract without errors and every view column must trace back to base-table
columns).

The generator builds layered warehouses: a configurable number of base
tables, then successive layers of views where each view reads one or two
relations from earlier layers through a randomly chosen template
(projection, filter, join, aggregation, union, or ``SELECT *``).  All
randomness flows from an explicit seed, so a given configuration always
produces the same SQL.

``extended_probability`` (default 0, which reproduces the historical
statement stream bit-for-bit) mixes in the warehouse-DML templates: MERGE
and ``INSERT ... ON CONFLICT DO UPDATE`` statements into dedicated stage
tables, plus views using ``QUALIFY``, ``GROUP BY GROUPING
SETS/ROLLUP/CUBE``, and ``unnest(...)``/``generate_series(...)`` table
functions.  The differential harness and (optionally) the cold-path
benchmark run over this richer mix.
"""

import random
from dataclasses import dataclass, field

from ..catalog import Catalog

_COLUMN_POOL = [
    "id", "key", "code", "name", "status", "amount", "price", "quantity", "category",
    "region", "created_at", "updated_at", "value", "score", "flag", "type", "owner",
    "source", "priority", "total",
]


@dataclass
class GeneratedWarehouse:
    """The output of :func:`generate_warehouse`."""

    base_tables: dict = field(default_factory=dict)   # name -> list of columns
    views: dict = field(default_factory=dict)          # name -> SQL (ordered)
    seed: int = 0

    @property
    def script(self):
        """All view definitions as one SQL script (dependency order)."""
        return ";\n".join(self.views.values()) + ";"

    def shuffled_script(self, seed=None):
        """The view definitions in a deterministically shuffled order."""
        rng = random.Random(self.seed if seed is None else seed)
        statements = list(self.views.values())
        rng.shuffle(statements)
        return ";\n".join(statements) + ";"

    def catalog(self):
        """Base tables as a :class:`repro.catalog.Catalog`."""
        catalog = Catalog()
        for name, columns in self.base_tables.items():
            catalog.create_table(name, [(column, "text") for column in columns])
        return catalog

    def total_statements(self):
        return len(self.views)


#: the warehouse-DML template mix selected under ``extended_probability``.
_EXTENDED_TEMPLATES = ("merge", "upsert", "qualify", "grouping", "unnest")


def generate_warehouse(
    num_base_tables=5,
    num_views=20,
    columns_per_table=6,
    seed=42,
    star_probability=0.15,
    join_probability=0.45,
    aggregate_probability=0.2,
    union_probability=0.1,
    extended_probability=0.0,
):
    """Generate a layered warehouse of ``num_views`` statement definitions.

    Probabilities select the template for each view (star / join / aggregate
    / union, falling back to a filtered projection); they are applied in
    that order on independent draws, so they need not sum to one.

    ``extended_probability`` is evaluated first: with probability *e* the
    statement is drawn uniformly from the warehouse-DML templates (MERGE,
    upsert, QUALIFY, grouping sets, unnest/generate_series); otherwise the
    classic mix applies to the remaining probability mass unchanged.  With
    the default ``0.0`` the random stream — and therefore every generated
    statement — is identical to what this generator always produced.

    MERGE and upsert statements write dedicated ``stage_<i>`` tables that
    are appended to ``base_tables`` (and hence to :meth:`GeneratedWarehouse.
    catalog`); the statement is keyed by the stage-table name, since that
    is its Query Dictionary identifier.
    """
    rng = random.Random(seed)
    warehouse = GeneratedWarehouse(seed=seed)

    for table_index in range(num_base_tables):
        name = f"base_{table_index}"
        count = max(2, columns_per_table + rng.randint(-2, 2))
        warehouse.base_tables[name] = _sample_columns(count, rng)

    #: relations available to build on: name -> visible column list
    available = dict(warehouse.base_tables)

    for view_index in range(num_views):
        name = f"view_{view_index}"
        draw = rng.random()
        if extended_probability and draw < extended_probability:
            template = rng.choice(_EXTENDED_TEMPLATES)
            if template == "merge":
                name, sql, columns = _merge_statement(
                    view_index, available, warehouse.base_tables, rng
                )
            elif template == "upsert":
                name, sql, columns = _upsert_statement(
                    view_index, available, warehouse.base_tables, rng
                )
            elif template == "qualify":
                sql, columns = _qualify_view(name, available, rng)
            elif template == "grouping":
                sql, columns = _grouping_view(name, available, rng)
            else:
                sql, columns = _unnest_view(name, available, rng)
            warehouse.views[name] = sql
            available[name] = columns
            continue
        if extended_probability:
            # rescale so the classic template mix keeps its proportions
            # within the remaining probability mass
            draw = (draw - extended_probability) / (1.0 - extended_probability)
        if draw < star_probability:
            sql, columns = _star_view(name, available, rng)
        elif draw < star_probability + join_probability and len(available) >= 2:
            sql, columns = _join_view(name, available, rng)
        elif draw < star_probability + join_probability + aggregate_probability:
            sql, columns = _aggregate_view(name, available, rng)
        elif draw < star_probability + join_probability + aggregate_probability + union_probability:
            sql, columns = _union_view(name, available, rng)
        else:
            sql, columns = _filter_view(name, available, rng)
        warehouse.views[name] = sql
        available[name] = columns
    return warehouse


# ----------------------------------------------------------------------
# View templates
# ----------------------------------------------------------------------
def _pick_source(available, rng):
    name = rng.choice(sorted(available))
    return name, available[name]


def _star_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    sql = f"CREATE VIEW {name} AS SELECT s.* FROM {source} s"
    return sql, list(columns)


def _filter_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = columns[: max(2, len(columns) - rng.randint(0, 2))]
    projected = ", ".join(f"s.{column}" for column in kept)
    predicate_column = rng.choice(columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {projected} FROM {source} s "
        f"WHERE s.{predicate_column} IS NOT NULL"
    )
    return sql, kept


def _join_view(name, available, rng):
    left, left_columns = _pick_source(available, rng)
    right, right_columns = _pick_source(available, rng)
    attempts = 0
    while right == left and attempts < 5:
        right, right_columns = _pick_source(available, rng)
        attempts += 1
    left_kept = left_columns[: max(1, len(left_columns) // 2)]
    right_kept = [column for column in right_columns if column not in left_kept][:3]
    projections = [f"l.{column}" for column in left_kept] + [
        f"r.{column} AS r_{column}" for column in right_kept
    ]
    join_left = rng.choice(left_columns)
    join_right = rng.choice(right_columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {', '.join(projections)} "
        f"FROM {left} l JOIN {right} r ON l.{join_left} = r.{join_right}"
    )
    output = list(left_kept) + [f"r_{column}" for column in right_kept]
    return sql, output


def _aggregate_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    group_column = rng.choice(columns)
    value_column = rng.choice(columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{group_column}, count(*) AS row_count, "
        f"max(s.{value_column}) AS max_{value_column} "
        f"FROM {source} s GROUP BY s.{group_column}"
    )
    return sql, [group_column, "row_count", f"max_{value_column}"]


def _union_view(name, available, rng):
    first, first_columns = _pick_source(available, rng)
    second, second_columns = _pick_source(available, rng)
    column_first = rng.choice(first_columns)
    column_second = rng.choice(second_columns)
    sql = (
        f"CREATE VIEW {name} AS "
        f"SELECT a.{column_first} AS merged_key FROM {first} a "
        f"UNION SELECT b.{column_second} FROM {second} b"
    )
    return sql, ["merged_key"]


# ----------------------------------------------------------------------
# Warehouse-DML templates (extended_probability)
# ----------------------------------------------------------------------
def _sample_columns(count, rng):
    """An ``id`` column plus ``count - 1`` distinct names from the pool."""
    return ["id"] + rng.sample(_COLUMN_POOL[1:], min(count - 1, len(_COLUMN_POOL) - 1))


def _stage_table(index, base_tables, rng):
    """Create a fresh stage table for a MERGE/upsert to write into."""
    name = f"stage_{index}"
    count = max(3, 4 + rng.randint(-1, 2))
    columns = _sample_columns(count, rng)
    base_tables[name] = columns
    return name, columns


def _merge_statement(index, available, base_tables, rng):
    """MERGE a source relation into a dedicated stage table.

    The statement's Query Dictionary identifier is the stage-table name;
    its extracted output columns are the UPDATE-assigned column followed by
    the INSERT columns (duplicates collapse to first occurrence), which is
    what later readers of the stage table will resolve against.
    """
    source, source_columns = _pick_source(available, rng)
    stage, stage_columns = _stage_table(index, base_tables, rng)
    set_column = rng.choice(stage_columns[1:])
    match_column = rng.choice(source_columns)
    update_source = rng.choice(source_columns)
    insert_source = rng.choice(source_columns)
    sql = (
        f"MERGE INTO {stage} AS t USING {source} AS s ON t.id = s.{match_column} "
        f"WHEN MATCHED AND s.{update_source} IS NOT NULL "
        f"THEN UPDATE SET {set_column} = s.{update_source} "
        f"WHEN NOT MATCHED THEN INSERT (id, {set_column}) "
        f"VALUES (s.{match_column}, s.{insert_source})"
    )
    return stage, sql, [set_column, "id"]


def _upsert_statement(index, available, base_tables, rng):
    """INSERT ... ON CONFLICT (id) DO UPDATE into a dedicated stage table."""
    source, source_columns = _pick_source(available, rng)
    stage, stage_columns = _stage_table(index, base_tables, rng)
    value_column = rng.choice(stage_columns[1:])
    if len(source_columns) >= 2:
        src_id, src_value = rng.sample(source_columns, 2)
    else:
        src_id = src_value = source_columns[0]
    sql = (
        f"INSERT INTO {stage} (id, {value_column}) "
        f"SELECT s.{src_id}, s.{src_value} FROM {source} s "
        f"ON CONFLICT (id) DO UPDATE SET {value_column} = excluded.{value_column}"
    )
    return stage, sql, ["id", value_column]


def _qualify_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = columns[: max(2, len(columns) - 1)]
    partition_column = rng.choice(columns)
    order_column = rng.choice(columns)
    projected = ", ".join(f"s.{column}" for column in kept)
    sql = (
        f"CREATE VIEW {name} AS SELECT {projected}, "
        f"row_number() OVER (PARTITION BY s.{partition_column} "
        f"ORDER BY s.{order_column}) AS rn "
        f"FROM {source} s QUALIFY rn = 1"
    )
    return sql, kept + ["rn"]


def _grouping_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    if len(columns) >= 2:
        first, second = rng.sample(columns, 2)
    else:
        first = second = columns[0]
    kind = rng.choice(("GROUPING SETS", "ROLLUP", "CUBE"))
    if kind == "GROUPING SETS":
        clause = f"GROUPING SETS ((s.{first}, s.{second}), (s.{first}), ())"
    else:
        clause = f"{kind} (s.{first}, s.{second})"
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{first}, s.{second}, count(*) AS n "
        f"FROM {source} s GROUP BY {clause}"
    )
    return sql, list(dict.fromkeys([first, second, "n"]))


def _unnest_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = rng.choice(columns)
    if rng.random() < 0.5:
        unnested = rng.choice(columns)
        sql = (
            f"CREATE VIEW {name} AS SELECT s.{kept}, u.item "
            f"FROM {source} s CROSS JOIN unnest(s.{unnested}) AS u(item)"
        )
        return sql, [kept, "item"]
    steps = rng.randint(2, 9)
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{kept}, g.step "
        f"FROM {source} s CROSS JOIN generate_series(1, {steps}) AS g(step)"
    )
    return sql, [kept, "step"]


def sweep_configurations():
    """The (num_views, num_base_tables) grid used by the scalability bench."""
    return [(10, 4), (25, 6), (50, 8), (100, 10), (200, 12), (400, 16)]
