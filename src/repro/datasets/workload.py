"""A seeded random view-pipeline generator.

Used by the scalability benchmark (how does extraction time grow with the
number of views?) and by property-based tests (every generated pipeline must
extract without errors and every view column must trace back to base-table
columns).

The generator builds layered warehouses: a configurable number of base
tables, then successive layers of views where each view reads one or two
relations from earlier layers through a randomly chosen template
(projection, filter, join, aggregation, union, or ``SELECT *``).  All
randomness flows from an explicit seed, so a given configuration always
produces the same SQL.

``extended_probability`` (default 0, which reproduces the historical
statement stream bit-for-bit) mixes in the warehouse-DML templates: MERGE
and ``INSERT ... ON CONFLICT DO UPDATE`` statements into dedicated stage
tables, plus views using ``QUALIFY``, ``GROUP BY GROUPING
SETS/ROLLUP/CUBE``, and ``unnest(...)``/``generate_series(...)`` table
functions.  The differential harness and (optionally) the cold-path
benchmark run over this richer mix.

Scale-tier knobs (each also defaulting to a byte-identical no-op):
``deep_chain_probability`` and ``fanout_probability`` skew the topology
toward its two worst cases (arbitrarily deep dependency chains, one hub
relation with thousands of readers), ``num_schemas`` spreads relations
across schema-qualified names, and :func:`iter_warehouse` emits the same
seeded stream as ``(name, sql)`` pairs one statement at a time so
100k-statement workloads never materialise as one giant dict.
"""

import bisect
import random
from dataclasses import dataclass, field

from ..catalog import Catalog

_COLUMN_POOL = [
    "id", "key", "code", "name", "status", "amount", "price", "quantity", "category",
    "region", "created_at", "updated_at", "value", "score", "flag", "type", "owner",
    "source", "priority", "total",
]


@dataclass
class GeneratedWarehouse:
    """The output of :func:`generate_warehouse`."""

    base_tables: dict = field(default_factory=dict)   # name -> list of columns
    views: dict = field(default_factory=dict)          # name -> SQL (ordered)
    seed: int = 0

    @property
    def script(self):
        """All view definitions as one SQL script (dependency order)."""
        return ";\n".join(self.views.values()) + ";"

    def shuffled_script(self, seed=None):
        """The view definitions in a deterministically shuffled order."""
        rng = random.Random(self.seed if seed is None else seed)
        statements = list(self.views.values())
        rng.shuffle(statements)
        return ";\n".join(statements) + ";"

    def catalog(self):
        """Base tables as a :class:`repro.catalog.Catalog`."""
        catalog = Catalog()
        for name, columns in self.base_tables.items():
            catalog.create_table(name, [(column, "text") for column in columns])
        return catalog

    def total_statements(self):
        return len(self.views)


#: the warehouse-DML template mix selected under ``extended_probability``.
_EXTENDED_TEMPLATES = ("merge", "upsert", "qualify", "grouping", "unnest")


def generate_warehouse(
    num_base_tables=5,
    num_views=20,
    columns_per_table=6,
    seed=42,
    star_probability=0.15,
    join_probability=0.45,
    aggregate_probability=0.2,
    union_probability=0.1,
    extended_probability=0.0,
    deep_chain_probability=0.0,
    fanout_probability=0.0,
    mesh_probability=0.0,
    num_schemas=1,
):
    """Generate a layered warehouse of ``num_views`` statement definitions.

    Probabilities select the template for each view (star / join / aggregate
    / union, falling back to a filtered projection); they are applied in
    that order on independent draws, so they need not sum to one.

    Three *special* template classes are evaluated first, each claiming its
    own slice of the single per-view draw, in this order:

    * ``extended_probability`` — the warehouse-DML templates (MERGE,
      upsert, QUALIFY, grouping sets, unnest/generate_series);
    * ``deep_chain_probability`` — a projection over the *immediately
      preceding* statement's relation, so runs of consecutive chain views
      produce arbitrarily deep dependency chains (the worst case for
      topological depth: many narrow waves);
    * ``fanout_probability`` — an aggregate over the first base table (the
      *hub*), so every fan-out view adds one more reader to the same
      relation (the worst case for wave width and for invalidation blast
      radius);
    * ``mesh_probability`` — a wide multi-source projection whose every
      output column coalesces one column from each of three relations
      (preferring the immediately preceding one, so meshes compound),
      with filter and join predicates referencing every output: the
      densest per-column in-degree the generator can express (the worst
      case for edge-walking traversals, whose cost grows with reachable
      *edges* rather than reachable columns).

    The classic mix then applies to the remaining probability mass,
    rescaled so its internal proportions are unchanged.  With all three
    at the default ``0.0`` the random stream — and therefore every
    generated statement — is identical to what this generator always
    produced.

    ``num_schemas > 1`` spreads base tables and views round-robin across
    ``sch_<k>.``-qualified names, exercising multi-schema resolution; the
    assignment consumes no randomness, so ``num_schemas=1`` (the default)
    is byte-identical to the historical unqualified stream.

    MERGE and upsert statements write dedicated ``stage_<i>`` tables that
    are appended to ``base_tables`` (and hence to :meth:`GeneratedWarehouse.
    catalog`); the statement is keyed by the stage-table name, since that
    is its Query Dictionary identifier.
    """
    rng = random.Random(seed)
    warehouse = GeneratedWarehouse(seed=seed)
    warehouse.base_tables = _build_base_tables(
        num_base_tables, columns_per_table, num_schemas, rng
    )
    for name, sql, _columns in _statement_stream(
        warehouse.base_tables,
        num_views,
        rng,
        star_probability=star_probability,
        join_probability=join_probability,
        aggregate_probability=aggregate_probability,
        union_probability=union_probability,
        extended_probability=extended_probability,
        deep_chain_probability=deep_chain_probability,
        fanout_probability=fanout_probability,
        mesh_probability=mesh_probability,
        num_schemas=num_schemas,
    ):
        warehouse.views[name] = sql
    return warehouse


def _schema_prefix(index, num_schemas):
    """Round-robin schema qualifier (empty in single-schema mode)."""
    if num_schemas <= 1:
        return ""
    return f"sch_{index % num_schemas}."


def _build_base_tables(num_base_tables, columns_per_table, num_schemas, rng):
    """The pristine base-table layer: ``{name: [columns]}``."""
    base_tables = {}
    for table_index in range(num_base_tables):
        name = f"{_schema_prefix(table_index, num_schemas)}base_{table_index}"
        count = max(2, columns_per_table + rng.randint(-2, 2))
        base_tables[name] = _sample_columns(count, rng)
    return base_tables


def _statement_stream(
    base_tables,
    num_views,
    rng,
    star_probability=0.15,
    join_probability=0.45,
    aggregate_probability=0.2,
    union_probability=0.1,
    extended_probability=0.0,
    deep_chain_probability=0.0,
    fanout_probability=0.0,
    mesh_probability=0.0,
    num_schemas=1,
):
    """Yield ``(name, sql, output_columns)`` per statement, lazily.

    The single generation core behind both :func:`generate_warehouse`
    (which accumulates the stream into a dict) and :func:`iter_warehouse`
    (which hands the stream to the caller one statement at a time, so a
    100k-statement workload never exists as one in-memory list).  Stage
    tables created by MERGE/upsert templates are appended to
    ``base_tables`` *as the stream advances*.
    """
    #: relations available to build on: name -> visible column list
    available = _Relations(base_tables)
    hub = next(iter(base_tables), None)
    previous = hub
    special = (
        extended_probability
        + deep_chain_probability
        + fanout_probability
        + mesh_probability
    )
    for view_index in range(num_views):
        name = f"{_schema_prefix(view_index, num_schemas)}view_{view_index}"
        draw = rng.random()
        if extended_probability and draw < extended_probability:
            template = rng.choice(_EXTENDED_TEMPLATES)
            if template == "merge":
                name, sql, columns = _merge_statement(
                    view_index, available, base_tables, rng
                )
            elif template == "upsert":
                name, sql, columns = _upsert_statement(
                    view_index, available, base_tables, rng
                )
            elif template == "qualify":
                sql, columns = _qualify_view(name, available, rng)
            elif template == "grouping":
                sql, columns = _grouping_view(name, available, rng)
            else:
                sql, columns = _unnest_view(name, available, rng)
        elif (
            deep_chain_probability
            and draw < extended_probability + deep_chain_probability
            and previous is not None
        ):
            sql, columns = _chain_view(name, previous, available[previous], rng)
        elif (
            fanout_probability
            and draw
            < extended_probability + deep_chain_probability + fanout_probability
            and hub is not None
        ):
            sql, columns = _fanout_view(name, hub, available[hub], rng)
        elif mesh_probability and draw < special:
            sql, columns = _mesh_view(name, previous, available, rng)
        else:
            if special:
                # rescale so the classic template mix keeps its proportions
                # within the remaining probability mass
                draw = (draw - special) / (1.0 - special)
            if draw < star_probability:
                sql, columns = _star_view(name, available, rng)
            elif draw < star_probability + join_probability and len(available) >= 2:
                sql, columns = _join_view(name, available, rng)
            elif draw < star_probability + join_probability + aggregate_probability:
                sql, columns = _aggregate_view(name, available, rng)
            elif draw < (
                star_probability
                + join_probability
                + aggregate_probability
                + union_probability
            ):
                sql, columns = _union_view(name, available, rng)
            else:
                sql, columns = _filter_view(name, available, rng)
        available.add(name, columns)
        previous = name
        yield name, sql, columns


class StreamedWarehouse:
    """A :func:`generate_warehouse` workload emitted as a statement stream.

    Iterating yields ``(name, sql)`` pairs one at a time — the input shape
    ``preprocess`` streams through — without ever holding the full view
    dict.  Iteration is *restartable*: each ``iter()`` replays the seeded
    stream from the start (and resets :attr:`base_tables` to the pristine
    base layer, since MERGE/upsert stage tables accrue during iteration).

    :meth:`catalog` snapshots :attr:`base_tables` at call time — with
    extended templates enabled, take it *after* exhausting an iteration so
    stage tables are included; with the classic template mix (the scale
    benchmark's configuration) the base layer is complete up front and the
    snapshot is always right.
    """

    def __init__(self, num_base_tables, num_views, columns_per_table, seed, knobs):
        self._num_base_tables = num_base_tables
        self._num_views = num_views
        self._columns_per_table = columns_per_table
        self._knobs = dict(knobs)
        self.seed = seed
        self.base_tables = _build_base_tables(
            num_base_tables,
            columns_per_table,
            self._knobs.get("num_schemas", 1),
            random.Random(seed),
        )

    def __iter__(self):
        rng = random.Random(self.seed)
        self.base_tables = _build_base_tables(
            self._num_base_tables,
            self._columns_per_table,
            self._knobs.get("num_schemas", 1),
            rng,
        )
        for name, sql, _columns in _statement_stream(
            self.base_tables, self._num_views, rng, **self._knobs
        ):
            yield name, sql

    def catalog(self):
        """Base tables (as discovered so far) as a :class:`Catalog`."""
        catalog = Catalog()
        for name, columns in self.base_tables.items():
            catalog.create_table(name, [(column, "text") for column in columns])
        return catalog

    def total_statements(self):
        return self._num_views


def iter_warehouse(
    num_base_tables=5,
    num_views=20,
    columns_per_table=6,
    seed=42,
    **knobs,
):
    """The streaming twin of :func:`generate_warehouse`.

    Same parameters, same seeded statement stream — ``list(iter_warehouse(
    ...))`` equals ``list(generate_warehouse(...).views.items())`` for any
    configuration — but returned as a restartable :class:`StreamedWarehouse`
    instead of a fully materialised dict, so the 100k-statement scale tier
    can feed ``preprocess`` without first building the whole corpus in
    memory.
    """
    return StreamedWarehouse(
        num_base_tables, num_views, columns_per_table, seed, knobs
    )


# ----------------------------------------------------------------------
# View templates
# ----------------------------------------------------------------------
class _Relations(dict):
    """``{relation name: columns}`` with a sorted key list kept incrementally.

    Source picks draw from the names in sorted order; re-sorting them on
    every pick made generation quadratic in the statement count — at the
    100k-statement scale tier the generator spent longer sorting names
    than the engine spent extracting lineage, in cold *and* warm runs
    alike.  ``bisect.insort`` keeps the list identical to
    ``sorted(self)``, so every draw (one ``rng.choice`` over the same
    ordering) is byte-identical to what the quadratic form produced.
    """

    def __init__(self, items):
        super().__init__(items)
        self.sorted_names = sorted(self)

    def add(self, name, columns):
        if name not in self:
            bisect.insort(self.sorted_names, name)
        self[name] = columns


def _pick_source(available, rng):
    names = getattr(available, "sorted_names", None)
    if names is None:  # plain dicts (direct template calls in tests) still work
        names = sorted(available)
    name = rng.choice(names)
    return name, available[name]


def _star_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    sql = f"CREATE VIEW {name} AS SELECT s.* FROM {source} s"
    return sql, list(columns)


def _filter_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = columns[: max(2, len(columns) - rng.randint(0, 2))]
    projected = ", ".join(f"s.{column}" for column in kept)
    predicate_column = rng.choice(columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {projected} FROM {source} s "
        f"WHERE s.{predicate_column} IS NOT NULL"
    )
    return sql, kept


def _join_view(name, available, rng):
    left, left_columns = _pick_source(available, rng)
    right, right_columns = _pick_source(available, rng)
    attempts = 0
    while right == left and attempts < 5:
        right, right_columns = _pick_source(available, rng)
        attempts += 1
    left_kept = left_columns[: max(1, len(left_columns) // 2)]
    right_kept = [column for column in right_columns if column not in left_kept][:3]
    projections = [f"l.{column}" for column in left_kept] + [
        f"r.{column} AS r_{column}" for column in right_kept
    ]
    join_left = rng.choice(left_columns)
    join_right = rng.choice(right_columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {', '.join(projections)} "
        f"FROM {left} l JOIN {right} r ON l.{join_left} = r.{join_right}"
    )
    output = list(left_kept) + [f"r_{column}" for column in right_kept]
    return sql, output


def _aggregate_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    group_column = rng.choice(columns)
    value_column = rng.choice(columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{group_column}, count(*) AS row_count, "
        f"max(s.{value_column}) AS max_{value_column} "
        f"FROM {source} s GROUP BY s.{group_column}"
    )
    return sql, [group_column, "row_count", f"max_{value_column}"]


def _union_view(name, available, rng):
    first, first_columns = _pick_source(available, rng)
    second, second_columns = _pick_source(available, rng)
    column_first = rng.choice(first_columns)
    column_second = rng.choice(second_columns)
    sql = (
        f"CREATE VIEW {name} AS "
        f"SELECT a.{column_first} AS merged_key FROM {first} a "
        f"UNION SELECT b.{column_second} FROM {second} b"
    )
    return sql, ["merged_key"]


def _chain_view(name, previous, previous_columns, rng):
    """A projection over the immediately preceding statement's relation.

    Consecutive chain views form one long dependency chain — the deepest
    topology the generator can produce — so the scheduler's wave count
    grows with the chain length instead of staying at the layer count.
    """
    kept = previous_columns[: max(1, len(previous_columns) - 1)]
    projected = ", ".join(f"s.{column}" for column in kept)
    predicate_column = rng.choice(previous_columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {projected} FROM {previous} s "
        f"WHERE s.{predicate_column} IS NOT NULL"
    )
    return sql, kept


def _fanout_view(name, hub, hub_columns, rng):
    """An aggregate over the hub (the first base table).

    Every fan-out view is one more reader of the same relation, producing
    the widest waves and the largest single-relation invalidation set the
    generator can express.
    """
    group_column = rng.choice(hub_columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{group_column}, count(*) AS n "
        f"FROM {hub} s GROUP BY s.{group_column}"
    )
    return sql, [group_column, "n"]


def _mesh_view(name, previous, available, rng):
    """A wide multi-source projection with expression-level lineage.

    Every output column coalesces one column from each of (up to) three
    source relations — the immediately preceding relation plus two random
    picks — and the join/filter predicates add reference edges to every
    output.  Each output column therefore carries several in-edges of
    mixed kinds, so reachable subgraphs hold far more *edges* than
    *columns*: the regime where per-edge traversal cost separates from
    answer-sized reads, and where kind-tracking traversals re-expand
    nodes as their kind sets grow.  Meshes preferring ``previous``
    compound into deep, dense regions.
    """
    sources = []
    if previous is not None:
        sources.append((previous, available[previous]))
    attempts = 0
    while len(sources) < 3 and attempts < 8:
        attempts += 1
        pick = _pick_source(available, rng)
        if pick[0] not in {source for source, _ in sources}:
            sources.append(pick)
    aliased = [(f"s{i}", source, columns) for i, (source, columns) in enumerate(sources)]
    width = 4
    projections = []
    outputs = []
    for column_index in range(width):
        picks = [f"{alias}.{rng.choice(columns)}" for alias, _, columns in aliased]
        output = f"mesh_{column_index}"
        if len(picks) == 1:
            projections.append(f"{picks[0]} AS {output}")
        else:
            projections.append(f"coalesce({', '.join(picks)}) AS {output}")
        outputs.append(output)
    first_alias, _, first_columns = aliased[0]
    clauses = [f"FROM {aliased[0][1]} {first_alias}"]
    for alias, source, columns in aliased[1:]:
        left_alias, _, left_columns = aliased[0]
        clauses.append(
            f"JOIN {source} {alias} "
            f"ON {left_alias}.{rng.choice(left_columns)} = {alias}.{rng.choice(columns)}"
        )
    predicate = f"{first_alias}.{rng.choice(first_columns)}"
    sql = (
        f"CREATE VIEW {name} AS SELECT {', '.join(projections)} "
        f"{' '.join(clauses)} WHERE {predicate} IS NOT NULL"
    )
    return sql, outputs


# ----------------------------------------------------------------------
# Warehouse-DML templates (extended_probability)
# ----------------------------------------------------------------------
def _sample_columns(count, rng):
    """An ``id`` column plus ``count - 1`` distinct names from the pool."""
    return ["id"] + rng.sample(_COLUMN_POOL[1:], min(count - 1, len(_COLUMN_POOL) - 1))


def _stage_table(index, base_tables, rng):
    """Create a fresh stage table for a MERGE/upsert to write into."""
    name = f"stage_{index}"
    count = max(3, 4 + rng.randint(-1, 2))
    columns = _sample_columns(count, rng)
    base_tables[name] = columns
    return name, columns


def _merge_statement(index, available, base_tables, rng):
    """MERGE a source relation into a dedicated stage table.

    The statement's Query Dictionary identifier is the stage-table name;
    its extracted output columns are the UPDATE-assigned column followed by
    the INSERT columns (duplicates collapse to first occurrence), which is
    what later readers of the stage table will resolve against.
    """
    source, source_columns = _pick_source(available, rng)
    stage, stage_columns = _stage_table(index, base_tables, rng)
    set_column = rng.choice(stage_columns[1:])
    match_column = rng.choice(source_columns)
    update_source = rng.choice(source_columns)
    insert_source = rng.choice(source_columns)
    sql = (
        f"MERGE INTO {stage} AS t USING {source} AS s ON t.id = s.{match_column} "
        f"WHEN MATCHED AND s.{update_source} IS NOT NULL "
        f"THEN UPDATE SET {set_column} = s.{update_source} "
        f"WHEN NOT MATCHED THEN INSERT (id, {set_column}) "
        f"VALUES (s.{match_column}, s.{insert_source})"
    )
    return stage, sql, [set_column, "id"]


def _upsert_statement(index, available, base_tables, rng):
    """INSERT ... ON CONFLICT (id) DO UPDATE into a dedicated stage table."""
    source, source_columns = _pick_source(available, rng)
    stage, stage_columns = _stage_table(index, base_tables, rng)
    value_column = rng.choice(stage_columns[1:])
    if len(source_columns) >= 2:
        src_id, src_value = rng.sample(source_columns, 2)
    else:
        src_id = src_value = source_columns[0]
    sql = (
        f"INSERT INTO {stage} (id, {value_column}) "
        f"SELECT s.{src_id}, s.{src_value} FROM {source} s "
        f"ON CONFLICT (id) DO UPDATE SET {value_column} = excluded.{value_column}"
    )
    return stage, sql, ["id", value_column]


def _qualify_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = columns[: max(2, len(columns) - 1)]
    partition_column = rng.choice(columns)
    order_column = rng.choice(columns)
    projected = ", ".join(f"s.{column}" for column in kept)
    sql = (
        f"CREATE VIEW {name} AS SELECT {projected}, "
        f"row_number() OVER (PARTITION BY s.{partition_column} "
        f"ORDER BY s.{order_column}) AS rn "
        f"FROM {source} s QUALIFY rn = 1"
    )
    return sql, kept + ["rn"]


def _grouping_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    if len(columns) >= 2:
        first, second = rng.sample(columns, 2)
    else:
        first = second = columns[0]
    kind = rng.choice(("GROUPING SETS", "ROLLUP", "CUBE"))
    if kind == "GROUPING SETS":
        clause = f"GROUPING SETS ((s.{first}, s.{second}), (s.{first}), ())"
    else:
        clause = f"{kind} (s.{first}, s.{second})"
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{first}, s.{second}, count(*) AS n "
        f"FROM {source} s GROUP BY {clause}"
    )
    return sql, list(dict.fromkeys([first, second, "n"]))


def _unnest_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = rng.choice(columns)
    if rng.random() < 0.5:
        unnested = rng.choice(columns)
        sql = (
            f"CREATE VIEW {name} AS SELECT s.{kept}, u.item "
            f"FROM {source} s CROSS JOIN unnest(s.{unnested}) AS u(item)"
        )
        return sql, [kept, "item"]
    steps = rng.randint(2, 9)
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{kept}, g.step "
        f"FROM {source} s CROSS JOIN generate_series(1, {steps}) AS g(step)"
    )
    return sql, [kept, "step"]


def sweep_configurations():
    """The (num_views, num_base_tables) grid used by the scalability bench."""
    return [(10, 4), (25, 6), (50, 8), (100, 10), (200, 12), (400, 16)]
