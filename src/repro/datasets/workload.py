"""A seeded random view-pipeline generator.

Used by the scalability benchmark (how does extraction time grow with the
number of views?) and by property-based tests (every generated pipeline must
extract without errors and every view column must trace back to base-table
columns).

The generator builds layered warehouses: a configurable number of base
tables, then successive layers of views where each view reads one or two
relations from earlier layers through a randomly chosen template
(projection, filter, join, aggregation, union, or ``SELECT *``).  All
randomness flows from an explicit seed, so a given configuration always
produces the same SQL.
"""

import random
from dataclasses import dataclass, field

from ..catalog import Catalog

_COLUMN_POOL = [
    "id", "key", "code", "name", "status", "amount", "price", "quantity", "category",
    "region", "created_at", "updated_at", "value", "score", "flag", "type", "owner",
    "source", "priority", "total",
]


@dataclass
class GeneratedWarehouse:
    """The output of :func:`generate_warehouse`."""

    base_tables: dict = field(default_factory=dict)   # name -> list of columns
    views: dict = field(default_factory=dict)          # name -> SQL (ordered)
    seed: int = 0

    @property
    def script(self):
        """All view definitions as one SQL script (dependency order)."""
        return ";\n".join(self.views.values()) + ";"

    def shuffled_script(self, seed=None):
        """The view definitions in a deterministically shuffled order."""
        rng = random.Random(self.seed if seed is None else seed)
        statements = list(self.views.values())
        rng.shuffle(statements)
        return ";\n".join(statements) + ";"

    def catalog(self):
        """Base tables as a :class:`repro.catalog.Catalog`."""
        catalog = Catalog()
        for name, columns in self.base_tables.items():
            catalog.create_table(name, [(column, "text") for column in columns])
        return catalog

    def total_statements(self):
        return len(self.views)


def generate_warehouse(
    num_base_tables=5,
    num_views=20,
    columns_per_table=6,
    seed=42,
    star_probability=0.15,
    join_probability=0.45,
    aggregate_probability=0.2,
    union_probability=0.1,
):
    """Generate a layered warehouse of ``num_views`` view definitions.

    Probabilities select the template for each view (star / join / aggregate
    / union, falling back to a filtered projection); they are applied in
    that order on independent draws, so they need not sum to one.
    """
    rng = random.Random(seed)
    warehouse = GeneratedWarehouse(seed=seed)

    for table_index in range(num_base_tables):
        name = f"base_{table_index}"
        count = max(2, columns_per_table + rng.randint(-2, 2))
        columns = ["id"] + rng.sample(_COLUMN_POOL[1:], min(count - 1, len(_COLUMN_POOL) - 1))
        warehouse.base_tables[name] = columns

    #: relations available to build on: name -> visible column list
    available = dict(warehouse.base_tables)

    for view_index in range(num_views):
        name = f"view_{view_index}"
        draw = rng.random()
        if draw < star_probability:
            sql, columns = _star_view(name, available, rng)
        elif draw < star_probability + join_probability and len(available) >= 2:
            sql, columns = _join_view(name, available, rng)
        elif draw < star_probability + join_probability + aggregate_probability:
            sql, columns = _aggregate_view(name, available, rng)
        elif draw < star_probability + join_probability + aggregate_probability + union_probability:
            sql, columns = _union_view(name, available, rng)
        else:
            sql, columns = _filter_view(name, available, rng)
        warehouse.views[name] = sql
        available[name] = columns
    return warehouse


# ----------------------------------------------------------------------
# View templates
# ----------------------------------------------------------------------
def _pick_source(available, rng):
    name = rng.choice(sorted(available))
    return name, available[name]


def _star_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    sql = f"CREATE VIEW {name} AS SELECT s.* FROM {source} s"
    return sql, list(columns)


def _filter_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    kept = columns[: max(2, len(columns) - rng.randint(0, 2))]
    projected = ", ".join(f"s.{column}" for column in kept)
    predicate_column = rng.choice(columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {projected} FROM {source} s "
        f"WHERE s.{predicate_column} IS NOT NULL"
    )
    return sql, kept


def _join_view(name, available, rng):
    left, left_columns = _pick_source(available, rng)
    right, right_columns = _pick_source(available, rng)
    attempts = 0
    while right == left and attempts < 5:
        right, right_columns = _pick_source(available, rng)
        attempts += 1
    left_kept = left_columns[: max(1, len(left_columns) // 2)]
    right_kept = [column for column in right_columns if column not in left_kept][:3]
    projections = [f"l.{column}" for column in left_kept] + [
        f"r.{column} AS r_{column}" for column in right_kept
    ]
    join_left = rng.choice(left_columns)
    join_right = rng.choice(right_columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT {', '.join(projections)} "
        f"FROM {left} l JOIN {right} r ON l.{join_left} = r.{join_right}"
    )
    output = list(left_kept) + [f"r_{column}" for column in right_kept]
    return sql, output


def _aggregate_view(name, available, rng):
    source, columns = _pick_source(available, rng)
    group_column = rng.choice(columns)
    value_column = rng.choice(columns)
    sql = (
        f"CREATE VIEW {name} AS SELECT s.{group_column}, count(*) AS row_count, "
        f"max(s.{value_column}) AS max_{value_column} "
        f"FROM {source} s GROUP BY s.{group_column}"
    )
    return sql, [group_column, "row_count", f"max_{value_column}"]


def _union_view(name, available, rng):
    first, first_columns = _pick_source(available, rng)
    second, second_columns = _pick_source(available, rng)
    column_first = rng.choice(first_columns)
    column_second = rng.choice(second_columns)
    sql = (
        f"CREATE VIEW {name} AS "
        f"SELECT a.{column_first} AS merged_key FROM {first} a "
        f"UNION SELECT b.{column_second} FROM {second} b"
    )
    return sql, ["merged_key"]


def sweep_configurations():
    """The (num_views, num_base_tables) grid used by the scalability bench."""
    return [(10, 4), (25, 6), (50, 8), (100, 10), (200, 12), (400, 16)]
