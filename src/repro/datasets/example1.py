"""The paper's running example (Example 1) and its ground-truth lineage.

An online shop stores customer, order, and web-activity data.  Three views
are defined:

* ``webinfo`` joins ``customers`` and ``web`` and renames the columns;
* ``webact`` intersects ``webinfo`` with ``web``;
* ``info`` joins ``customers``, ``orders`` and ``webact`` and uses
  ``SELECT w.*`` over the ``webact`` view.

The ground truth below is the correct lineage a human would derive (the
yellow graph of Figure 2), used by the tests and the Figure 2 / Figure 5
benchmarks.
"""

from ..catalog import Catalog
from ..core.column_refs import ColumnName
from ..core.lineage import LineageGraph, TableLineage

#: Q1 of Example 1 — uses SELECT w.* over the webact view.
Q1 = """
CREATE VIEW info AS
SELECT c.name, c.age, o.oid, w.*
FROM customers c JOIN orders o ON c.cid = o.cid
JOIN webact w ON c.cid = w.wcid;
"""

#: Q2 of Example 1 — a set operation (INTERSECT) without table prefixes on
#: the output side.
Q2 = """
CREATE VIEW webact AS
SELECT w.wcid, w.wdate, w.wpage, w.wreg
FROM webinfo w
INTERSECT
SELECT w1.cid, w1.date, w1.page, w1.reg
FROM web w1;
"""

#: Q3 of Example 1 — renaming projection over a join with a WHERE filter.
Q3 = """
CREATE VIEW webinfo AS
SELECT c.cid AS wcid, w.date AS wdate,
       w.page AS wpage, w.reg AS wreg
FROM customers c JOIN web w ON c.cid = w.cid
WHERE EXTRACT(YEAR from w.date) = 2022;
"""

#: The full query log, in the order the paper presents it (note that the
#: definition of ``info`` comes *before* the views it depends on — this is
#: what exercises the auto-inference stack).
QUERY_LOG = Q1 + Q2 + Q3

#: Statements in dependency order (used by the ablation benchmark to show
#: that the stack makes the processing order irrelevant).
QUERY_LOG_ORDERED = Q3 + Q2 + Q1


def queries():
    """The three view definitions as a list, in paper order."""
    return [Q1, Q2, Q3]


def base_table_catalog():
    """Schemas of the base tables (optional; Example 1 works without them)."""
    catalog = Catalog()
    catalog.create_table(
        "customers",
        [("cid", "integer"), ("name", "text"), ("age", "integer")],
    )
    catalog.create_table(
        "orders",
        [("oid", "integer"), ("cid", "integer"), ("amount", "numeric")],
    )
    catalog.create_table(
        "web",
        [("cid", "integer"), ("date", "timestamp"), ("page", "text"), ("reg", "boolean")],
    )
    return catalog


def _column(table, column):
    return ColumnName.of(table, column)


def ground_truth():
    """The correct lineage graph for Example 1 (the yellow graph of Figure 2).

    Only the three views are included; base-table nodes are added by the
    runner from usage and are checked separately in the tests.
    """
    graph = LineageGraph()

    webinfo = TableLineage(name="webinfo")
    webinfo.add_contribution("wcid", _column("customers", "cid"))
    webinfo.add_contribution("wdate", _column("web", "date"))
    webinfo.add_contribution("wpage", _column("web", "page"))
    webinfo.add_contribution("wreg", _column("web", "reg"))
    webinfo.add_reference(_column("customers", "cid"))
    webinfo.add_reference(_column("web", "cid"))
    webinfo.add_reference(_column("web", "date"))
    graph.add(webinfo)

    webact = TableLineage(name="webact")
    webact.add_contribution("wcid", _column("webinfo", "wcid"))
    webact.add_contribution("wcid", _column("web", "cid"))
    webact.add_contribution("wdate", _column("webinfo", "wdate"))
    webact.add_contribution("wdate", _column("web", "date"))
    webact.add_contribution("wpage", _column("webinfo", "wpage"))
    webact.add_contribution("wpage", _column("web", "page"))
    webact.add_contribution("wreg", _column("webinfo", "wreg"))
    webact.add_contribution("wreg", _column("web", "reg"))
    # The INTERSECT compares whole rows: every input projection column is
    # referenced by the set operation.
    for table, columns in (
        ("webinfo", ("wcid", "wdate", "wpage", "wreg")),
        ("web", ("cid", "date", "page", "reg")),
    ):
        for column in columns:
            webact.add_reference(_column(table, column))
    graph.add(webact)

    info = TableLineage(name="info")
    info.add_contribution("name", _column("customers", "name"))
    info.add_contribution("age", _column("customers", "age"))
    info.add_contribution("oid", _column("orders", "oid"))
    # SELECT w.* expands to the four webact columns.
    info.add_contribution("wcid", _column("webact", "wcid"))
    info.add_contribution("wdate", _column("webact", "wdate"))
    info.add_contribution("wpage", _column("webact", "wpage"))
    info.add_contribution("wreg", _column("webact", "wreg"))
    # Join predicates reference customers.cid, orders.cid and webact.wcid.
    info.add_reference(_column("customers", "cid"))
    info.add_reference(_column("orders", "cid"))
    info.add_reference(_column("webact", "wcid"))
    graph.add(info)

    return graph


#: Column sets the paper's Step 4 derives for the impact analysis of
#: ``web.page``: ``webinfo.wpage`` is directly contributed to, and every
#: column of ``webact`` and ``info`` is impacted through the set operation
#: and the join.
IMPACT_OF_WEB_PAGE = {
    "webinfo.wpage",
    "webact.wcid",
    "webact.wdate",
    "webact.wpage",
    "webact.wreg",
    "info.name",
    "info.age",
    "info.oid",
    "info.wcid",
    "info.wdate",
    "info.wpage",
    "info.wreg",
}

#: The subset of the impact set that is *contributed to* (directly or
#: transitively through contribution edges only) — what the simulated LLM
#: assistant is able to find (Section IV).
CONTRIBUTED_IMPACT_OF_WEB_PAGE = {
    "webinfo.wpage",
    "webact.wpage",
    "info.wpage",
}
