"""An online-retail warehouse with a multi-layer view pipeline.

This dataset extends the paper's motivating scenario (Section I: "An online
shop uses a data warehouse to store and analyze its customer and transaction
data") into a realistic analytics stack:

* 8 base tables (customers, addresses, products, categories, orders,
  order_items, payments, web_events);
* a staging layer of cleaned views;
* a mart layer of aggregated / joined views using CTEs, window functions,
  set operations and ``SELECT *`` — the SQL features Section III calls out.

It is used by the pipeline-stage benchmark (FIG3), the database-connection
benchmark (DBCONN), several integration tests, and the ``retail_pipeline``
example script.
"""

from ..catalog import Catalog

BASE_TABLE_DDL = """
CREATE TABLE customers (
  cid integer PRIMARY KEY,
  name text NOT NULL,
  email text,
  age integer,
  created_at timestamp,
  country text
);

CREATE TABLE addresses (
  aid integer PRIMARY KEY,
  cid integer,
  street text,
  city text,
  postal_code text,
  country text
);

CREATE TABLE categories (
  catid integer PRIMARY KEY,
  cat_name text,
  parent_catid integer
);

CREATE TABLE products (
  pid integer PRIMARY KEY,
  catid integer,
  product_name text,
  price numeric,
  cost numeric,
  active boolean
);

CREATE TABLE orders (
  oid integer PRIMARY KEY,
  cid integer,
  odate timestamp,
  status text,
  shipping_aid integer
);

CREATE TABLE order_items (
  oid integer,
  pid integer,
  quantity integer,
  unit_price numeric,
  discount numeric
);

CREATE TABLE payments (
  payid integer PRIMARY KEY,
  oid integer,
  amount numeric,
  method text,
  paid_at timestamp
);

CREATE TABLE web_events (
  event_id integer PRIMARY KEY,
  cid integer,
  event_time timestamp,
  page text,
  referrer text,
  session_id text
);
"""

#: Staging layer: light cleaning / renaming views over the base tables.
STAGING_VIEWS = """
CREATE VIEW stg_customers AS
SELECT c.cid, c.name, lower(c.email) AS email, c.age, c.country, c.created_at
FROM customers c
WHERE c.email IS NOT NULL;

CREATE VIEW stg_orders AS
SELECT o.oid, o.cid, o.odate, o.status, o.shipping_aid
FROM orders o
WHERE o.status <> 'cancelled';

CREATE VIEW stg_order_items AS
SELECT i.oid, i.pid, i.quantity, i.unit_price, i.discount,
       i.quantity * (i.unit_price - i.discount) AS line_total
FROM order_items i;

CREATE VIEW stg_web_events AS
SELECT w.event_id, w.cid, w.event_time, w.page, w.session_id
FROM web_events w
WHERE w.page IS NOT NULL;

CREATE VIEW stg_products AS
SELECT p.pid, p.catid, p.product_name, p.price, p.cost, c.cat_name
FROM products p LEFT JOIN categories c ON p.catid = c.catid
WHERE p.active;
"""

#: Mart layer: aggregation, CTEs, window functions, set operations, stars.
MART_VIEWS = """
CREATE VIEW order_revenue AS
WITH item_totals AS (
  SELECT i.oid, sum(i.line_total) AS revenue, count(*) AS item_count
  FROM stg_order_items i
  GROUP BY i.oid
)
SELECT o.oid, o.cid, o.odate, t.revenue, t.item_count, p.amount AS paid_amount
FROM stg_orders o
JOIN item_totals t ON o.oid = t.oid
LEFT JOIN payments p ON o.oid = p.oid;

CREATE VIEW customer_orders AS
SELECT c.cid, c.name, c.country, r.oid, r.odate, r.revenue,
       row_number() OVER (PARTITION BY c.cid ORDER BY r.odate DESC) AS order_rank
FROM stg_customers c JOIN order_revenue r ON c.cid = r.cid;

CREATE VIEW customer_ltv AS
SELECT co.cid, co.name, co.country,
       sum(co.revenue) AS lifetime_value,
       count(co.oid) AS order_count,
       max(co.odate) AS last_order_at
FROM customer_orders co
GROUP BY co.cid, co.name, co.country;

CREATE VIEW active_audience AS
SELECT w.cid FROM stg_web_events w WHERE w.event_time > CURRENT_DATE - INTERVAL '30 days'
UNION
SELECT o.cid FROM stg_orders o WHERE o.odate > CURRENT_DATE - INTERVAL '30 days';

CREATE VIEW churn_candidates AS
SELECT l.*
FROM customer_ltv l
WHERE l.cid NOT IN (SELECT a.cid FROM active_audience a);

CREATE VIEW product_performance AS
WITH sales AS (
  SELECT i.pid, sum(i.line_total) AS revenue, sum(i.quantity) AS units
  FROM stg_order_items i
  JOIN stg_orders o ON i.oid = o.oid
  GROUP BY i.pid
)
SELECT p.pid, p.product_name, p.cat_name, s.revenue, s.units,
       s.revenue - p.cost * s.units AS margin
FROM stg_products p JOIN sales s ON p.pid = s.pid;

CREATE VIEW country_daily_revenue AS
SELECT c.country, r.odate, sum(r.revenue) AS revenue
FROM order_revenue r JOIN stg_customers c ON r.cid = c.cid
GROUP BY c.country, r.odate;

CREATE VIEW top_pages AS
SELECT w.page, count(*) AS visits, count(DISTINCT w.cid) AS visitors
FROM stg_web_events w
GROUP BY w.page
HAVING count(*) > 10
ORDER BY visits DESC;
"""

#: The full pipeline script (base DDL + staging + marts) in one log.
FULL_SCRIPT = BASE_TABLE_DDL + STAGING_VIEWS + MART_VIEWS

#: Only the view definitions (for runs that take the catalog separately).
VIEW_SCRIPT = STAGING_VIEWS + MART_VIEWS

#: View names by layer, for assertions and reporting.
STAGING_VIEW_NAMES = [
    "stg_customers",
    "stg_orders",
    "stg_order_items",
    "stg_web_events",
    "stg_products",
]
MART_VIEW_NAMES = [
    "order_revenue",
    "customer_orders",
    "customer_ltv",
    "active_audience",
    "churn_candidates",
    "product_performance",
    "country_daily_revenue",
    "top_pages",
]
ALL_VIEW_NAMES = STAGING_VIEW_NAMES + MART_VIEW_NAMES


def base_table_catalog():
    """The base-table schemas as a :class:`repro.catalog.Catalog`."""
    from ..catalog.introspect import catalog_from_sql

    return catalog_from_sql(BASE_TABLE_DDL)


def shuffled_view_script(seed=7):
    """The view definitions in a deterministic shuffled order.

    Useful for exercising the auto-inference stack: several views appear
    before the views they depend on.
    """
    import random

    statements = [s.strip() for s in VIEW_SCRIPT.split(";") if s.strip()]
    rng = random.Random(seed)
    rng.shuffle(statements)
    return ";\n".join(statements) + ";"
