"""Datasets and workloads used by the examples, tests, and benchmarks.

* :mod:`repro.datasets.example1` -- the paper's running example (an online
  shop warehouse with the ``info`` / ``webact`` / ``webinfo`` views) plus
  its hand-written ground-truth lineage;
* :mod:`repro.datasets.retail` -- a larger online-retail warehouse with a
  realistic multi-layer view pipeline;
* :mod:`repro.datasets.mimic` -- a synthetic MIMIC-like clinical schema (26
  base tables / ~300 columns) with 70 view definitions (~700 columns),
  matching the scale reported in Section IV;
* :mod:`repro.datasets.workload` -- a seeded random view-pipeline generator
  for scalability experiments and property-based tests.
"""

from . import example1, retail, mimic, workload

__all__ = ["example1", "retail", "mimic", "workload"]
