"""Bridges between the lineage model and :mod:`networkx` (export only).

The hot analytical paths (impact analysis, dependency ordering, the graph
diff) traverse :class:`~repro.core.lineage.LineageGraph`'s cached adjacency
index directly and never construct a networkx graph.  These converters
remain for *export*: handing a standard ``DiGraph`` to plotting libraries,
notebooks, or downstream graph algorithms.  networkx is imported lazily so
the core pipeline works without it.
"""

from ..core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE


def _networkx():
    import networkx as nx

    return nx


def to_column_digraph(graph, include_reference_edges=True):
    """Build a column-level :class:`networkx.DiGraph` from a lineage graph.

    Nodes are ``"table.column"`` strings carrying ``table`` and ``column``
    attributes; edges carry a ``kind`` attribute (``contribute``,
    ``reference`` or ``both``).  Reference edges can be excluded to obtain
    the contribution-only graph (what an LLM-style assistant reasons about,
    per the paper's Section IV comparison).
    """
    digraph = _networkx().DiGraph()
    for relation in graph:
        for column in relation.output_columns:
            digraph.add_node(
                f"{relation.name}.{column}",
                table=relation.name,
                column=column,
                is_base_table=relation.is_base_table,
            )
    for edge in graph.edges():
        if not include_reference_edges and edge.kind == EDGE_REFERENCE:
            continue
        digraph.add_node(
            str(edge.source), table=edge.source.table, column=edge.source.column
        )
        digraph.add_node(
            str(edge.target), table=edge.target.table, column=edge.target.column
        )
        digraph.add_edge(str(edge.source), str(edge.target), kind=edge.kind)
    return digraph


def to_table_digraph(graph):
    """Build the table-level :class:`networkx.DiGraph` (data flows left to right)."""
    digraph = _networkx().DiGraph()
    for relation in graph:
        digraph.add_node(relation.name, is_base_table=relation.is_base_table)
    for source, target in graph.table_edges():
        digraph.add_edge(source, target)
    return digraph


def edge_kind_counts(graph):
    """Count edges by kind — used by tests and the metrics module."""
    counts = {EDGE_CONTRIBUTE: 0, EDGE_REFERENCE: 0, EDGE_BOTH: 0}
    for edge in graph.edges():
        counts[edge.kind] += 1
    return counts
