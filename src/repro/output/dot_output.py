"""Graphviz DOT export of lineage graphs.

Each relation becomes a record-shaped node with one port per column, so
column-level edges render as port-to-port arrows — the same left-to-right
layout the paper's UI uses (tables on the right depend on tables on the
left).  Contribution edges are solid, reference edges dashed, and edges that
are both are drawn solid in a distinct colour.
"""

from ..core.lineage import EDGE_BOTH, EDGE_REFERENCE

_EDGE_STYLE = {
    "contribute": 'color="#1f77b4"',
    EDGE_REFERENCE: 'color="#7f7f7f", style=dashed',
    EDGE_BOTH: 'color="#ff7f0e"',
}


def _escape(text):
    return str(text).replace('"', '\\"').replace("|", "\\|").replace("{", "\\{").replace("}", "\\}")


def graph_to_dot(graph, name="lineage", rankdir="LR"):
    """Render the lineage graph as a Graphviz DOT document string."""
    lines = [
        f"digraph {name} {{",
        f"  rankdir={rankdir};",
        "  node [shape=record, fontname=Helvetica, fontsize=10];",
        "  edge [fontname=Helvetica, fontsize=8];",
    ]
    for relation in sorted(graph, key=lambda entry: entry.name):
        color = "#f2f2f2" if relation.is_base_table else "#e8f0fe"
        fields = [f"<__title> {_escape(relation.name)}"]
        for column in relation.output_columns:
            fields.append(f"<{_escape(column)}> {_escape(column)}")
        label = " | ".join(fields)
        lines.append(
            f'  "{_escape(relation.name)}" [label="{label}", style=filled, fillcolor="{color}"];'
        )
    # sorted so identical graphs render byte-identically regardless of the
    # relation insertion order (cold vs warm-spliced runs differ there)
    for edge in sorted(graph.edges()):
        style = _EDGE_STYLE.get(edge.kind, _EDGE_STYLE["contribute"])
        lines.append(
            f'  "{_escape(edge.source.table)}":"{_escape(edge.source.column)}" -> '
            f'"{_escape(edge.target.table)}":"{_escape(edge.target.column)}" [{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
