"""Terminal-friendly rendering of a lineage graph.

Used by the example scripts and the benchmark harnesses to print the same
information the interactive UI shows: one block per relation listing its
columns, the upstream tables, and the per-column lineage.
"""


def graph_to_text(graph):
    """Render the whole graph as readable plain text."""
    blocks = []
    for relation in sorted(graph, key=lambda entry: (entry.is_base_table, entry.name)):
        blocks.append(relation_to_text(relation))
    return "\n\n".join(blocks)


def relation_to_text(relation):
    """Render one relation (view or base table) as a text block."""
    kind = "base table" if relation.is_base_table else "view"
    lines = [f"{relation.name} ({kind})"]
    if relation.source_tables:
        lines.append("  reads: " + ", ".join(sorted(relation.source_tables)))
    for column in relation.output_columns:
        sources = relation.contributions.get(column, set())
        if sources:
            rendered = ", ".join(sorted(str(source) for source in sources))
            lines.append(f"  {column} <- {rendered}")
        else:
            lines.append(f"  {column}")
    referenced_only = relation.referenced_only_columns
    if referenced_only:
        lines.append(
            "  references: " + ", ".join(sorted(str(source) for source in referenced_only))
        )
    return "\n".join(lines)


def edges_to_text(graph, kinds=None):
    """Render column edges as ``source -> target [kind]`` lines."""
    lines = []
    # sorted: identical graphs must render identically whatever the
    # relation insertion order (cold vs warm-spliced runs differ there)
    for edge in sorted(graph.edges()):
        if kinds is not None and edge.kind not in kinds:
            continue
        lines.append(f"{edge.source} -> {edge.target} [{edge.kind}]")
    return "\n".join(lines)
