"""JSON serialisation of lineage graphs.

The document layout follows the library's public contract:

.. code-block:: json

    {
      "relations": { "<name>": { "columns": [...], "column_lineage": {...},
                                  "referenced_columns": [...], "tables": [...] } },
      "table_edges": [["web", "webinfo"], ...],
      "column_edges": [{"source": "web.page", "target": "webinfo.wpage",
                         "kind": "contribute"}, ...],
      "stats": { ... }
    }
"""

import json

from ..core.lineage import LineageGraph


def graph_to_json(graph, stats=None, indent=2):
    """Serialise ``graph`` (a :class:`LineageGraph`) to a JSON string."""
    payload = graph.to_dict()
    if stats is not None:
        payload["stats"] = stats
    return json.dumps(payload, indent=indent, sort_keys=False)


def graph_from_json(text):
    """Rebuild a :class:`LineageGraph` from :func:`graph_to_json` output."""
    payload = json.loads(text)
    return LineageGraph.from_dict(payload)
