"""Markdown rendering of lineage graphs — for PRs, wikis and docs.

One section per relation (views first, then base tables), each with its
upstream tables and a ``column -> sources`` table, followed by an optional
summary-statistics table.  The output is plain GitHub-flavoured Markdown
with no external assets.
"""


def graph_to_markdown(graph, stats=None, title="Lineage"):
    """Render ``graph`` as a Markdown document string."""
    lines = [f"# {title}", ""]
    for relation in sorted(graph, key=lambda entry: (entry.is_base_table, entry.name)):
        lines.extend(_relation_section(relation))
    if stats:
        lines.append("## Summary")
        lines.append("")
        lines.append("| statistic | value |")
        lines.append("| --- | --- |")
        for key, value in sorted(stats.items()):
            lines.append(f"| {_escape(key)} | {_escape(value)} |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _relation_section(relation):
    kind = "base table" if relation.is_base_table else "view"
    lines = [f"## `{relation.name}` ({kind})", ""]
    if relation.source_tables:
        reads = ", ".join(f"`{name}`" for name in sorted(relation.source_tables))
        lines.append(f"Reads: {reads}")
        lines.append("")
    if relation.output_columns:
        lines.append("| column | sources |")
        lines.append("| --- | --- |")
        for column in relation.output_columns:
            sources = relation.contributions.get(column, set())
            rendered = ", ".join(
                f"`{source}`" for source in sorted(str(s) for s in sources)
            )
            lines.append(f"| `{_escape(column)}` | {rendered} |")
        lines.append("")
    referenced_only = relation.referenced_only_columns
    if referenced_only:
        rendered = ", ".join(
            f"`{source}`" for source in sorted(str(s) for s in referenced_only)
        )
        lines.append(f"References (filters/joins): {rendered}")
        lines.append("")
    return lines


def _escape(value):
    return str(value).replace("|", "\\|")
