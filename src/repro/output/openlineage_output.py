"""OpenLineage-compatible JSON export of lineage graphs.

Emits one OpenLineage ``RunEvent`` per view (eventType ``COMPLETE``),
carrying the standard ``columnLineage`` dataset facet on each output —
the interchange shape Marquez, DataHub and the InfoTracker exemplar
consume.  The document is a JSON array of events sorted by job name.

Determinism: OpenLineage events nominally carry wall-clock times and
random run ids, but every renderer in this repository must be
byte-deterministic (the differential harness and the HTTP layer rely on
it).  ``eventTime`` is therefore a fixed sentinel and ``runId`` a
UUID-shaped digest of the view's canonical SQL, so re-rendering the same
graph — on any machine, at any time — produces the same bytes while
distinct view definitions still get distinct run ids.
"""

import hashlib
import json

#: fixed sentinel timestamp (see module docstring)
EVENT_TIME = "1970-01-01T00:00:00.000Z"

PRODUCER = "https://github.com/lineagex/repro"

SCHEMA_URL = "https://openlineage.io/spec/1-0-5/OpenLineage.json#/definitions/RunEvent"


def _run_id(name, sql):
    """A UUID-shaped, content-derived run id (deterministic)."""
    digest = hashlib.sha256(f"{name}\n{sql}".encode("utf-8")).hexdigest()
    return "-".join(
        (digest[0:8], digest[8:12], digest[12:16], digest[16:20], digest[20:32])
    )


def _dataset(namespace, name):
    return {"namespace": namespace, "name": name}


def _column_lineage_facet(entry, namespace):
    fields = {}
    for column in entry.output_columns:
        sources = entry.contributions.get(column, set())
        input_fields = [
            {
                "namespace": namespace,
                "name": source.table,
                "field": source.column,
                "transformationType": "IDENTITY",
            }
            for source in sorted(sources)
        ]
        for source in sorted(entry.referenced):
            if source not in sources:
                input_fields.append(
                    {
                        "namespace": namespace,
                        "name": source.table,
                        "field": source.column,
                        "transformationType": "INDIRECT",
                    }
                )
        fields[column] = {"inputFields": input_fields}
    return {
        "_producer": PRODUCER,
        "_schemaURL": (
            "https://openlineage.io/spec/facets/1-0-1/"
            "ColumnLineageDatasetFacet.json"
        ),
        "fields": fields,
    }


def graph_to_openlineage(graph, namespace="repro", indent=2):
    """Render the lineage graph as a JSON array of OpenLineage run events."""
    events = []
    for entry in sorted(graph.views, key=lambda view: view.name):
        run_id = _run_id(entry.name, entry.sql)
        inputs = [
            _dataset(namespace, table) for table in sorted(entry.source_tables)
        ]
        output = _dataset(namespace, entry.name)
        output["facets"] = {
            "columnLineage": _column_lineage_facet(entry, namespace)
        }
        events.append(
            {
                "eventType": "COMPLETE",
                "eventTime": EVENT_TIME,
                "producer": PRODUCER,
                "schemaURL": SCHEMA_URL,
                "run": {"runId": run_id},
                "job": {"namespace": namespace, "name": entry.name},
                "inputs": inputs,
                "outputs": [output],
            }
        )
    return json.dumps(events, indent=indent, sort_keys=True) + "\n"
