"""Mermaid flowchart export of lineage graphs.

Table-level view: each relation becomes a flowchart node (base tables
drawn as cylinders, views as rounded boxes) and each table-level
dependency a ``-->`` arrow — the shape SQLparse-style tools export for
embedding lineage diagrams directly into markdown docs, GitHub READMEs
and wikis.  Output is deterministic: nodes and edges are emitted in
sorted order, so identical graphs render byte-identically regardless of
relation insertion order.
"""


def _node_ids(graph):
    """Stable short ids per relation (mermaid ids cannot hold dots/quotes)."""
    return {name: f"n{i}" for i, name in enumerate(sorted(graph.relations))}


def _escape(text):
    # mermaid labels live inside double quotes; the only character that
    # needs care is the quote itself (mermaid uses #quot; entities)
    return str(text).replace('"', "#quot;")


def graph_to_mermaid(graph, direction="LR", include_columns=False):
    """Render the lineage graph as a mermaid ``flowchart`` document.

    ``include_columns`` appends each relation's column list to its label
    (kept off by default: mermaid renders large graphs best with compact
    nodes).
    """
    ids = _node_ids(graph)
    lines = [f"flowchart {direction}"]
    for name in sorted(graph.relations):
        entry = graph.relations[name]
        label = _escape(name)
        if include_columns and entry.output_columns:
            label += "<br/>" + "<br/>".join(
                _escape(column) for column in entry.output_columns
            )
        if entry.is_base_table:
            lines.append(f'    {ids[name]}[("{label}")]')
        else:
            lines.append(f'    {ids[name]}("{label}")')
    for source, target in sorted(graph.table_edges()):
        if source in ids and target in ids:
            lines.append(f"    {ids[source]} --> {ids[target]}")
    lines.append("    classDef base fill:#f2f2f2,stroke:#999;")
    base_nodes = sorted(
        ids[entry.name] for entry in graph.base_tables if entry.name in ids
    )
    if base_nodes:
        lines.append(f"    class {','.join(base_nodes)} base;")
    return "\n".join(lines) + "\n"
