"""CSV rendering of lineage graphs — the spreadsheet/BI-import shape.

Two layouts:

* ``graph_to_csv(graph)`` — one row per **column edge**
  (``source,target,kind``), the shape lineage audits join against
  warehouse metadata;
* ``graph_to_csv(graph, layout="columns")`` — one row per **column**
  (``relation,relation_kind,column,sources``) for completeness reports.
"""

import csv
import io


def graph_to_csv(graph, layout="edges"):
    """Render ``graph`` as CSV text in the requested ``layout``."""
    if layout == "edges":
        return _edges_csv(graph)
    if layout == "columns":
        return _columns_csv(graph)
    raise ValueError(f"unknown CSV layout {layout!r}; expected 'edges' or 'columns'")


def _writer():
    buffer = io.StringIO()
    return buffer, csv.writer(buffer, lineterminator="\n")


def _edges_csv(graph):
    buffer, writer = _writer()
    writer.writerow(["source", "target", "kind"])
    # sorted, not index order: the adjacency index iterates relations in
    # insertion order, which differs between a cold run and a warm-spliced
    # one — identical graphs must render byte-identical files (the cache-hit
    # golden tests depend on it)
    for edge in sorted(graph.edges()):
        writer.writerow([str(edge.source), str(edge.target), edge.kind])
    return buffer.getvalue()


def _columns_csv(graph):
    buffer, writer = _writer()
    writer.writerow(["relation", "relation_kind", "column", "sources"])
    for relation in sorted(graph, key=lambda entry: (entry.is_base_table, entry.name)):
        kind = "base_table" if relation.is_base_table else "view"
        for column in relation.output_columns:
            sources = relation.contributions.get(column, set())
            rendered = ";".join(sorted(str(source) for source in sources))
            writer.writerow([relation.name, kind, column, rendered])
    return buffer.getvalue()
