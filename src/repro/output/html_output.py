"""Self-contained interactive HTML rendering of a lineage graph.

The generated page reproduces the workflow of Figure 5 without any external
assets or network access:

* a dropdown to locate a table of interest (Step 2),
* an *explore* action that reveals a table's direct upstreams and
  downstreams, data flowing left to right (Step 3),
* hovering a column highlights its downstream columns; contribution edges
  are blue, reference edges grey, and both-kind edges orange (Step 4).

The lineage JSON document is embedded in the page and a small vanilla-JS
renderer lays relations out by topological depth.
"""

import json


def graph_to_html(graph, title="LineageX lineage graph"):
    """Render ``graph`` into a single self-contained HTML document string."""
    payload = json.dumps(graph.to_dict(), indent=None)
    return _TEMPLATE.replace("__TITLE__", title).replace("__LINEAGE_JSON__", payload)


_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 16px; background: #fafafa; }
  h1 { font-size: 18px; }
  #controls { margin-bottom: 12px; }
  #graph { display: flex; align-items: flex-start; gap: 48px; overflow-x: auto; }
  .level { display: flex; flex-direction: column; gap: 24px; }
  .table-card { border: 1px solid #888; border-radius: 6px; background: #fff;
                min-width: 180px; box-shadow: 0 1px 3px rgba(0,0,0,0.15); }
  .table-card.hidden { display: none; }
  .table-card h2 { margin: 0; padding: 6px 10px; font-size: 13px; background: #e8f0fe;
                   border-bottom: 1px solid #bbb; border-radius: 6px 6px 0 0; }
  .table-card.base h2 { background: #f2f2f2; }
  .table-card .explore { float: right; cursor: pointer; font-size: 11px; color: #1a73e8; }
  .column { padding: 3px 10px; font-size: 12px; border-bottom: 1px solid #eee; cursor: pointer; }
  .column:last-child { border-bottom: none; }
  .column.highlight-contribute { background: #d2e3fc; }
  .column.highlight-reference { background: #fce8b2; }
  .column.highlight-both { background: #fad2cf; }
  .column.highlight-origin { background: #c8e6c9; }
  #legend { font-size: 12px; margin-top: 10px; color: #555; }
  svg#edges { position: absolute; top: 0; left: 0; pointer-events: none; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div id="controls">
  Locate table:
  <select id="table-select"><option value="">(choose a table)</option></select>
  <button id="show-all">Show all</button>
  <label><input type="checkbox" id="show-reference" checked> show reference edges</label>
</div>
<div id="graph"></div>
<div id="legend">
  Hover a column to highlight its downstream columns —
  <span style="background:#d2e3fc">contributed</span>,
  <span style="background:#fce8b2">referenced</span>,
  <span style="background:#fad2cf">both</span>.
  Data flows from left to right.
</div>
<script>
const LINEAGE = __LINEAGE_JSON__;

function buildAdjacency(includeReference) {
  const downstream = {};
  for (const edge of LINEAGE.column_edges) {
    if (!includeReference && edge.kind === "reference") continue;
    if (!(edge.source in downstream)) downstream[edge.source] = [];
    downstream[edge.source].push(edge);
  }
  return downstream;
}

function tableDepths() {
  // longest-path layering over table edges so data flows left to right
  const depths = {};
  const incoming = {};
  for (const name of Object.keys(LINEAGE.relations)) { depths[name] = 0; incoming[name] = []; }
  for (const [src, dst] of LINEAGE.table_edges) {
    if (dst in incoming) incoming[dst].push(src);
  }
  let changed = true; let guard = 0;
  while (changed && guard < 1000) {
    changed = false; guard += 1;
    for (const name of Object.keys(depths)) {
      for (const src of incoming[name]) {
        if (src in depths && depths[src] + 1 > depths[name]) { depths[name] = depths[src] + 1; changed = true; }
      }
    }
  }
  return depths;
}

function render() {
  const graphDiv = document.getElementById("graph");
  graphDiv.innerHTML = "";
  const depths = tableDepths();
  const maxDepth = Math.max(0, ...Object.values(depths));
  const levels = [];
  for (let i = 0; i <= maxDepth; i++) levels.push([]);
  for (const [name, rel] of Object.entries(LINEAGE.relations)) levels[depths[name]].push(rel);
  for (const level of levels) {
    const levelDiv = document.createElement("div");
    levelDiv.className = "level";
    for (const rel of level) {
      const card = document.createElement("div");
      card.className = "table-card" + (rel.is_base_table ? " base" : "");
      card.dataset.table = rel.name;
      const header = document.createElement("h2");
      header.textContent = rel.name;
      const explore = document.createElement("span");
      explore.className = "explore";
      explore.textContent = "explore";
      explore.onclick = () => exploreTable(rel.name);
      header.appendChild(explore);
      card.appendChild(header);
      for (const column of rel.columns) {
        const div = document.createElement("div");
        div.className = "column";
        div.dataset.column = rel.name + "." + column;
        div.textContent = column;
        const expr = (rel.column_expressions || {})[column];
        if (expr && expr !== column) div.title = expr;
        div.onmouseenter = () => highlightDownstream(rel.name + "." + column);
        div.onmouseleave = clearHighlights;
        card.appendChild(div);
      }
      levelDiv.appendChild(card);
    }
    graphDiv.appendChild(levelDiv);
  }
}

function exploreTable(name) {
  // reveal direct upstream and downstream tables of `name`, hide the rest
  const related = new Set([name]);
  for (const [src, dst] of LINEAGE.table_edges) {
    if (src === name) related.add(dst);
    if (dst === name) related.add(src);
  }
  for (const card of document.querySelectorAll(".table-card")) {
    card.classList.toggle("hidden", !related.has(card.dataset.table));
  }
}

function highlightDownstream(start) {
  const includeReference = document.getElementById("show-reference").checked;
  const downstream = buildAdjacency(includeReference);
  const kinds = {};
  const queue = [start];
  const seen = new Set([start]);
  while (queue.length) {
    const current = queue.shift();
    for (const edge of downstream[current] || []) {
      const previous = kinds[edge.target];
      const next = edge.kind;
      kinds[edge.target] = previous && previous !== next ? "both" : (previous || next);
      if (!seen.has(edge.target)) { seen.add(edge.target); queue.push(edge.target); }
    }
  }
  const origin = document.querySelector('[data-column="' + CSS.escape(start) + '"]');
  if (origin) origin.classList.add("highlight-origin");
  for (const [column, kind] of Object.entries(kinds)) {
    const el = document.querySelector('[data-column="' + CSS.escape(column) + '"]');
    if (el) el.classList.add("highlight-" + kind);
  }
}

function clearHighlights() {
  for (const el of document.querySelectorAll(".column")) {
    el.classList.remove("highlight-contribute", "highlight-reference", "highlight-both", "highlight-origin");
  }
}

function init() {
  const select = document.getElementById("table-select");
  for (const name of Object.keys(LINEAGE.relations).sort()) {
    const option = document.createElement("option");
    option.value = name; option.textContent = name;
    select.appendChild(option);
  }
  select.onchange = () => { if (select.value) exploreTable(select.value); };
  document.getElementById("show-all").onclick = () => {
    for (const card of document.querySelectorAll(".table-card")) card.classList.remove("hidden");
  };
  render();
}
init();
</script>
</body>
</html>
"""
