"""Serialisation and visualization of lineage graphs.

* :mod:`repro.output.json_output` -- the JSON lineage document (Step 1 of the
  demonstration returns one of these);
* :mod:`repro.output.html_output` -- a self-contained interactive HTML page
  (the lineage graph UI of Figure 5);
* :mod:`repro.output.dot_output` -- Graphviz DOT export;
* :mod:`repro.output.text_output` -- a terminal-friendly rendering;
* :mod:`repro.output.csv_output` -- column-edge / per-column CSV tables;
* :mod:`repro.output.markdown_output` -- a Markdown lineage document;
* :mod:`repro.output.registry` -- the named renderer registry behind
  ``result.render(fmt)`` and the CLI's ``--format`` flag;
* :mod:`repro.output.graph_ops` -- conversion to :mod:`networkx` graphs used
  by the impact analysis and the graph metrics.
"""

from .json_output import graph_to_json, graph_from_json
from .html_output import graph_to_html
from .dot_output import graph_to_dot
from .text_output import graph_to_text
from .csv_output import graph_to_csv
from .markdown_output import graph_to_markdown
from .graph_ops import to_column_digraph, to_table_digraph
from .registry import (
    UnknownFormatError,
    get_renderer,
    register_renderer,
    render,
    renderer_names,
)

__all__ = [
    "graph_to_json",
    "graph_from_json",
    "graph_to_html",
    "graph_to_dot",
    "graph_to_text",
    "graph_to_csv",
    "graph_to_markdown",
    "to_column_digraph",
    "to_table_digraph",
    "render",
    "register_renderer",
    "get_renderer",
    "renderer_names",
    "UnknownFormatError",
]
