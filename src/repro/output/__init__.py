"""Serialisation and visualization of lineage graphs.

* :mod:`repro.output.json_output` -- the JSON lineage document (Step 1 of the
  demonstration returns one of these);
* :mod:`repro.output.html_output` -- a self-contained interactive HTML page
  (the lineage graph UI of Figure 5);
* :mod:`repro.output.dot_output` -- Graphviz DOT export;
* :mod:`repro.output.text_output` -- a terminal-friendly rendering;
* :mod:`repro.output.graph_ops` -- conversion to :mod:`networkx` graphs used
  by the impact analysis and the graph metrics.
"""

from .json_output import graph_to_json, graph_from_json
from .html_output import graph_to_html
from .dot_output import graph_to_dot
from .text_output import graph_to_text
from .graph_ops import to_column_digraph, to_table_digraph

__all__ = [
    "graph_to_json",
    "graph_from_json",
    "graph_to_html",
    "graph_to_dot",
    "graph_to_text",
    "to_column_digraph",
    "to_table_digraph",
]
