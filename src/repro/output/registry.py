"""The named renderer registry — one lookup table for every output shape.

Every way a lineage graph can be turned into text lives here under a
format name: ``result.render("csv")``, the CLI's ``--format`` flag and the
``repro render`` subcommand all resolve through the same table, so adding
a renderer in one place makes it available everywhere.

A renderer is ``callable(graph, stats=None, **options) -> str``; register
one with::

    from repro.output.registry import register_renderer

    @register_renderer("mermaid")
    def render_mermaid(graph, stats=None, **options):
        ...

:func:`render` accepts either a bare :class:`~repro.core.lineage.LineageGraph`
or any result object exposing ``.graph`` (and optionally ``.stats()``),
which is how :meth:`LineageXResult.render` hooks in.
"""

_RENDERERS = {}
_CONTENT_TYPES = {}

#: what :func:`content_type_of` reports for formats registered without an
#: explicit content type (every renderer produces text).
DEFAULT_CONTENT_TYPE = "text/plain; charset=utf-8"


class UnknownFormatError(LookupError):
    """Requested format has no registered renderer."""

    def __init__(self, name):
        self.name = name
        super().__init__(
            f"unknown output format {name!r}; registered formats: "
            + ", ".join(renderer_names())
        )


def register_renderer(name, renderer=None, *, content_type=None):
    """Register ``renderer`` under ``name`` (usable as a decorator).

    Re-registering a name replaces the previous renderer, which lets
    applications override a built-in format.  ``content_type`` declares
    the MIME type HTTP consumers (the serving daemon's ``/render/{fmt}``
    endpoint) should label the rendered document with; it defaults to
    plain text.
    """
    def _register(function):
        _RENDERERS[str(name)] = function
        if content_type is not None:
            _CONTENT_TYPES[str(name)] = str(content_type)
        return function

    if renderer is not None:
        return _register(renderer)
    return _register


def content_type_of(name):
    """The MIME type of a registered format (plain text when undeclared).

    Raises :class:`UnknownFormatError` for unregistered names, mirroring
    :func:`get_renderer`.
    """
    if str(name) not in _RENDERERS:
        raise UnknownFormatError(name)
    return _CONTENT_TYPES.get(str(name), DEFAULT_CONTENT_TYPE)


def get_renderer(name):
    """The renderer registered under ``name`` (:class:`UnknownFormatError` if absent)."""
    try:
        return _RENDERERS[str(name)]
    except KeyError:
        raise UnknownFormatError(name) from None


def renderer_names():
    """Registered format names, sorted."""
    return sorted(_RENDERERS)


def render(target, fmt, **options):
    """Render ``target`` (a result object or a graph) in format ``fmt``."""
    graph = getattr(target, "graph", target)
    stats = options.pop("stats", None)
    if stats is None:
        stats_hook = getattr(target, "stats", None)
        stats = stats_hook() if callable(stats_hook) else None
    return get_renderer(fmt)(graph, stats=stats, **options)


def render_bytes(target, fmt, **options):
    """Render ``target`` as ``(body_bytes, content_type)`` for HTTP serving.

    The daemon's ``/render/{fmt}`` endpoint resolves through this: the
    rendered text is UTF-8 encoded and paired with the format's declared
    MIME type, so a renderer registered with a ``content_type`` is served
    correctly labelled with no HTTP-specific code of its own.
    """
    content_type = content_type_of(fmt)
    return render(target, fmt, **options).encode("utf-8"), content_type


# ----------------------------------------------------------------------
# Built-in renderers
# ----------------------------------------------------------------------
@register_renderer("json", content_type="application/json; charset=utf-8")
def _render_json(graph, stats=None, indent=2):
    from .json_output import graph_to_json

    return graph_to_json(graph, stats=stats, indent=indent)


@register_renderer("html", content_type="text/html; charset=utf-8")
def _render_html(graph, stats=None, title="LineageX lineage graph"):
    from .html_output import graph_to_html

    return graph_to_html(graph, title=title)


@register_renderer("dot", content_type="text/vnd.graphviz; charset=utf-8")
def _render_dot(graph, stats=None, name="lineage", rankdir="LR"):
    from .dot_output import graph_to_dot

    return graph_to_dot(graph, name=name, rankdir=rankdir)


@register_renderer("text")
def _render_text(graph, stats=None):
    from .text_output import graph_to_text

    return graph_to_text(graph)


@register_renderer("csv", content_type="text/csv; charset=utf-8")
def _render_csv(graph, stats=None, layout="edges"):
    from .csv_output import graph_to_csv

    return graph_to_csv(graph, layout=layout)


@register_renderer("markdown", content_type="text/markdown; charset=utf-8")
def _render_markdown(graph, stats=None, title="Lineage"):
    from .markdown_output import graph_to_markdown

    return graph_to_markdown(graph, stats=stats, title=title)


@register_renderer("mermaid", content_type="text/vnd.mermaid; charset=utf-8")
def _render_mermaid(graph, stats=None, direction="LR", include_columns=False):
    from .mermaid_output import graph_to_mermaid

    return graph_to_mermaid(
        graph, direction=direction, include_columns=include_columns
    )


@register_renderer("openlineage", content_type="application/json; charset=utf-8")
def _render_openlineage(graph, stats=None, namespace="repro", indent=2):
    from .openlineage_output import graph_to_openlineage

    return graph_to_openlineage(graph, namespace=namespace, indent=indent)


@register_renderer("stats")
def _render_stats(graph, stats=None):
    if stats is None:
        stats = graph.stats()
    return "\n".join(f"{key}: {value}" for key, value in sorted(stats.items()))
