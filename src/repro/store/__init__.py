"""Persistent, content-addressed storage for extraction results.

The store is the warm-start layer of the stack: extraction results keyed by
``(content_hash, dialect, extractor_version, schema_fingerprint)`` survive
the process in an SQLite file, so a fresh :class:`~repro.session.LineageSession`
over an unchanged corpus splices every entry from disk instead of
re-extracting it — the on-disk analogue of what the incremental layer does
in memory with ``prev_result``.

>>> from repro import LineageSession
>>> LineageSession("models/", cache_dir=".lineage-cache").extract()  # cold
>>> LineageSession("models/", cache_dir=".lineage-cache").extract()  # warm

See :mod:`repro.store.keys` for the cache-key anatomy and invalidation
rules, and :class:`repro.store.store.LineageStore` for the backend.
"""

from .keys import make_key, schema_fingerprint, shard_index
from .store import SHARD_MANIFEST, STORE_FILENAME, LineageStore

__all__ = [
    "LineageStore",
    "SHARD_MANIFEST",
    "STORE_FILENAME",
    "make_key",
    "schema_fingerprint",
    "shard_index",
]
