"""The persistent, content-addressed lineage store.

:class:`LineageStore` maps a cache key (see :mod:`repro.store.keys`) to a
serialized :class:`~repro.core.lineage.TableLineage` record behind an
SQLite backend with an in-memory LRU front.  It is what makes extraction
results survive the process: a fresh session over an unchanged corpus
splices every entry straight from disk instead of re-parsing and
re-extracting it.

Design points:

* **cache, not database** — every failure mode (missing file, corrupted
  database, malformed JSON, record-version skew) degrades to a cold miss
  or a dropped write, never an exception on the extraction path.  The
  degradation is no longer *silent*: shard I/O failures are retried with
  jittered backoff, counted per shard (``error_misses`` /
  ``dropped_writes`` in :meth:`LineageStore.stats`), logged at WARNING on
  first occurrence, and a shard failing repeatedly trips a per-shard
  circuit breaker — further I/O on it short-circuits to the degraded
  path for a cooldown instead of paying timeouts, and
  :meth:`LineageStore.health` reports the store ``degraded`` with
  per-shard breaker state (the serving daemon's ``/health`` surfaces
  this);
* **LRU front** — hot records are served from memory as decoded record
  dicts; each hit still constructs a fresh ``TableLineage``, so callers
  can mutate what they are given without poisoning the cache;
* **deferred commits** — ``put()`` batches; the runner calls ``flush()``
  once per run (``close()`` flushes too), so a 400-view cold run does not
  pay 400 fsyncs;
* **sharding** — the backend may be split into N SQLite files routed by
  content-hash prefix (:func:`repro.store.keys.shard_index`).  Each shard
  has its own connection and lock, so the warm-start prefetch
  (``prime()`` / ``get_sources()``) fans its batched reads out across
  shards in parallel instead of serializing on one connection, and bulk
  writes (``put_many()``) commit one transaction per shard.  The
  *cache-key format is unchanged*: the same record lands under the same
  key whatever the shard count, only the file it lives in differs.

On-disk layout:

* single-file (the default, and the only layout that existed before
  sharding): ``<cache_dir>/lineage.sqlite``;
* sharded: ``<cache_dir>/shards.json`` (the manifest recording the shard
  count) plus ``<cache_dir>/lineage-<i>-of-<n>.sqlite`` per shard.

An existing store's layout always wins over the ``shards=`` argument —
opening a legacy single-file directory never silently abandons its
records; use :meth:`LineageStore.migrate` (CLI: ``cache migrate``) to
re-shard in place.
"""

import json
import logging
import os
import random
import sqlite3
import threading
import time

from ..core.errors import LineageRecordError
from ..core.lineage import TableLineage
from ..testing import faults
from .keys import shard_index

_LOGGER = logging.getLogger("repro.store")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS lineage_records (
    cache_key          TEXT PRIMARY KEY,
    content_hash       TEXT NOT NULL,
    dialect            TEXT NOT NULL,
    extractor_version  TEXT NOT NULL,
    schema_fingerprint TEXT NOT NULL,
    record             TEXT NOT NULL,
    created_at         REAL NOT NULL,
    last_used_at       REAL NOT NULL,
    use_count          INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_lineage_last_used
    ON lineage_records (last_used_at);
CREATE INDEX IF NOT EXISTS idx_lineage_content_hash
    ON lineage_records (content_hash);
CREATE TABLE IF NOT EXISTS source_records (
    source_key   TEXT PRIMARY KEY,
    record       TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_source_last_used
    ON source_records (last_used_at);
CREATE TABLE IF NOT EXISTS superseded_marks (
    content_hash TEXT PRIMARY KEY,
    marked_at    REAL NOT NULL
);
"""

#: filename of the SQLite database inside a single-file cache directory.
STORE_FILENAME = "lineage.sqlite"

#: filename of the shard-count manifest inside a sharded cache directory.
SHARD_MANIFEST = "shards.json"

#: hard ceiling on the shard count (256 = one hex-byte prefix of fanout;
#: more shards than that only multiplies file handles, never parallelism).
MAX_SHARDS = 256

#: concurrent readers/writers on one shard file wait this long for a lock
#: before giving up (and degrading to a cold miss / dropped write) instead
#: of failing instantly with "database is locked".
BUSY_TIMEOUT_MS = 10_000

#: batch width of ``IN (...)`` reads (SQLite's default variable limit is
#: 999; 400 leaves comfortable headroom).
_CHUNK = 400

#: shard I/O retries after the first failure (transient lock contention /
#: injected faults get a second and third chance before degrading).
RETRY_ATTEMPTS = 2

#: jittered backoff window per retry, milliseconds (scaled by attempt).
RETRY_BACKOFF_MS = (5.0, 25.0)

#: consecutive shard failures (after retries) that trip its breaker.
BREAKER_THRESHOLD = 5

#: seconds a tripped breaker short-circuits I/O before allowing a probe.
BREAKER_COOLDOWN_S = 30.0

#: backoff jitter source — timing only, never outcome, so it is fine for
#: this to be nondeterministic even under a seeded fault plan.
_BACKOFF_RNG = random.Random()


def _shard_filename(index, count):
    return f"lineage-{index:03d}-of-{count:03d}.sqlite"


class _LRU:
    """A tiny size-capped LRU over decoded record dicts."""

    def __init__(self, capacity):
        self.capacity = max(int(capacity), 0)
        self._entries = {}

    def get(self, key):
        value = self._entries.pop(key, None)
        if value is not None:
            self._entries[key] = value  # re-insert = most recent
        return value

    def put(self, key, value):
        if self.capacity <= 0:
            return
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)


class _Shard:
    """One SQLite file of the store: connection, lock, dirty flag, and
    the fault-accounting state its circuit breaker runs on."""

    __slots__ = ("path", "lock", "connection", "broken", "dirty",
                 "failures", "open_until", "error_misses", "dropped_writes",
                 "trips", "warned")

    def __init__(self, path):
        self.path = path
        self.lock = threading.Lock()
        self.connection = None
        self.broken = False
        self.dirty = False
        self.failures = 0          # consecutive failed operations
        self.open_until = 0.0      # monotonic deadline while breaker is open
        self.error_misses = 0      # reads degraded to cold misses by errors
        self.dropped_writes = 0    # writes dropped by errors / open breaker
        self.trips = 0             # closed -> open breaker transitions
        self.warned = False        # first-failure WARNING emitted

    def connect(self):
        """The live connection, opened on first use (``None`` = broken).

        Callers must hold ``self.lock``.  Every connection gets WAL journal
        mode (readers never block the writer) and a busy timeout, so
        concurrent access from several processes — the process executor,
        parallel sessions over one cache directory — waits for locks
        instead of erroring out.
        """
        if self.connection is not None or self.broken:
            return self.connection
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            connection = sqlite3.connect(self.path, check_same_thread=False)
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            connection.executescript(_SCHEMA)
            connection.commit()
            self.connection = connection
        except (sqlite3.Error, OSError):
            # an unusable backing file turns this shard into a pass-through
            self.broken = True
            self.connection = None
        return self.connection

    def close(self):
        with self.lock:
            if self.connection is not None:
                try:
                    self.connection.close()
                except sqlite3.Error:
                    pass
                self.connection = None
                self.dirty = False


class LineageStore:
    """Persistent ``cache_key -> TableLineage`` mapping (SQLite + LRU).

    Parameters
    ----------
    cache_dir:
        Directory holding the store (created if missing).
    lru_size:
        Capacity of the in-memory front (record count); ``0`` disables it.
    shards:
        Number of SQLite shard files for a *new* store (``None`` or ``1``
        = the classic single ``lineage.sqlite``).  An existing store's
        on-disk layout always takes precedence — re-shard with
        :meth:`migrate`.
    """

    def __init__(self, cache_dir, lru_size=2048, shards=None):
        self.cache_dir = os.fspath(cache_dir)
        self._lru = _LRU(lru_size)
        self.num_shards = self._resolve_layout(shards)
        if self.num_shards == 1:
            paths = [os.path.join(self.cache_dir, STORE_FILENAME)]
        else:
            paths = [
                os.path.join(
                    self.cache_dir, _shard_filename(index, self.num_shards)
                )
                for index in range(self.num_shards)
            ]
        self._shards = [_Shard(path) for path in paths]
        #: path of the first shard file — the whole store for the classic
        #: single-file layout (kept as an attribute for observability and
        #: backwards compatibility; see also ``stats()["shard_paths"]``).
        self.path = paths[0]
        self._manifest_written = self.num_shards == 1
        self._closed = False
        # usage tracking is batched: reads only mark key -> shard here and
        # flush() writes last_used_at/use_count in one executemany per shard
        self._meta_lock = threading.Lock()
        self._used_keys = {}
        self._used_source_keys = {}
        # session counters (not persisted)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self.error_misses = 0     # cold misses caused by shard I/O errors
        self.dropped_writes = 0   # writes lost to shard I/O errors

    def _resolve_layout(self, requested):
        """The shard count this directory's store actually uses.

        Precedence: an existing manifest, then an existing legacy
        single-file database, then the ``shards`` argument, then 1.  A
        manifest that cannot be read is ignored (its shard files — if any
        — become unreachable cold data; the store is a cache, so that is a
        miss, not an error).
        """
        try:
            with open(
                os.path.join(self.cache_dir, SHARD_MANIFEST), "r",
                encoding="utf-8",
            ) as handle:
                manifest = json.load(handle)
            count = int(manifest["shards"])
            if 1 <= count <= MAX_SHARDS:
                return count
        except (OSError, ValueError, KeyError, TypeError):
            pass
        try:
            if os.path.exists(os.path.join(self.cache_dir, STORE_FILENAME)):
                return 1
        except OSError:
            pass
        if requested is None:
            return 1
        return max(1, min(int(requested), MAX_SHARDS))

    def _write_manifest(self):
        """Persist the shard count next to the shard files (best-effort)."""
        if self._manifest_written:
            return
        self._manifest_written = True
        try:
            with open(
                os.path.join(self.cache_dir, SHARD_MANIFEST), "w",
                encoding="utf-8",
            ) as handle:
                json.dump({"version": 1, "shards": self.num_shards}, handle)
                handle.write("\n")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Shard routing
    # ------------------------------------------------------------------
    def shard_of(self, content_hash):
        """The shard index a record with this content hash lives in."""
        if self.num_shards == 1:
            return 0
        return shard_index(content_hash, self.num_shards)

    def _shard(self, content_hash):
        return self._shards[self.shard_of(content_hash)]

    def _connect_shard(self, shard):
        if self._closed:
            return None
        connection = shard.connect()
        if connection is not None:
            self._write_manifest()
        return connection

    # Backwards-compatible single-connection handle (tests and tooling
    # grab it to trace queries or poke at rows; meaningful for the
    # single-file layout, shard 0 otherwise).
    def _connect(self):
        shard = self._shards[0]
        with shard.lock:
            return self._connect_shard(shard)

    # ------------------------------------------------------------------
    # Fault-hardened shard I/O
    # ------------------------------------------------------------------
    def _shard_io(self, shard, index, kind, operation):
        """Run ``operation()`` against ``shard`` (lock held by the caller)
        with fault injection, bounded jittered retry, and circuit-breaker
        accounting.

        ``kind`` is ``"read"`` or ``"write"`` — it picks which degraded
        counter a failure lands in.  Returns ``(ok, result)``; ``ok``
        False means the caller must degrade (cold miss / dropped write),
        and the failure has already been counted and, if it crossed the
        threshold, has tripped the shard's breaker.  While the breaker is
        open the operation is not attempted at all: a shard that is
        timing out repeatedly must not make every request pay its busy
        timeout.  After the cooldown one probe is allowed through; its
        success closes the breaker, its failure re-arms the cooldown.

        Every failed attempt rolls the connection back (a failed commit
        can leave the write transaction open, pinning the shard's write
        lock and staging half-applied statements for whatever commits
        next) and the backoff sleep happens with ``shard.lock``
        *released* — during a fault storm the other readers/writers of
        the shard must not queue behind a sleeping thread.  The lock is
        re-held when ``operation`` runs and when this method returns.
        """
        now = time.monotonic()
        if shard.open_until > now:
            self._count_degraded(shard, kind)
            return False, None
        error = None
        for attempt in range(1 + RETRY_ATTEMPTS):
            if attempt:
                low, high = RETRY_BACKOFF_MS
                delay = (
                    (low + _BACKOFF_RNG.random() * (high - low))
                    * attempt / 1000.0
                )
                shard.lock.release()
                try:
                    time.sleep(delay)
                finally:
                    shard.lock.acquire()
            try:
                faults.fire(f"store.{kind}", shard=index)
                result = operation()
            except (sqlite3.Error, OSError, faults.InjectedFault) as caught:
                error = caught
                self._rollback_quietly(shard)
                continue
            shard.failures = 0
            if shard.open_until:
                shard.open_until = 0.0
                _LOGGER.warning(
                    "lineage store shard %d (%s) recovered; circuit closed",
                    index, shard.path,
                )
            return True, result
        self._count_degraded(shard, kind)
        was_closed = shard.open_until == 0.0
        shard.failures += 1
        if not shard.warned:
            shard.warned = True
            _LOGGER.warning(
                "lineage store shard %d (%s) %s failed (degrading to %s): %s",
                index, shard.path, kind,
                "cold miss" if kind == "read" else "dropped write", error,
            )
        if shard.failures >= BREAKER_THRESHOLD:
            shard.open_until = time.monotonic() + BREAKER_COOLDOWN_S
            if was_closed:
                shard.trips += 1
                _LOGGER.warning(
                    "lineage store shard %d (%s) circuit breaker OPEN for %.0fs "
                    "after %d consecutive failures",
                    index, shard.path, BREAKER_COOLDOWN_S, shard.failures,
                )
        return False, None

    @staticmethod
    def _rollback_quietly(shard):
        """Abandon any transaction a failed operation left open (the
        connection may already be gone — every error is suppressed)."""
        connection = shard.connection
        if connection is None:
            return
        try:
            connection.rollback()
        except (sqlite3.Error, OSError):
            pass

    def _count_degraded(self, shard, kind):
        if kind == "write":
            shard.dropped_writes += 1
            self.dropped_writes += 1
        else:
            shard.error_misses += 1
            self.error_misses += 1

    def health(self):
        """Cheap (no I/O, no locks) per-shard breaker state for ``/health``.

        ``status`` is ``degraded`` while any breaker is open — extraction
        still works (cold path), but the cache is partially blind.
        """
        now = time.monotonic()
        shards = []
        degraded = 0
        for index, shard in enumerate(self._shards):
            open_ = shard.open_until > now or shard.broken
            if open_:
                degraded += 1
            shards.append(
                {
                    "shard": index,
                    "breaker": "open" if open_ else "closed",
                    "broken": shard.broken,
                    "consecutive_failures": shard.failures,
                    "error_misses": shard.error_misses,
                    "dropped_writes": shard.dropped_writes,
                    "trips": shard.trips,
                }
            )
        return {
            "status": "degraded" if degraded else "ok",
            "degraded_shards": degraded,
            "shards": shards,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self):
        """Flush pending writes and release every database handle.

        Idempotent, and terminal: a closed store never reopens its shard
        connections — reads degrade to cold misses and writes are dropped
        (cache semantics).  This is what makes a store handle shared by
        many consumers (the serving daemon's batcher, concurrent reader
        threads) safe to tear down: a racing read that arrives after
        ``close()`` cannot resurrect a connection the shutdown path just
        released.
        """
        if self._closed:
            return
        self._closed = True
        self.flush()
        for shard in self._shards:
            shard.close()
        self._lru.clear()

    @property
    def closed(self):
        """True once :meth:`close` has run (the store serves only misses)."""
        return self._closed

    def flush(self):
        """Write batched usage updates and commit (once per run, per shard)."""
        with self._meta_lock:
            used = self._used_keys
            used_sources = self._used_source_keys
            self._used_keys = {}
            self._used_source_keys = {}
        by_shard = {}
        for key, index in used.items():
            by_shard.setdefault(index, ([], []))[0].append(key)
        for key, index in used_sources.items():
            by_shard.setdefault(index, ([], []))[1].append(key)
        now = time.time()
        for index, shard in enumerate(self._shards):
            keys, source_keys = by_shard.get(index, ((), ()))
            with shard.lock:
                connection = shard.connection
                if connection is None:
                    continue
                try:
                    if keys:
                        connection.executemany(
                            "UPDATE lineage_records SET last_used_at = ?, "
                            "use_count = use_count + 1 WHERE cache_key = ?",
                            [(now, key) for key in keys],
                        )
                        shard.dirty = True
                    if source_keys:
                        connection.executemany(
                            "UPDATE source_records SET last_used_at = ? "
                            "WHERE source_key = ?",
                            [(now, key) for key in source_keys],
                        )
                        shard.dirty = True
                    if shard.dirty:
                        connection.commit()
                        shard.dirty = False
                except sqlite3.Error:
                    pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # ------------------------------------------------------------------
    # The cache surface
    # ------------------------------------------------------------------
    def get(self, key, content_hash=None):
        """The stored :class:`TableLineage` for ``key``, or ``None``.

        ``content_hash`` (when known) routes the lookup straight to the
        record's shard; without it every shard is probed in order.  Every
        failure — no database, corrupted row, malformed JSON, record
        version mismatch — is a silent cold miss.
        """
        cached = self._lru.get(key)
        if cached is None:
            cached = self._fetch(key, content_hash)
            if cached is None:
                self.misses += 1
                return None
            self._lru.put(key, cached)
        shard_index_, record = cached
        try:
            lineage = TableLineage.from_record(record)
        except LineageRecordError:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        with self._meta_lock:
            self._used_keys[key] = shard_index_
        return lineage

    def prime(self, content_hashes):
        """Bulk-load every record matching ``content_hashes`` into the LRU.

        The warm-start pre-pass resolves keys sequentially (each key needs
        the upstream hits' schemas), but the *content hashes* of the whole
        corpus are known up front — one batched SELECT per chunk replaces
        hundreds of point lookups, and on a sharded store the per-shard
        batches run in parallel (each shard has its own connection and
        lock).  Purely an optimisation: keys not primed still resolve
        through :meth:`get`.
        """
        if self._lru.capacity <= 0:
            return 0
        by_shard = {}
        for value in content_hashes:
            text = str(value)
            by_shard.setdefault(self.shard_of(text), []).append(text)
        if not by_shard:
            return 0

        def _query(index, hashes):
            shard = self._shards[index]
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    return index, []

                def _read():
                    rows = []
                    for start in range(0, len(hashes), _CHUNK):
                        batch = hashes[start:start + _CHUNK]
                        placeholders = ",".join("?" for _ in batch)
                        rows.extend(
                            connection.execute(
                                "SELECT cache_key, record FROM lineage_records "
                                f"WHERE content_hash IN ({placeholders})",
                                batch,
                            ).fetchall()
                        )
                    return rows

                ok, rows = self._shard_io(shard, index, "read", _read)
            return index, (rows if ok else [])

        primed = 0
        for index, rows in self._fan_out(_query, by_shard.items()):
            for key, text in rows:
                try:
                    record = json.loads(text)
                except (TypeError, ValueError):
                    self.corrupt += 1
                    continue
                if isinstance(record, dict):
                    self._lru.put(key, (index, record))
                    primed += 1
        return primed

    def _fan_out(self, function, jobs):
        """Run ``function(*job)`` per shard job, in parallel when sharded.

        SQLite releases the GIL for the duration of a query, so a thread
        per shard genuinely overlaps the batched warm-start reads.  The
        single-shard layout (and a single job) skips the pool outright.
        """
        jobs = list(jobs)
        if len(jobs) <= 1:
            return [function(*job) for job in jobs]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=min(len(jobs), 8)) as pool:
            return list(pool.map(lambda job: function(*job), jobs))

    def _fetch(self, key, content_hash=None):
        """``(shard_index, record)`` for one cache key, or ``None``."""
        if content_hash is not None:
            indices = [self.shard_of(str(content_hash))]
        else:
            indices = range(self.num_shards)
        for index in indices:
            shard = self._shards[index]
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue
                ok, row = self._shard_io(
                    shard, index, "read",
                    lambda: connection.execute(
                        "SELECT record FROM lineage_records WHERE cache_key = ?",
                        (key,),
                    ).fetchone(),
                )
            if not ok or row is None:
                continue
            try:
                record = json.loads(row[0])
            except (TypeError, ValueError):
                self.corrupt += 1
                return None
            return (index, record) if isinstance(record, dict) else None
        return None

    def put(self, key, lineage, *, content_hash="", dialect="",
            extractor_version="", schema_fingerprint=""):
        """Store ``lineage`` under ``key`` (best-effort; committed per write).

        The individual key components are persisted alongside the record
        for observability (``cache stats``) and targeted invalidation;
        they do not participate in lookups — the combined ``key`` does.
        ``content_hash`` additionally routes the record to its shard.
        """
        try:
            record = lineage.to_record()
            # no sort_keys: JSON objects preserve insertion order in Python,
            # and the record's dict order (e.g. column -> sources) is part of
            # the loss-free round trip — reordering it would make warm-spliced
            # graphs render differently from cold ones
            text = json.dumps(record)
        except (TypeError, ValueError):
            return False
        now = time.time()
        index = self.shard_of(str(content_hash))
        shard = self._shards[index]
        with shard.lock:
            connection = self._connect_shard(shard)
            if connection is None:
                return False

            def _write():
                connection.execute(
                    "INSERT OR REPLACE INTO lineage_records "
                    "(cache_key, content_hash, dialect, extractor_version, "
                    " schema_fingerprint, record, created_at, last_used_at, use_count) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
                    (
                        key,
                        str(content_hash),
                        str(dialect),
                        str(extractor_version),
                        str(schema_fingerprint),
                        text,
                        now,
                        now,
                    ),
                )
                if content_hash:
                    # a re-put definition is live again: clear any pending
                    # superseded mark so compaction cannot evict it early
                    connection.execute(
                        "DELETE FROM superseded_marks WHERE content_hash = ?",
                        (str(content_hash),),
                    )
                # commit per write: under WAL + synchronous=NORMAL a commit
                # is lock release without an fsync, and holding an open
                # write transaction across puts deadlocks two handles
                # writing the same shards in opposite order (each stuck
                # behind the other's uncommitted transaction until the
                # busy timeout drops the write)
                connection.commit()

            ok, _ = self._shard_io(shard, index, "write", _write)
            if not ok:
                return False
        self._lru.put(key, (index, record))
        self.puts += 1
        return True

    def put_many(self, rows):
        """Store many records in one transaction per shard; returns #written.

        ``rows`` is an iterable of ``(key, lineage, meta)`` where ``meta``
        is the keyword mapping :meth:`put` takes (``content_hash``,
        ``dialect``, ``extractor_version``, ``schema_fingerprint``).  This
        is the bulk-write path of a large cold run: serialisation happens
        up front, then each shard gets a single ``executemany`` under one
        lock acquisition instead of a round trip per record.  Rows that
        fail to serialise are skipped (dropped-write semantics, like
        :meth:`put`).
        """
        now = time.time()
        by_shard = {}
        decoded = []
        for key, lineage, meta in rows:
            try:
                record = lineage.to_record()
                text = json.dumps(record)
            except (TypeError, ValueError):
                continue
            content_hash = str(meta.get("content_hash", ""))
            index = self.shard_of(content_hash)
            by_shard.setdefault(index, []).append(
                (
                    key,
                    content_hash,
                    str(meta.get("dialect", "")),
                    str(meta.get("extractor_version", "")),
                    str(meta.get("schema_fingerprint", "")),
                    text,
                    now,
                    now,
                )
            )
            decoded.append((key, index, record))
        written = 0
        ok_shards = set()
        for index, batch in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue

                def _write(connection=connection, batch=batch):
                    connection.executemany(
                        "INSERT OR REPLACE INTO lineage_records "
                        "(cache_key, content_hash, dialect, extractor_version, "
                        " schema_fingerprint, record, created_at, last_used_at, use_count) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
                        batch,
                    )
                    # re-put definitions are live again — drop their marks
                    connection.executemany(
                        "DELETE FROM superseded_marks WHERE content_hash = ?",
                        [(row[1],) for row in batch if row[1]],
                    )
                    # one transaction per shard batch, released here — see
                    # the per-write commit rationale in put()
                    connection.commit()

                ok, _ = self._shard_io(shard, index, "write", _write)
                if not ok:
                    continue
            written += len(batch)
            ok_shards.add(index)
        for key, index, record in decoded:
            if index in ok_shards:
                self._lru.put(key, (index, record))
        self.puts += written
        return written

    # ------------------------------------------------------------------
    # The parse cache (per-source preprocessing records)
    # ------------------------------------------------------------------
    def get_source(self, key):
        """The statement records of one source fragment, or ``None``."""
        index = self.shard_of(key)
        shard = self._shards[index]
        with shard.lock:
            connection = self._connect_shard(shard)
            if connection is None:
                return None
            ok, row = self._shard_io(
                shard, index, "read",
                lambda: connection.execute(
                    "SELECT record FROM source_records WHERE source_key = ?",
                    (key,),
                ).fetchone(),
            )
            if not ok or row is None:
                return None
        try:
            records = json.loads(row[0])
        except (TypeError, ValueError):
            self.corrupt += 1
            return None
        with self._meta_lock:
            self._used_source_keys[key] = index
        return records

    def get_sources(self, keys):
        """Batch-fetch parse-cache records: ``{key: records}`` for hits.

        One chunked ``IN (...)`` SELECT per 400 keys per shard replaces
        per-fragment point lookups, and on a sharded store the per-shard
        batches run in parallel.  Missing keys are simply absent from the
        result; decode failures count as corrupt and are dropped (cold
        miss semantics).
        """
        by_shard = {}
        for key in keys:
            text = str(key)
            by_shard.setdefault(self.shard_of(text), []).append(text)
        found = {}
        if not by_shard:
            return found

        def _query(index, shard_keys):
            shard = self._shards[index]
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    return index, []

                def _read():
                    rows = []
                    for start in range(0, len(shard_keys), _CHUNK):
                        batch = shard_keys[start:start + _CHUNK]
                        placeholders = ",".join("?" for _ in batch)
                        rows.extend(
                            connection.execute(
                                "SELECT source_key, record FROM source_records "
                                f"WHERE source_key IN ({placeholders})",
                                batch,
                            ).fetchall()
                        )
                    return rows

                ok, rows = self._shard_io(shard, index, "read", _read)
            return index, (rows if ok else [])

        for index, rows in self._fan_out(_query, by_shard.items()):
            for key, text in rows:
                try:
                    records = json.loads(text)
                except (TypeError, ValueError):
                    self.corrupt += 1
                    continue
                found[key] = records
                with self._meta_lock:
                    self._used_source_keys[key] = index
        return found

    def put_source(self, key, records):
        """Store one source fragment's statement records (best-effort)."""
        try:
            text = json.dumps(records, sort_keys=True)
        except (TypeError, ValueError):
            return False
        now = time.time()
        index = self.shard_of(key)
        shard = self._shards[index]
        with shard.lock:
            connection = self._connect_shard(shard)
            if connection is None:
                return False

            def _write():
                connection.execute(
                    "INSERT OR REPLACE INTO source_records "
                    "(source_key, record, created_at, last_used_at) VALUES (?, ?, ?, ?)",
                    (key, text, now, now),
                )
                connection.commit()  # see the per-write commit rationale in put()

            ok, _ = self._shard_io(shard, index, "write", _write)
        return bool(ok)

    def parse_cache(self, dialect):
        """The ``get(sql)/put(sql, records)`` adapter ``preprocess`` consumes."""
        return _ParseCache(self, dialect)

    # ------------------------------------------------------------------
    # Compaction: superseded-definition marks
    # ------------------------------------------------------------------
    def mark_superseded(self, content_hashes):
        """Flag canonical content hashes whose definitions were replaced.

        The streaming ingest calls this when a name's latest content hash
        changes: the records cached under the *prior* hashes are still
        valid (the cache key is content-addressed) but no longer describe
        any live definition, so ``gc(max_entries=…)`` evicts them ahead of
        the global LRU cutoff.  Marks are purely advisory — a marked hash
        that gets re-put (the definition flipped back) is unmarked by the
        write, so live hashes never regress to cold.  Returns the number
        of marks written (best-effort, dropped-write semantics).
        """
        now = time.time()
        by_shard = {}
        for value in content_hashes:
            text = str(value)
            if text:
                by_shard.setdefault(self.shard_of(text), set()).add(text)
        marked = 0
        for index, hashes in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue

                def _write(connection=connection, hashes=hashes):
                    connection.executemany(
                        "INSERT OR REPLACE INTO superseded_marks "
                        "(content_hash, marked_at) VALUES (?, ?)",
                        [(value, now) for value in sorted(hashes)],
                    )
                    connection.commit()

                ok, _ = self._shard_io(shard, index, "write", _write)
                if ok:
                    marked += len(hashes)
        return marked

    def superseded_count(self):
        """How many content hashes are currently marked superseded."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue
                try:
                    total += connection.execute(
                        "SELECT COUNT(*) FROM superseded_marks"
                    ).fetchone()[0]
                except sqlite3.Error:
                    pass
        return total

    # ------------------------------------------------------------------
    # Maintenance (the CLI ``cache`` subcommand)
    # ------------------------------------------------------------------
    def stats(self):
        """Counters for ``cache stats``, ``/stats`` and the benchmark reports.

        Besides the aggregate totals, ``per_shard`` breaks the on-disk
        state down file by file (row counts, bytes, cumulative recorded
        hit counts) so operators can spot shard skew — a hot shard taking
        a disproportionate share of records or reads — from the CLI and
        the serving daemon alike.
        """
        entries = 0
        source_entries = 0
        superseded_entries = 0
        size_bytes = 0
        extractor_versions = {}
        per_shard = []
        self.flush()
        for index, shard in enumerate(self._shards):
            shard_entries = 0
            shard_sources = 0
            shard_superseded = 0
            shard_hits = 0
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is not None:
                    try:
                        shard_entries = connection.execute(
                            "SELECT COUNT(*) FROM lineage_records"
                        ).fetchone()[0]
                        shard_sources = connection.execute(
                            "SELECT COUNT(*) FROM source_records"
                        ).fetchone()[0]
                        shard_superseded = connection.execute(
                            "SELECT COUNT(*) FROM superseded_marks"
                        ).fetchone()[0]
                        shard_hits = connection.execute(
                            "SELECT COALESCE(SUM(use_count), 0) FROM lineage_records"
                        ).fetchone()[0]
                        for version, count in connection.execute(
                            "SELECT extractor_version, COUNT(*) FROM lineage_records "
                            "GROUP BY extractor_version"
                        ):
                            extractor_versions[version] = (
                                extractor_versions.get(version, 0) + count
                            )
                    except sqlite3.Error:
                        pass
            shard_bytes = 0
            try:
                shard_bytes = os.path.getsize(shard.path)
            except OSError:
                pass
            entries += shard_entries
            source_entries += shard_sources
            superseded_entries += shard_superseded
            size_bytes += shard_bytes
            per_shard.append(
                {
                    "shard": index,
                    "path": shard.path,
                    "entries": shard_entries,
                    "source_entries": shard_sources,
                    "superseded": shard_superseded,
                    "size_bytes": shard_bytes,
                    "hit_count": shard_hits,
                    "error_misses": shard.error_misses,
                    "dropped_writes": shard.dropped_writes,
                    "breaker": (
                        "open"
                        if shard.open_until > time.monotonic() or shard.broken
                        else "closed"
                    ),
                    "breaker_trips": shard.trips,
                }
            )
        return {
            "path": self.path,
            "shards": self.num_shards,
            "entries": entries,
            "source_entries": source_entries,
            "superseded_entries": superseded_entries,
            "size_bytes": size_bytes,
            "extractor_versions": extractor_versions,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
            "session_corrupt": self.corrupt,
            "session_error_misses": self.error_misses,
            "session_dropped_writes": self.dropped_writes,
            "degraded_shards": self.health()["degraded_shards"],
            "lru_entries": len(self._lru),
            "per_shard": per_shard,
        }

    def clear(self):
        """Delete every record (lineage and parse); returns the number removed."""
        removed = 0
        for shard in self._shards:
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue
                try:
                    removed += connection.execute(
                        "SELECT (SELECT COUNT(*) FROM lineage_records) + "
                        "       (SELECT COUNT(*) FROM source_records)"
                    ).fetchone()[0]
                    connection.execute("DELETE FROM lineage_records")
                    connection.execute("DELETE FROM source_records")
                    connection.execute("DELETE FROM superseded_marks")
                    connection.commit()
                    shard.dirty = False
                except sqlite3.Error:
                    pass
        self._lru.clear()
        return removed

    def gc(self, max_age_days=None, max_entries=None):
        """Evict stale records; returns the number removed.

        ``max_age_days`` drops records (lineage and parse) not used within
        the window; ``max_entries`` then keeps only the most recently used
        N lineage records *globally* (the recency cutoff is computed
        across all shards, then applied shard-locally).  When the store is
        over the entry cap, **superseded-definition** records (see
        :meth:`mark_superseded`) are evicted first, ahead of the LRU
        cutoff — a redefinition-heavy streaming workload compacts to its
        live set before any live record is touched.  Parse records whose
        every lineage-bearing statement was evicted are deleted in the
        same pass (and counted), so ``max_entries`` no longer strands
        orphaned ``source_records`` in the shards forever.
        """
        removed = 0
        lineage_evicted = False
        if max_age_days is not None:
            cutoff = time.time() - float(max_age_days) * 86400.0
            for shard in self._shards:
                with shard.lock:
                    connection = self._connect_shard(shard)
                    if connection is None:
                        continue
                    try:
                        for table in ("lineage_records", "source_records"):
                            cursor = connection.execute(
                                f"DELETE FROM {table} WHERE last_used_at < ?",
                                (cutoff,),
                            )
                            removed += cursor.rowcount
                            if table == "lineage_records" and cursor.rowcount:
                                lineage_evicted = True
                        connection.commit()
                        shard.dirty = False
                    except sqlite3.Error:
                        pass
        if max_entries is not None:
            keep = int(max_entries)
            stamps = self._lineage_stamps()
            if len(stamps) > keep:
                # over the cap: superseded definitions go first — their
                # records describe no live statement, so evicting them
                # can never cost a warm splice
                for shard in self._shards:
                    with shard.lock:
                        connection = self._connect_shard(shard)
                        if connection is None:
                            continue
                        try:
                            cursor = connection.execute(
                                "DELETE FROM lineage_records WHERE content_hash "
                                "IN (SELECT content_hash FROM superseded_marks)"
                            )
                            removed += cursor.rowcount
                            if cursor.rowcount:
                                lineage_evicted = True
                            connection.execute("DELETE FROM superseded_marks")
                            connection.commit()
                            shard.dirty = False
                        except sqlite3.Error:
                            pass
                if lineage_evicted:
                    stamps = self._lineage_stamps()
            if len(stamps) > keep:
                # the newest `keep` stamps survive; everything strictly
                # older than the keep-th newest goes, and ties at the
                # boundary are broken per shard by recency order
                stamps.sort(reverse=True)
                boundary = stamps[keep - 1] if keep > 0 else float("inf")
                over = len(stamps) - keep
                for shard in self._shards:
                    with shard.lock:
                        connection = self._connect_shard(shard)
                        if connection is None:
                            continue
                        try:
                            if keep > 0:
                                cursor = connection.execute(
                                    "DELETE FROM lineage_records WHERE last_used_at < ?",
                                    (boundary,),
                                )
                            else:
                                cursor = connection.execute(
                                    "DELETE FROM lineage_records"
                                )
                            removed += cursor.rowcount
                            over -= cursor.rowcount
                            if cursor.rowcount:
                                lineage_evicted = True
                            connection.commit()
                            shard.dirty = False
                        except sqlite3.Error:
                            pass
                # records sharing the boundary stamp: evict the surplus
                if over > 0:
                    for shard in self._shards:
                        if over <= 0:
                            break
                        with shard.lock:
                            connection = self._connect_shard(shard)
                            if connection is None:
                                continue
                            try:
                                cursor = connection.execute(
                                    "DELETE FROM lineage_records WHERE cache_key IN ("
                                    "  SELECT cache_key FROM lineage_records"
                                    "  WHERE last_used_at = ? LIMIT ?)",
                                    (boundary, over),
                                )
                                removed += cursor.rowcount
                                over -= cursor.rowcount
                                if cursor.rowcount:
                                    lineage_evicted = True
                                connection.commit()
                                shard.dirty = False
                            except sqlite3.Error:
                                pass
        if lineage_evicted:
            removed += self._prune_orphan_sources()
        self._lru.clear()
        return removed

    def _lineage_stamps(self):
        """Every lineage record's ``last_used_at``, across all shards."""
        stamps = []
        for shard in self._shards:
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue
                try:
                    stamps.extend(
                        row[0]
                        for row in connection.execute(
                            "SELECT last_used_at FROM lineage_records"
                        )
                    )
                except sqlite3.Error:
                    pass
        return stamps

    def _prune_orphan_sources(self):
        """Delete parse records whose lineage records are all gone.

        A ``source_records`` row caches the statement records of one
        source fragment; once every lineage-bearing statement hash it
        mentions has been evicted, re-using it would only feed extractions
        whose results are cold anyway — it is dead weight.  Fragments that
        never produced lineage (pure DDL/skip records, or legacy records
        without content hashes) are kept.  Returns the number deleted.
        If any shard's survivor scan fails, pruning is skipped entirely —
        guessing at liveness would delete parse records for hashes we
        simply could not see.
        """
        survivors = set()
        for shard in self._shards:
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    if shard.broken:
                        continue  # permanently empty, nothing survives there
                    return 0
                try:
                    survivors.update(
                        row[0]
                        for row in connection.execute(
                            "SELECT DISTINCT content_hash FROM lineage_records"
                        )
                    )
                except sqlite3.Error:
                    return 0
        removed = 0
        for shard in self._shards:
            with shard.lock:
                connection = self._connect_shard(shard)
                if connection is None:
                    continue
                try:
                    rows = connection.execute(
                        "SELECT source_key, record FROM source_records"
                    ).fetchall()
                except sqlite3.Error:
                    continue
                doomed = [
                    key for key, text in rows
                    if self._source_orphaned(text, survivors)
                ]
                if not doomed:
                    continue
                try:
                    connection.executemany(
                        "DELETE FROM source_records WHERE source_key = ?",
                        [(key,) for key in doomed],
                    )
                    connection.commit()
                    shard.dirty = False
                    removed += len(doomed)
                except sqlite3.Error:
                    pass
        return removed

    @staticmethod
    def _source_orphaned(text, survivors):
        """True when a parse record references lineage hashes, none alive."""
        try:
            records = json.loads(text)
        except (TypeError, ValueError):
            return False
        if not isinstance(records, list):
            return False
        hashes = [
            record["content_hash"]
            for record in records
            if isinstance(record, dict)
            and isinstance(record.get("content_hash"), str)
            and record.get("kind") not in ("ddl", "skip")
        ]
        return bool(hashes) and not any(value in survivors for value in hashes)

    # ------------------------------------------------------------------
    # Re-sharding
    # ------------------------------------------------------------------
    @classmethod
    def migrate(cls, cache_dir, shards):
        """Re-shard the store at ``cache_dir`` in place; returns #records.

        Streams every lineage and parse record from the existing layout
        (whatever it is) into a freshly built layout of ``shards`` files,
        then swaps the new files in and removes the old ones.  Keys and
        record payloads are copied verbatim — the cache-key format does
        not change, only which file each record lives in — so warm starts
        hit exactly as before.  A no-op when the store already has the
        requested shard count.
        """
        cache_dir = os.fspath(cache_dir)
        target = max(1, min(int(shards), MAX_SHARDS))
        source = cls(cache_dir, lru_size=0)
        if source.num_shards == target:
            source.close()
            return 0

        import shutil
        import tempfile

        staging = tempfile.mkdtemp(prefix=".migrate-", dir=cache_dir)
        moved = 0
        try:
            fresh = cls(staging, lru_size=0, shards=target)
            for shard in source._shards:
                with shard.lock:
                    connection = shard.connect()
                    if connection is None:
                        continue
                    for table, columns in (
                        (
                            "lineage_records",
                            "cache_key, content_hash, dialect, extractor_version,"
                            " schema_fingerprint, record, created_at, last_used_at,"
                            " use_count",
                        ),
                        (
                            "source_records",
                            "source_key, record, created_at, last_used_at",
                        ),
                        (
                            "superseded_marks",
                            "content_hash, marked_at",
                        ),
                    ):
                        try:
                            rows = connection.execute(
                                f"SELECT {columns} FROM {table}"
                            )
                        except sqlite3.Error:
                            continue
                        route = 1 if table == "lineage_records" else 0
                        for row in rows:
                            dest = fresh._shards[fresh.shard_of(row[route])]
                            with dest.lock:
                                dest_connection = dest.connect()
                                if dest_connection is None:
                                    continue
                                placeholders = ",".join("?" for _ in row)
                                dest_connection.execute(
                                    f"INSERT OR REPLACE INTO {table} ({columns}) "
                                    f"VALUES ({placeholders})",
                                    row,
                                )
                                dest.dirty = True
                            moved += 1
            for dest in fresh._shards:
                with dest.lock:
                    if dest.connection is not None and dest.dirty:
                        dest.connection.commit()
                        dest.dirty = False
            fresh.close()
            source.close()
            # swap: drop the old layout's files, move the new ones in
            for shard in source._shards:
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.remove(shard.path + suffix)
                    except OSError:
                        pass
            for name in os.listdir(staging):
                os.replace(
                    os.path.join(staging, name), os.path.join(cache_dir, name)
                )
            manifest = os.path.join(cache_dir, SHARD_MANIFEST)
            if target == 1:
                try:
                    os.remove(manifest)
                except OSError:
                    pass
            else:
                with open(manifest, "w", encoding="utf-8") as handle:
                    json.dump({"version": 1, "shards": target}, handle)
                    handle.write("\n")
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return moved

    def __repr__(self):
        return (
            f"LineageStore({self.cache_dir!r}, shards={self.num_shards})"
        )


class _ParseCache:
    """Adapter binding a store + dialect to ``preprocess(parse_cache=...)``.

    ``preprocess`` announces fragment windows up front via
    :meth:`prefetch`, which resolves every key in one batched (per-shard
    parallel) read; the subsequent per-fragment :meth:`get` calls are then
    pure dictionary lookups (a key absent after a prefetch is a definitive
    miss — no point query is issued for it).
    """

    def __init__(self, store, dialect):
        from ..core.preprocess import PARSE_RECORD_VERSION
        from .keys import source_key

        self._store = store
        self._dialect = dialect
        self._version = PARSE_RECORD_VERSION
        self._key = source_key
        self._prefetched = None

    def prefetch(self, sqls):
        """Bulk-resolve the parse records of every fragment in ``sqls``.

        Each call *replaces* the previous prefetch window — streaming
        preprocessing announces fragments chunk by chunk, consuming one
        window fully before announcing the next.
        """
        keys = {self._key(sql, self._dialect, self._version) for sql in sqls}
        self._prefetched = self._store.get_sources(keys)
        return len(self._prefetched)

    def get(self, sql):
        key = self._key(sql, self._dialect, self._version)
        if self._prefetched is not None:
            return self._prefetched.get(key)
        return self._store.get_source(key)

    def put(self, sql, records):
        return self._store.put_source(self._key(sql, self._dialect, self._version), records)
