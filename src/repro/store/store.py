"""The persistent, content-addressed lineage store.

:class:`LineageStore` maps a cache key (see :mod:`repro.store.keys`) to a
serialized :class:`~repro.core.lineage.TableLineage` record behind an
SQLite backend with an in-memory LRU front.  It is what makes extraction
results survive the process: a fresh session over an unchanged corpus
splices every entry straight from disk instead of re-parsing and
re-extracting it.

Design points:

* **cache, not database** — every failure mode (missing file, corrupted
  database, malformed JSON, record-version skew) degrades to a cold miss
  or a dropped write, never an exception on the extraction path;
* **LRU front** — hot records are served from memory as decoded record
  dicts; each hit still constructs a fresh ``TableLineage``, so callers
  can mutate what they are given without poisoning the cache;
* **deferred commits** — ``put()`` batches; the runner calls ``flush()``
  once per run (``close()`` flushes too), so a 400-view cold run does not
  pay 400 fsyncs.
"""

import json
import os
import sqlite3
import threading
import time

from ..core.errors import LineageRecordError
from ..core.lineage import TableLineage

_SCHEMA = """
CREATE TABLE IF NOT EXISTS lineage_records (
    cache_key          TEXT PRIMARY KEY,
    content_hash       TEXT NOT NULL,
    dialect            TEXT NOT NULL,
    extractor_version  TEXT NOT NULL,
    schema_fingerprint TEXT NOT NULL,
    record             TEXT NOT NULL,
    created_at         REAL NOT NULL,
    last_used_at       REAL NOT NULL,
    use_count          INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_lineage_last_used
    ON lineage_records (last_used_at);
CREATE TABLE IF NOT EXISTS source_records (
    source_key   TEXT PRIMARY KEY,
    record       TEXT NOT NULL,
    created_at   REAL NOT NULL,
    last_used_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_source_last_used
    ON source_records (last_used_at);
"""

#: filename of the SQLite database inside a cache directory.
STORE_FILENAME = "lineage.sqlite"


class _LRU:
    """A tiny size-capped LRU over decoded record dicts."""

    def __init__(self, capacity):
        self.capacity = max(int(capacity), 0)
        self._entries = {}

    def get(self, key):
        value = self._entries.pop(key, None)
        if value is not None:
            self._entries[key] = value  # re-insert = most recent
        return value

    def put(self, key, value):
        if self.capacity <= 0:
            return
        self._entries.pop(key, None)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.pop(next(iter(self._entries)))

    def clear(self):
        self._entries.clear()

    def __len__(self):
        return len(self._entries)


class LineageStore:
    """Persistent ``cache_key -> TableLineage`` mapping (SQLite + LRU).

    Parameters
    ----------
    cache_dir:
        Directory holding the store (created if missing).  The database
        lives at ``<cache_dir>/lineage.sqlite``.
    lru_size:
        Capacity of the in-memory front (record count); ``0`` disables it.
    """

    def __init__(self, cache_dir, lru_size=2048):
        self.cache_dir = os.fspath(cache_dir)
        self.path = os.path.join(self.cache_dir, STORE_FILENAME)
        self._lru = _LRU(lru_size)
        self._lock = threading.Lock()
        self._connection = None
        self._dirty = False
        self._broken = False
        # usage tracking is batched: reads only mark keys here and flush()
        # writes last_used_at/use_count in one executemany each
        self._used_keys = set()
        self._used_source_keys = set()
        # session counters (not persisted)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------
    def _connect(self):
        if self._connection is not None or self._broken:
            return self._connection
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            connection = sqlite3.connect(self.path, check_same_thread=False)
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.executescript(_SCHEMA)
            connection.commit()
            self._connection = connection
        except (sqlite3.Error, OSError):
            # an unusable backing file turns the store into a pure pass-through
            self._broken = True
            self._connection = None
        return self._connection

    def close(self):
        """Flush pending writes and release the database handle."""
        self.flush()
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None
                self._dirty = False
        self._lru.clear()

    def flush(self):
        """Write batched usage updates and commit (once per run)."""
        with self._lock:
            connection = self._connection
            if connection is None:
                return
            try:
                now = time.time()
                if self._used_keys:
                    connection.executemany(
                        "UPDATE lineage_records SET last_used_at = ?, "
                        "use_count = use_count + 1 WHERE cache_key = ?",
                        [(now, key) for key in self._used_keys],
                    )
                    self._used_keys.clear()
                    self._dirty = True
                if self._used_source_keys:
                    connection.executemany(
                        "UPDATE source_records SET last_used_at = ? "
                        "WHERE source_key = ?",
                        [(now, key) for key in self._used_source_keys],
                    )
                    self._used_source_keys.clear()
                    self._dirty = True
                if self._dirty:
                    connection.commit()
                    self._dirty = False
            except sqlite3.Error:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # ------------------------------------------------------------------
    # The cache surface
    # ------------------------------------------------------------------
    def get(self, key):
        """The stored :class:`TableLineage` for ``key``, or ``None``.

        Every failure — no database, corrupted row, malformed JSON, record
        version mismatch — is a silent cold miss.
        """
        record = self._lru.get(key)
        if record is None:
            record = self._fetch(key)
            if record is None:
                self.misses += 1
                return None
            self._lru.put(key, record)
        try:
            lineage = TableLineage.from_record(record)
        except LineageRecordError:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        self._used_keys.add(key)
        return lineage

    def prime(self, content_hashes):
        """Bulk-load every record matching ``content_hashes`` into the LRU.

        The warm-start pre-pass resolves keys sequentially (each key needs
        the upstream hits' schemas), but the *content hashes* of the whole
        corpus are known up front — one batched SELECT replaces hundreds of
        point lookups.  Purely an optimisation: keys not primed still
        resolve through :meth:`get`.
        """
        hashes = [str(value) for value in content_hashes]
        if not hashes or self._lru.capacity <= 0:
            return 0
        primed = 0
        with self._lock:
            connection = self._connect()
            if connection is None:
                return 0
            rows = []
            try:
                for start in range(0, len(hashes), 400):
                    batch = hashes[start:start + 400]
                    placeholders = ",".join("?" for _ in batch)
                    rows.extend(
                        connection.execute(
                            "SELECT cache_key, record FROM lineage_records "
                            f"WHERE content_hash IN ({placeholders})",
                            batch,
                        ).fetchall()
                    )
            except sqlite3.Error:
                self.corrupt += 1
                return 0
        for key, text in rows:
            try:
                record = json.loads(text)
            except (TypeError, ValueError):
                self.corrupt += 1
                continue
            if isinstance(record, dict):
                self._lru.put(key, record)
                primed += 1
        return primed

    def _fetch(self, key):
        with self._lock:
            connection = self._connect()
            if connection is None:
                return None
            try:
                row = connection.execute(
                    "SELECT record FROM lineage_records WHERE cache_key = ?",
                    (key,),
                ).fetchone()
                if row is None:
                    return None
            except sqlite3.Error:
                self.corrupt += 1
                return None
        try:
            record = json.loads(row[0])
        except (TypeError, ValueError):
            self.corrupt += 1
            return None
        return record if isinstance(record, dict) else None

    def put(self, key, lineage, *, content_hash="", dialect="",
            extractor_version="", schema_fingerprint=""):
        """Store ``lineage`` under ``key`` (best-effort; commits are batched).

        The individual key components are persisted alongside the record
        for observability (``cache stats``) and targeted invalidation;
        they do not participate in lookups — the combined ``key`` does.
        """
        try:
            record = lineage.to_record()
            # no sort_keys: JSON objects preserve insertion order in Python,
            # and the record's dict order (e.g. column -> sources) is part of
            # the loss-free round trip — reordering it would make warm-spliced
            # graphs render differently from cold ones
            text = json.dumps(record)
        except (TypeError, ValueError):
            return False
        now = time.time()
        with self._lock:
            connection = self._connect()
            if connection is None:
                return False
            try:
                connection.execute(
                    "INSERT OR REPLACE INTO lineage_records "
                    "(cache_key, content_hash, dialect, extractor_version, "
                    " schema_fingerprint, record, created_at, last_used_at, use_count) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
                    (
                        key,
                        str(content_hash),
                        str(dialect),
                        str(extractor_version),
                        str(schema_fingerprint),
                        text,
                        now,
                        now,
                    ),
                )
                self._dirty = True
            except sqlite3.Error:
                return False
        self._lru.put(key, record)
        self.puts += 1
        return True

    # ------------------------------------------------------------------
    # The parse cache (per-source preprocessing records)
    # ------------------------------------------------------------------
    def get_source(self, key):
        """The statement records of one source fragment, or ``None``."""
        with self._lock:
            connection = self._connect()
            if connection is None:
                return None
            try:
                row = connection.execute(
                    "SELECT record FROM source_records WHERE source_key = ?",
                    (key,),
                ).fetchone()
                if row is None:
                    return None
            except sqlite3.Error:
                self.corrupt += 1
                return None
        try:
            records = json.loads(row[0])
        except (TypeError, ValueError):
            self.corrupt += 1
            return None
        self._used_source_keys.add(key)
        return records

    def get_sources(self, keys):
        """Batch-fetch parse-cache records: ``{key: records}`` for hits.

        One chunked ``IN (...)`` SELECT per 400 keys replaces the
        per-fragment point lookups of :meth:`get_source` — a warm start
        over an N-fragment corpus costs ``ceil(N / 400)`` queries instead
        of N.  Missing keys are simply absent from the result; decode
        failures count as corrupt and are dropped (cold miss semantics).
        """
        keys = [str(key) for key in keys]
        found = {}
        if not keys:
            return found
        rows = []
        with self._lock:
            connection = self._connect()
            if connection is None:
                return found
            try:
                for start in range(0, len(keys), 400):
                    batch = keys[start:start + 400]
                    placeholders = ",".join("?" for _ in batch)
                    rows.extend(
                        connection.execute(
                            "SELECT source_key, record FROM source_records "
                            f"WHERE source_key IN ({placeholders})",
                            batch,
                        ).fetchall()
                    )
            except sqlite3.Error:
                self.corrupt += 1
                return found
        for key, text in rows:
            try:
                records = json.loads(text)
            except (TypeError, ValueError):
                self.corrupt += 1
                continue
            found[key] = records
            self._used_source_keys.add(key)
        return found

    def put_source(self, key, records):
        """Store one source fragment's statement records (best-effort)."""
        try:
            text = json.dumps(records, sort_keys=True)
        except (TypeError, ValueError):
            return False
        now = time.time()
        with self._lock:
            connection = self._connect()
            if connection is None:
                return False
            try:
                connection.execute(
                    "INSERT OR REPLACE INTO source_records "
                    "(source_key, record, created_at, last_used_at) VALUES (?, ?, ?, ?)",
                    (key, text, now, now),
                )
                self._dirty = True
            except sqlite3.Error:
                return False
        return True

    def parse_cache(self, dialect):
        """The ``get(sql)/put(sql, records)`` adapter ``preprocess`` consumes."""
        return _ParseCache(self, dialect)

    # ------------------------------------------------------------------
    # Maintenance (the CLI ``cache`` subcommand)
    # ------------------------------------------------------------------
    def stats(self):
        """Counters for ``cache stats`` and the benchmark reports."""
        entries = 0
        source_entries = 0
        size_bytes = 0
        extractor_versions = {}
        self.flush()
        with self._lock:
            connection = self._connect()
            if connection is not None:
                try:
                    entries = connection.execute(
                        "SELECT COUNT(*) FROM lineage_records"
                    ).fetchone()[0]
                    source_entries = connection.execute(
                        "SELECT COUNT(*) FROM source_records"
                    ).fetchone()[0]
                    for version, count in connection.execute(
                        "SELECT extractor_version, COUNT(*) FROM lineage_records "
                        "GROUP BY extractor_version"
                    ):
                        extractor_versions[version] = count
                except sqlite3.Error:
                    pass
        try:
            size_bytes = os.path.getsize(self.path)
        except OSError:
            pass
        return {
            "path": self.path,
            "entries": entries,
            "source_entries": source_entries,
            "size_bytes": size_bytes,
            "extractor_versions": extractor_versions,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
            "session_corrupt": self.corrupt,
            "lru_entries": len(self._lru),
        }

    def clear(self):
        """Delete every record (lineage and parse); returns the number removed."""
        removed = 0
        with self._lock:
            connection = self._connect()
            if connection is not None:
                try:
                    removed = connection.execute(
                        "SELECT (SELECT COUNT(*) FROM lineage_records) + "
                        "       (SELECT COUNT(*) FROM source_records)"
                    ).fetchone()[0]
                    connection.execute("DELETE FROM lineage_records")
                    connection.execute("DELETE FROM source_records")
                    connection.commit()
                    self._dirty = False
                except sqlite3.Error:
                    removed = 0
        self._lru.clear()
        return removed

    def gc(self, max_age_days=None, max_entries=None):
        """Evict stale records; returns the number removed.

        ``max_age_days`` drops records (lineage and parse) not used within
        the window; ``max_entries`` then keeps only the most recently used
        N lineage records.
        """
        removed = 0
        with self._lock:
            connection = self._connect()
            if connection is None:
                return 0
            try:
                if max_age_days is not None:
                    cutoff = time.time() - float(max_age_days) * 86400.0
                    for table, key in (
                        ("lineage_records", "cache_key"),
                        ("source_records", "source_key"),
                    ):
                        cursor = connection.execute(
                            f"DELETE FROM {table} WHERE last_used_at < ?",
                            (cutoff,),
                        )
                        removed += cursor.rowcount
                if max_entries is not None:
                    cursor = connection.execute(
                        "DELETE FROM lineage_records WHERE cache_key NOT IN ("
                        "  SELECT cache_key FROM lineage_records"
                        "  ORDER BY last_used_at DESC LIMIT ?)",
                        (int(max_entries),),
                    )
                    removed += cursor.rowcount
                connection.commit()
                self._dirty = False
            except sqlite3.Error:
                pass
        self._lru.clear()
        return removed

    def __repr__(self):
        return f"LineageStore({self.path!r})"


class _ParseCache:
    """Adapter binding a store + dialect to ``preprocess(parse_cache=...)``.

    ``preprocess`` announces the whole fragment list up front via
    :meth:`prefetch`, which resolves every key in one batched read; the
    subsequent per-fragment :meth:`get` calls are then pure dictionary
    lookups (a key absent after a prefetch is a definitive miss — no
    point query is issued for it).
    """

    def __init__(self, store, dialect):
        from ..core.preprocess import PARSE_RECORD_VERSION
        from .keys import source_key

        self._store = store
        self._dialect = dialect
        self._version = PARSE_RECORD_VERSION
        self._key = source_key
        self._prefetched = None

    def prefetch(self, sqls):
        """Bulk-resolve the parse records of every fragment in ``sqls``."""
        keys = {self._key(sql, self._dialect, self._version) for sql in sqls}
        self._prefetched = self._store.get_sources(keys)
        return len(self._prefetched)

    def get(self, sql):
        key = self._key(sql, self._dialect, self._version)
        if self._prefetched is not None:
            return self._prefetched.get(key)
        return self._store.get_source(key)

    def put(self, sql, records):
        return self._store.put_source(self._key(sql, self._dialect, self._version), records)
