"""Cache-key anatomy for the persistent lineage store.

A stored :class:`~repro.core.lineage.TableLineage` record is addressed by
four components, combined into one content-addressed key:

``content_hash``
    The statement's semantic fingerprint
    (:attr:`~repro.core.preprocess.ParsedQuery.content_hash` — sha256 of
    the canonically printed statement plus its kind, so whitespace and
    comment edits do not invalidate).
``dialect``
    The SQL dialect the statement was parsed under; identifier folding
    differs across dialects, so records never cross them.
``extractor_version``
    :data:`~repro.core.extractor.EXTRACTOR_VERSION` — bumped whenever the
    extraction rules change, turning every existing record into a cold
    miss.
``schema_fingerprint``
    A digest of everything *outside* the statement that shaped its
    extraction: for every relation the statement references, the column
    list it resolved against (an upstream view's output columns, a catalog
    table's schema, or "unknown external"), plus the ``strict`` resolution
    flag.  An upstream schema change therefore invalidates every dependent
    record even though the dependents' SQL is unchanged.

All four must match for a warm hit; any mismatch is simply a miss, never
an error.
"""

import hashlib
import zlib

#: marker digested for a relation whose columns are unknown (an external
#: base table with no catalog entry) — distinct from an empty column list.
_UNKNOWN = "\x00?"


def shard_index(content_hash, num_shards):
    """The shard a content hash routes to, in ``[0, num_shards)``.

    Content hashes are hex digests, so the leading 8 hex digits are a
    uniformly distributed 32-bit integer — a cheap, stable routing prefix.
    Non-hex inputs (the empty ``content_hash=""`` of legacy writes, parse
    cache source keys would qualify too but happen to be hex) fall back to
    ``crc32`` of the text, which is just as deterministic across processes
    and Python versions.  Routing must be identical on the put and get
    sides, so this function is the single source of truth for it.
    """
    if num_shards <= 1:
        return 0
    text = str(content_hash)
    try:
        prefix = int(text[:8], 16) if text else 0
    except ValueError:
        prefix = zlib.crc32(text.encode("utf-8"))
    return prefix % num_shards


def schema_fingerprint(dependency_schemas, strict=False):
    """Digest the schemas visible to one statement's extraction.

    ``dependency_schemas`` is an iterable of ``(relation_name, columns)``
    pairs where ``columns`` is an ordered list of column names or ``None``
    when the relation's schema was unknown at extraction time.  The pairs
    are sorted here, so callers may pass them in any order.
    """
    digest = hashlib.sha256()
    digest.update(b"strict" if strict else b"lenient")
    for name, columns in sorted(
        dependency_schemas, key=lambda pair: str(pair[0])
    ):
        digest.update(b"\x00r")
        digest.update(str(name).encode("utf-8"))
        if columns is None:
            digest.update(_UNKNOWN.encode("utf-8"))
        else:
            for column in columns:
                digest.update(b"\x00c")
                digest.update(str(column).encode("utf-8"))
    return digest.hexdigest()


def make_key(content_hash, dialect, extractor_version, schema_fingerprint):
    """Combine the four key components into one content-addressed key."""
    payload = "\x00".join(
        [str(content_hash), str(dialect), str(extractor_version), str(schema_fingerprint)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def source_key(text, dialect, parse_record_version):
    """The parse-cache key of one raw source fragment.

    Keyed on the *raw* text (not the canonical print — producing the
    canonical print requires the very parse the cache avoids), the dialect,
    and the parse-record format version.
    """
    digest = hashlib.sha256()
    digest.update(b"parse\x00")
    digest.update(str(dialect).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(parse_record_version).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(text).encode("utf-8"))
    return digest.hexdigest()
