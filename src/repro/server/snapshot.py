"""Copy-on-write graph snapshots — the daemon's lock-free read side.

Reads and writes in the serving daemon never share a mutable graph.
The ingest loop owns the only :class:`~repro.session.LineageSession`;
after every successful extraction batch it freezes the session's graph
(:meth:`LineageSession.snapshot`) and hands the frozen view to the
:class:`SnapshotManager`, which publishes it by a single attribute
assignment.  Under CPython that assignment is an atomic reference swap,
so a reader either sees the old snapshot or the new one — never a
half-built graph — and holds whichever it grabbed for as long as it
likes: a slow ``/render/html`` over snapshot N cannot block (or be
corrupted by) the ingest loop publishing N+1.

This works because the extraction stack never mutates a published
graph: every run and refresh assembles a *new* ``LineageGraph`` (reused
view entries are spliced in by reference, not edited), so freezing it
pins a consistent generation forever.
"""

import time


class Snapshot:
    """One immutable published generation of the lineage graph."""

    __slots__ = ("version", "graph", "stats", "published_at", "statement_names")

    def __init__(self, version, graph, statement_names=()):
        self.version = version
        self.graph = graph
        self.stats = graph.stats()
        self.published_at = time.time()
        self.statement_names = tuple(statement_names)

    def describe(self):
        """A JSON-friendly summary (served by ``/stats`` and ``/health``)."""
        return {
            "version": self.version,
            "published_at": self.published_at,
            "statements": len(self.statement_names),
            "graph": dict(self.stats),
        }


class SnapshotManager:
    """Publishes immutable snapshots; readers take them without locking.

    Only the ingest loop calls :meth:`publish`; any number of reader
    tasks/threads call :meth:`current`.  No synchronisation is needed on
    the read path — ``self._current`` is replaced wholesale, never
    mutated.
    """

    def __init__(self, initial_graph):
        self._current = Snapshot(0, initial_graph.freeze())

    def prepare(self, graph, statement_names=()):
        """Freeze ``graph`` into the next generation WITHOUT publishing.

        The freeze copies the relation map and eagerly builds the
        adjacency *and reachability* indexes — real CPU work on a large
        graph — so the ingest loop calls this from its worker thread and
        only does the cheap :meth:`install` swap on the event loop.  Safe
        off-thread because the single ingest loop is the only generation
        producer: nobody else can move ``version`` between prepare and
        install.  The previous generation's reachability index seeds the
        new one: batch ingest grows the graph append-only, so the freeze
        usually patches labels for just the new relations instead of
        re-labelling the whole graph.
        """
        previous = self._current.graph.reachability(build=False)
        frozen = graph.freeze(reach_seed=previous)
        return Snapshot(self._current.version + 1, frozen, statement_names)

    def install(self, snapshot):
        """Make a prepared snapshot the current generation."""
        self._current = snapshot  # atomic reference swap: the publish point
        return snapshot

    def publish(self, graph, statement_names=()):
        """Freeze ``graph`` and make it the current generation."""
        return self.install(self.prepare(graph, statement_names))

    def current(self):
        """The latest published :class:`Snapshot` (never ``None``)."""
        return self._current

    @property
    def version(self):
        return self._current.version
