"""Endpoint handlers — every route reads a snapshot or submits a batch.

The dispatch table is deliberately flat: the daemon serves a handful of
endpoints and nothing here knows about sockets or wire format beyond the
:class:`~repro.server.http.Request`/``Response`` pair.  Read endpoints
(``/impact``, ``/ordering``, ``/render/{fmt}``, ``/stats``, ``/health``,
``/quarantine``) grab the current
:class:`~repro.server.snapshot.Snapshot` once and work only on that
frozen graph — a concurrent ingest publishing a newer generation cannot
change what an in-flight read observes.  The only write endpoint,
``POST /extract``, funnels into the
:class:`~repro.server.batcher.IngestBatcher`.

Error contract on the write path: a poison statement is NOT an HTTP
error (the response is 200 with per-statement ``quarantined`` rows);
5xx is reserved for the daemon itself — deliberate 503 shedding
(queue full, deadline exceeded, journal unavailable; all carry
``Retry-After``) and 500 for genuine non-retryable batch failures.
"""

import asyncio
import math

from .batcher import ExtractionFailed, OverloadedError
from .http import BadRequestError, Response
from ..analysis.impact import impact_analysis
from ..analysis.ordering import (
    creation_order,
    drop_order,
    root_tables,
    terminal_views,
)
from ..analysis.selector import SelectorError, selector_impact
from ..core.errors import CyclicDependencyError, UnknownColumnError
from ..output.registry import UnknownFormatError, render_bytes, renderer_names

_DIRECTIONS = ("downstream", "upstream")
_ORDERING_KINDS = {
    "creation": creation_order,
    "drop": drop_order,
    "terminal": terminal_views,
    "roots": root_tables,
}


async def dispatch(app, request):
    """Route one request to its handler (404/405 for everything else)."""
    path = request.path.rstrip("/") or "/"
    if path == "/health":
        return _require_get(request) or handle_health(app)
    if path == "/stats":
        return _require_get(request) or await handle_stats(app)
    if path == "/extract":
        if request.method != "POST":
            return Response.error(405, "use POST /extract")
        return await handle_extract(app, request)
    if path == "/quarantine":
        return _require_get(request) or handle_quarantine(app)
    if path == "/impact":
        return _require_get(request) or handle_impact(app, request)
    if path == "/ordering":
        return _require_get(request) or handle_ordering(app, request)
    if path.startswith("/render/"):
        fmt = path[len("/render/"):]
        return _require_get(request) or await handle_render(app, request, fmt)
    return Response.error(404, f"no such endpoint: {request.path}")


def _require_get(request):
    if request.method not in ("GET", "HEAD"):
        return Response.error(405, f"{request.method} not allowed here")
    return None


# ----------------------------------------------------------------------
# reads — all against one grabbed snapshot
# ----------------------------------------------------------------------
def handle_health(app):
    snapshot = app.snapshots.current()
    payload = {
        "status": "ok",
        "snapshot_version": snapshot.version,
        "relations": snapshot.stats.get("num_relations", 0),
        "uptime_seconds": round(app.uptime(), 3),
    }
    store = app.session.store
    health = store.health() if store is not None else None
    if health is not None:
        # breaker/counter reads only — no sqlite I/O, safe on the loop
        payload["store"] = health
        if health.get("status") != "ok":
            payload["status"] = health["status"]
    return Response.json(payload)


def handle_quarantine(app):
    quarantine = app.batcher.quarantine
    return Response.json(
        {"entries": quarantine.rows(), "stats": quarantine.stats()}
    )


async def handle_stats(app):
    snapshot = app.snapshots.current()
    payload = {
        "server": {
            "uptime_seconds": round(app.uptime(), 3),
            "workers": app.workers,
            "formats": renderer_names(),
        },
        "ingest": app.batcher.stats(),
        "quarantine": app.batcher.quarantine.stats(),
        "snapshot": snapshot.describe(),
    }
    journal = getattr(app, "journal", None)
    if journal is not None:
        payload["journal"] = journal.stats()
    store = app.session.store
    if store is not None:
        # store.stats() flushes and queries sqlite per shard under shard
        # locks — keep that off the event loop like renders and refreshes
        loop = asyncio.get_running_loop()
        payload["store"] = await loop.run_in_executor(app.executor, store.stats)
    return Response.json(payload)


def _parse_max_depth(request):
    text = request.query.get("max_depth")
    if text is None or text == "":
        return None
    try:
        value = int(text)
    except ValueError:
        raise BadRequestError(f"max_depth must be an integer, got {text!r}") from None
    if value < 1:
        raise BadRequestError(f"max_depth must be positive, got {value}")
    return value


def _restore_selector_pluses(text):
    """Undo querystring ``+``-to-space decoding on a selector value.

    ``GET /impact?selector=+web.page+`` reaches us as ``" web.page "``
    because ``+`` is the form encoding of a space.  Column names cannot
    contain spaces, so leading/trailing spaces can only ever be decoded
    pluses — map them back (clients sending ``%2B`` are unaffected).
    """
    stripped = text.strip(" ")
    leading = len(text) - len(text.lstrip(" "))
    trailing = len(text) - len(text.rstrip(" "))
    return "+" * leading + stripped + "+" * trailing


def handle_impact(app, request):
    snapshot = app.snapshots.current()
    max_depth = _parse_max_depth(request)

    selector_text = request.query.get("selector")
    if selector_text is not None:
        try:
            outcome = selector_impact(
                snapshot.graph,
                _restore_selector_pluses(selector_text),
                max_depth=max_depth,
            )
        except SelectorError as error:
            raise BadRequestError(str(error)) from None
        except UnknownColumnError as error:
            return Response.error(404, str(error))
        payload = outcome.to_payload()
        payload["snapshot_version"] = snapshot.version
        return Response.json(payload)

    column = request.query.get("column")
    if not column:
        raise BadRequestError("missing required query parameter: column or selector")
    direction = request.query.get("direction", "downstream")
    if direction not in _DIRECTIONS:
        raise BadRequestError(
            f"direction must be one of {', '.join(_DIRECTIONS)}, got {direction!r}"
        )
    try:
        result = impact_analysis(
            snapshot.graph, column, direction=direction,
            max_depth=max_depth, missing="raise",
        )
    except UnknownColumnError as error:
        return Response.error(404, str(error))
    except ValueError as error:
        # an unqualified name is a malformed request, not a missing column
        raise BadRequestError(str(error)) from None
    return Response.json(
        {
            "start": str(result.start),
            "direction": direction,
            "snapshot_version": snapshot.version,
            "impacted_tables": result.impacted_tables(),
            "columns": [
                {"table": table, "column": name, "kind": kind}
                for table, name, kind in result.to_rows()
            ],
        }
    )


def handle_ordering(app, request):
    kind = request.query.get("kind", "creation")
    handler = _ORDERING_KINDS.get(kind)
    if handler is None:
        raise BadRequestError(
            f"kind must be one of {', '.join(sorted(_ORDERING_KINDS))}, got {kind!r}"
        )
    snapshot = app.snapshots.current()
    try:
        order = handler(snapshot.graph)
    except CyclicDependencyError as error:
        return Response.error(409, f"dependency cycle: {error}")
    return Response.json(
        {"kind": kind, "snapshot_version": snapshot.version, "order": list(order)}
    )


async def handle_render(app, request, fmt):
    if not fmt:
        raise BadRequestError(
            "missing format: GET /render/{fmt} with fmt one of "
            + ", ".join(renderer_names())
        )
    snapshot = app.snapshots.current()
    loop = asyncio.get_running_loop()
    try:
        # rendering a large graph is CPU work: keep it off the event loop
        # (the snapshot is frozen, so the executor thread needs no lock)
        body, content_type = await loop.run_in_executor(
            app.executor,
            lambda: render_bytes(snapshot.graph, fmt, stats=dict(snapshot.stats)),
        )
    except UnknownFormatError as error:
        return Response.error(404, str(error))
    return Response(200, body, content_type)


# ----------------------------------------------------------------------
# the write path
# ----------------------------------------------------------------------
async def handle_extract(app, request):
    payload = request.json()
    if isinstance(payload, dict) and isinstance(payload.get("statements"), dict):
        statements = payload["statements"]
    elif isinstance(payload, dict) and payload:
        statements = payload
    else:
        raise BadRequestError(
            'body must be {"statements": {name: sql, ...}} or a bare '
            "{name: sql, ...} object with at least one statement"
        )
    for name, sql in statements.items():
        if not isinstance(sql, str) or not sql.strip():
            raise BadRequestError(f"statement {name!r} must be non-empty SQL text")
    pending = app.batcher.submit(
        {str(name): sql for name, sql in statements.items()}
    )
    timeout = getattr(app, "request_timeout", None)
    try:
        if timeout:
            result = await asyncio.wait_for(pending, timeout)
        else:
            result = await pending
    except asyncio.TimeoutError:
        app.batcher.counters["deadline_exceeded"] += 1
        return Response.error(
            503,
            f"request deadline exceeded ({timeout:.3f}s); the batch may "
            "still complete — resubmitting is safe (deduplicated)",
            headers={"Retry-After": "1"},
        )
    except OverloadedError as error:
        return Response.error(
            503, str(error),
            headers={"Retry-After": str(int(math.ceil(error.retry_after)))},
        )
    except ExtractionFailed as error:
        if error.retryable:
            return Response.error(503, str(error), headers={"Retry-After": "1"})
        return Response.error(500, str(error))
    except RuntimeError as error:
        return Response.error(503, str(error))
    return Response.json(result)
