"""The ingest side of the daemon: hash-deduped micro-batched extraction.

All writes funnel through one :class:`IngestBatcher`.  ``POST /extract``
handlers call :meth:`submit` and await the result; a single ingest task
drains the queue, coalesces everything that arrived within the batch
window into one micro-batch, and runs one ``session.refresh()`` per
batch in a worker thread so the event loop keeps serving reads.

Deduplication happens on the **raw statement text** — sha256 of the SQL
bytes — before any parsing:

* a hash the daemon has already extracted is a *duplicate*: it is
  answered from bookkeeping alone and never reaches the parser (this is
  the cheap path that makes duplicate-heavy workloads an order of
  magnitude faster than unique ones);
* the same hash submitted twice inside one micro-batch (two concurrent
  clients racing the same statement) is *coalesced*: one extraction,
  both requests get the answer;
* a known view name arriving with new text is a *redefinition*: the old
  hash is forgotten so the old text would extract again if resubmitted.

Failure domain: a micro-batch is atomic.  If any statement in it fails
to extract, the whole batch fails, every request that contributed a
novel statement gets the error, and the published snapshot is unchanged
(the session only adopts a result on success).  Duplicate-only requests
are answered before extraction starts and are unaffected.
"""

import asyncio
import hashlib


_SHUTDOWN = object()


def statement_hash(sql):
    """The dedupe key: sha256 hex digest of the raw statement text."""
    return hashlib.sha256(sql.encode("utf-8")).hexdigest()


class _PendingRequest:
    """One awaiting ``POST /extract`` call: its statements and its future."""

    __slots__ = ("statements", "future")

    def __init__(self, statements, future):
        self.statements = statements  # [(name, sql, hash)] in request order
        self.future = future


class IngestBatcher:
    """Serialises all graph writes into hash-deduped micro-batches."""

    def __init__(self, session, snapshots, executor=None, batch_window=0.010):
        self._session = session
        self._snapshots = snapshots
        self._executor = executor
        self._batch_window = batch_window
        self._queue = asyncio.Queue()
        self._task = None
        self._stopping = False
        # hash -> view name for every statement the daemon has extracted,
        # and the inverse so a redefinition can retire its old hash
        self._known = {}
        self._name_hash = {}
        self.counters = {
            "requests": 0,
            "statements": 0,
            "extracted": 0,
            "duplicate": 0,
            "coalesced": 0,
            "batches": 0,
            "batch_failures": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self):
        """Drain queued work, then stop the ingest task."""
        if self._task is None:
            return
        self._stopping = True
        await self._queue.put(_SHUTDOWN)
        await self._task
        self._task = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    async def submit(self, statements):
        """Queue ``{name: sql}`` for extraction; await the batch outcome.

        Returns ``{"statements": [...], "snapshot_version": int, ...}``
        with a per-statement status (``extracted`` / ``duplicate`` /
        ``coalesced``), or raises the batch's extraction error.
        """
        if self._stopping:
            raise RuntimeError("server is shutting down")
        hashed = [
            (str(name), sql, statement_hash(sql)) for name, sql in statements.items()
        ]
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_PendingRequest(hashed, future))
        return await future

    # ------------------------------------------------------------------
    # ingest loop
    # ------------------------------------------------------------------
    async def _run(self):
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            pending = [item]
            done = False
            deadline = loop.time() + self._batch_window
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if extra is _SHUTDOWN:
                    done = True
                    break
                pending.append(extra)
            await self._process(pending)
            if done:
                break

    async def _process(self, pending):
        """Assemble one micro-batch from ``pending`` requests and run it."""
        changes = {}          # name -> sql: the novel statements to extract
        batch_hashes = {}     # hash -> name, for intra-batch coalescing
        waiting = []          # requests that contributed novel statements
        statuses = {}         # id(request) -> per-statement status rows
        for request in pending:
            rows = []
            novel = False
            for name, sql, digest in request.statements:
                self.counters["statements"] += 1
                if digest in self._known:
                    status = "duplicate"
                    self.counters["duplicate"] += 1
                elif digest in batch_hashes:
                    status = "coalesced"
                    self.counters["coalesced"] += 1
                    novel = True  # outcome depends on this batch
                else:
                    status = "extracted"
                    self.counters["extracted"] += 1
                    batch_hashes[digest] = name
                    changes[name] = sql
                    novel = True
                rows.append({"name": name, "status": status, "hash": digest[:12]})
            self.counters["requests"] += 1
            statuses[id(request)] = rows
            if novel:
                waiting.append(request)
            else:
                # pure-duplicate request: answered without touching the
                # parser or waiting for the batch — the dedupe fast path
                request.future.set_result(
                    self._result_payload(rows, report=None)
                )

        if not waiting:
            return

        self.counters["batches"] += 1
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, self._session.refresh, changes
            )
        except Exception as error:  # noqa: BLE001 - batch failure domain
            self.counters["batch_failures"] += 1
            for request in waiting:
                if not request.future.done():
                    request.future.set_exception(
                        ExtractionFailed(
                            f"{type(error).__name__}: {error}", len(changes)
                        )
                    )
            return

        # adopt the batch: remember every novel hash, retire hashes of
        # redefined names, then publish before resolving so a client that
        # sees "extracted" can immediately read its lineage
        for digest, name in batch_hashes.items():
            previous = self._name_hash.get(name)
            if previous is not None and previous != digest:
                self._known.pop(previous, None)
            self._known[digest] = name
            self._name_hash[name] = digest
        report = getattr(result, "report", None)
        snapshot = self._snapshots.publish(
            result.graph, statement_names=sorted(self._name_hash)
        )
        for request in waiting:
            if not request.future.done():
                request.future.set_result(
                    self._result_payload(
                        statuses[id(request)], report, snapshot.version
                    )
                )

    def _result_payload(self, rows, report, version=None):
        payload = {
            "statements": rows,
            "snapshot_version": (
                version if version is not None else self._snapshots.version
            ),
        }
        if report is not None:
            payload["batch"] = {
                "extracted": len(getattr(report, "order", ()) or ()),
                "reused_from_memory": len(getattr(report, "reused", ()) or ()),
                "reused_from_store": len(
                    getattr(report, "reused_from", {}) or {}
                ),
                "unresolved": sorted(getattr(report, "unresolved", ()) or ()),
            }
        return payload

    def stats(self):
        counters = dict(self.counters)
        total = counters["statements"]
        skipped = counters["duplicate"] + counters["coalesced"]
        counters["dedupe_ratio"] = round(skipped / total, 4) if total else 0.0
        counters["known_statements"] = len(self._known)
        counters["queue_depth"] = self._queue.qsize()
        return counters


class ExtractionFailed(RuntimeError):
    """A micro-batch failed; carries how many statements it contained."""

    def __init__(self, message, batch_size):
        super().__init__(message)
        self.batch_size = batch_size
