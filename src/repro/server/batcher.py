"""The ingest side of the daemon: hash-deduped, journaled, fault-isolated.

All writes funnel through one :class:`IngestBatcher`.  ``POST /extract``
handlers call :meth:`submit` and await the result; a single ingest task
drains the queue, coalesces everything that arrived within the batch
window into one micro-batch, and runs one ``session.refresh()`` per
batch in a worker thread so the event loop keeps serving reads.

Deduplication keys on the **(view name, statement text)** pair — the
name plus a sha256 of the SQL bytes — before any parsing:

* a (name, hash) pair the daemon has already extracted is a
  *duplicate*: it is answered from bookkeeping alone and never reaches
  the parser (this is the cheap path that makes duplicate-heavy
  workloads an order of magnitude faster than unique ones);
* the same pair submitted twice inside one micro-batch (two concurrent
  clients racing the same statement) is *coalesced*: one extraction,
  both requests get the answer;
* a known view name arriving with new text is a *redefinition*: the new
  hash replaces the old one, so the old text would extract again if
  resubmitted.

The name is part of the key because the ``{name: sql}`` mapping can
legitimately carry the same text under two names (dbt-style passthrough
models are bare identical SELECTs): each name is its own view and must
extract, so only an exact (name, text) repeat is skippable.

Durability: when a :class:`~repro.server.journal.IngestJournal` is
attached, every *accepted novel* statement is appended and fsync'd
before extraction starts — a SIGKILL after the append loses nothing,
because boot replays the journal through :meth:`replay` (which submits
with ``journal=False``: those entries are already durable).  The journal
checkpoint advances after each batch publishes, which is what makes old
segments eligible for compaction.  A journal append that cannot be made
durable fails the batch with a *retryable* :class:`ExtractionFailed`
(the HTTP layer maps it to 503) — the daemon never acknowledges a
statement it could not journal.  Because journaling happens *before*
extraction, a statement that then quarantines is tombstoned in the
journal (:meth:`~repro.server.journal.IngestJournal.mark_quarantined`),
so replay and compaction fall back to the name's last *published*
definition instead of resurrecting text that never made it into the
graph; if the tombstone cannot be made durable, the checkpoint is held
below the quarantined offset so compaction cannot discard the fallback.

Failure domain: **per statement**, not per batch.  A micro-batch whose
refresh fails falls back to extracting each statement individually; the
failures land in the :class:`~repro.server.quarantine.Quarantine` (their
response rows carry status ``quarantined`` plus a structured error and a
backoff hint) while the survivors publish normally.  A pair still inside
its backoff window is rejected at classification time without burning a
parse.  Duplicate-only requests are answered before extraction starts
and are unaffected by any of this.

Overload: ``max_pending`` bounds the ingest queue — beyond it
:meth:`submit` sheds with :class:`OverloadedError` (503 + Retry-After on
the wire) instead of buffering unboundedly.  ``max_batch_statements``
splits oversized micro-batches into chunks that extract and publish
separately, so one giant request cannot stall the loop (readers see
intermediate snapshots, which is the point).
"""

import asyncio
import hashlib

from .journal import JournalError
from .quarantine import Quarantine
from ..testing import faults


_SHUTDOWN = object()


def statement_hash(sql):
    """sha256 hex digest of the raw statement text (half the dedupe key:
    the batcher pairs it with the view name)."""
    return hashlib.sha256(sql.encode("utf-8")).hexdigest()


class _PendingRequest:
    """One awaiting ``POST /extract`` call: its statements and its future."""

    __slots__ = ("statements", "future", "journal")

    def __init__(self, statements, future, journal=True):
        self.statements = statements  # [(name, sql, hash)] in request order
        self.future = future
        self.journal = journal        # False for preload/replay (already durable)


class IngestBatcher:
    """Serialises all graph writes into hash-deduped micro-batches."""

    def __init__(self, session, snapshots, executor=None, batch_window=0.010,
                 journal=None, quarantine=None, max_pending=0,
                 max_batch_statements=0):
        self._session = session
        self._snapshots = snapshots
        self._executor = executor
        self._batch_window = batch_window
        self._journal = journal
        self.quarantine = quarantine if quarantine is not None else Quarantine()
        self._max_pending = int(max_pending or 0)
        self._max_batch_statements = int(max_batch_statements or 0)
        self._queue = asyncio.Queue()
        self._task = None
        self._stopping = False
        # name -> hash of its current text, for every statement the
        # daemon has extracted; a redefinition overwrites its entry, so
        # the retired text is no longer a known pair
        self._name_hash = {}
        # journal offsets that quarantined but whose tombstone could not
        # be made durable yet: re-marked every batch, and the checkpoint
        # is clamped below them until the marks stick (compaction past an
        # unmarked poison offset would discard its fallback definition)
        self._unmarked_quarantined = set()
        self.counters = {
            "requests": 0,
            "statements": 0,
            "extracted": 0,
            "duplicate": 0,
            "coalesced": 0,
            "batches": 0,
            "batch_failures": 0,
            "batch_splits": 0,
            "quarantined": 0,
            "quarantine_blocked": 0,
            "shed": 0,
            "deadline_exceeded": 0,
            "journal_entries": 0,
            "journal_failures": 0,
            "replayed": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self):
        """Drain queued work, then stop the ingest task."""
        if self._task is None:
            return
        self._stopping = True
        await self._queue.put(_SHUTDOWN)
        await self._task
        self._task = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    async def submit(self, statements, journal=True):
        """Queue ``{name: sql}`` for extraction; await the batch outcome.

        Returns ``{"statements": [...], "snapshot_version": int, ...}``
        with a per-statement status (``extracted`` / ``duplicate`` /
        ``coalesced`` / ``quarantined``), or raises the batch's error.
        ``journal=False`` marks internal traffic (preload, journal
        replay) that must not be re-journaled and is never shed.
        """
        if self._stopping:
            raise RuntimeError("server is shutting down")
        if journal and self._max_pending and self._queue.qsize() >= self._max_pending:
            self.counters["shed"] += 1
            raise OverloadedError(
                f"ingest queue full ({self._max_pending} pending requests)",
                retry_after=self._retry_after_hint(),
            )
        hashed = [
            (str(name), sql, statement_hash(sql)) for name, sql in statements.items()
        ]
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_PendingRequest(hashed, future, journal))
        return await future

    async def replay(self, entries):
        """Feed journal entries ``[(offset, name, sql, hash)]`` back through
        ingest in offset order (not re-journaled).

        The whole journal goes in as ONE batch (last definition per name
        wins): nobody reads intermediate snapshots during boot, and a
        single batch extracts with full dependency context, so its store
        keys line up with the original ingest's and the replay splices
        warm instead of re-parsing.  Chunked replay was measured at ~5x
        slower on a 10k-statement journal for exactly that reason.

        A definition that quarantines during replay (a poison
        redefinition the crash caught journaled-but-unmarked) falls back
        to the name's next-most-recent journaled definition, so recovery
        converges on the last definition that actually *published*
        instead of losing the name from the graph entirely.
        """
        versions = {}  # name -> [sql, ...] in offset order (top = latest)
        for _offset, name, sql, _digest in entries:
            versions.setdefault(name, []).append(sql)
        total = 0
        batch = {name: stack[-1] for name, stack in versions.items()}
        while batch:
            result = await self.submit(batch, journal=False)
            total += len(batch)
            batch = {}
            for row in result["statements"]:
                if row["status"] != "quarantined":
                    continue
                stack = versions.get(row["name"])
                if stack:
                    stack.pop()  # the attempted (latest) version failed
                if stack:
                    batch[row["name"]] = stack[-1]
        self.counters["replayed"] += total
        return total

    def _retry_after_hint(self):
        """A Retry-After guess: roughly how long the backlog takes to drain."""
        depth = self._queue.qsize()
        return max(1.0, depth * max(self._batch_window, 0.001) * 2)

    # ------------------------------------------------------------------
    # ingest loop
    # ------------------------------------------------------------------
    async def _run(self):
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            pending = [item]
            done = False
            deadline = loop.time() + self._batch_window
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if extra is _SHUTDOWN:
                    done = True
                    break
                pending.append(extra)
            try:
                await self._process(pending)
            except Exception as error:  # noqa: BLE001 - loop must survive
                # a bug past the per-statement isolation (publish,
                # bookkeeping) must not kill the ingest task: fail this
                # batch's still-unresolved futures and keep serving
                self.counters["batch_failures"] += 1
                failure = ExtractionFailed(
                    f"{type(error).__name__}: {error}",
                    sum(len(request.statements) for request in pending),
                )
                for request in pending:
                    if not request.future.done():
                        request.future.set_exception(failure)
            if done:
                break

    async def _process(self, pending):
        """Assemble one micro-batch from ``pending`` requests and run it."""
        changes = {}          # name -> sql: the novel statements to extract
        batch_hashes = {}     # name -> hash staged by this batch (coalescing)
        journal_names = []    # staged names needing a journal entry, in order
        waiting = []          # requests that contributed novel statements
        statuses = {}         # id(request) -> per-statement status rows
        for request in pending:
            rows = []
            novel = False
            for name, sql, digest in request.statements:
                self.counters["statements"] += 1
                blocked = self.quarantine.blocked_for(name, digest)
                if blocked is not None:
                    # still in backoff: reject up front, no parse burned
                    entry = self.quarantine.get(name, digest)
                    self.counters["quarantine_blocked"] += 1
                    rows.append(
                        {
                            "name": name,
                            "status": "quarantined",
                            "hash": digest[:12],
                            "error": entry.error,
                            "retry_after_seconds": round(blocked, 3),
                        }
                    )
                    continue
                # the dedupe key is the (name, text) pair: identical text
                # under a different name is a distinct view, not a dupe
                if self._name_hash.get(name) == digest:
                    status = "duplicate"
                    self.counters["duplicate"] += 1
                elif batch_hashes.get(name) == digest:
                    status = "coalesced"
                    self.counters["coalesced"] += 1
                    novel = True  # outcome depends on this batch
                else:
                    status = "extracted"
                    self.counters["extracted"] += 1
                    if request.journal and name not in journal_names:
                        journal_names.append(name)
                    batch_hashes[name] = digest
                    changes[name] = sql
                    novel = True
                rows.append({"name": name, "status": status, "hash": digest[:12]})
            self.counters["requests"] += 1
            statuses[id(request)] = rows
            if novel:
                waiting.append(request)
            else:
                # pure-duplicate (or fully quarantine-blocked) request:
                # answered without touching the parser or waiting for the
                # batch — the dedupe fast path
                request.future.set_result(
                    self._result_payload(rows, report=None)
                )

        if not waiting:
            return

        self.counters["batches"] += 1
        loop = asyncio.get_running_loop()

        # ---- durability first: journal every accepted novel statement
        # (fsync'd) before any extraction work starts
        max_offset = None
        journal_offsets = {}  # name -> its journal offset this batch
        if self._journal is not None and journal_names:
            entries = [
                (name, changes[name], batch_hashes[name]) for name in journal_names
            ]
            try:
                offsets = await loop.run_in_executor(
                    self._executor, self._journal.append_batch, entries
                )
            except JournalError as error:
                # could not promise durability: refuse the whole batch
                # with a retryable error (503 on the wire) — never
                # acknowledge what the journal did not accept
                self.counters["journal_failures"] += 1
                self.counters["batch_failures"] += 1
                failure = ExtractionFailed(
                    f"journal append failed: {error}", len(changes), retryable=True
                )
                for request in waiting:
                    if not request.future.done():
                        request.future.set_exception(failure)
                return
            self.counters["journal_entries"] += len(offsets)
            journal_offsets = dict(zip(journal_names, offsets))
            max_offset = offsets[-1] if offsets else None

        # ---- extraction, chunked so one oversized batch cannot stall
        # the loop: each chunk refreshes, freezes, and publishes on its
        # own (readers see intermediate snapshots — by design).  Internal
        # batches (journal=False: boot replay, preload) are never split —
        # chunk boundaries change dependency context and store keys,
        # which is exactly what makes chunked replay ~5x slower (see
        # replay()), and nobody reads intermediate snapshots during boot.
        items = list(changes.items())
        size = self._max_batch_statements
        splittable = all(request.journal for request in waiting)
        if size and splittable and len(items) > size:
            chunks = [items[i:i + size] for i in range(0, len(items), size)]
            self.counters["batch_splits"] += len(chunks) - 1
        else:
            chunks = [items]

        failed = {}   # name -> {"error": payload, "retry_after_seconds": s}
        report = None
        for chunk in chunks:
            chunk_changes = dict(chunk)
            names = sorted(set(self._name_hash) | set(chunk_changes))
            try:
                # refresh AND freeze in the worker thread: freezing a
                # large graph copies the relation map and builds the
                # adjacency index, which would stall every read endpoint
                # if it ran on the event loop.  Only the reference swap
                # happens here.
                result, snapshot = await loop.run_in_executor(
                    self._executor, self._refresh_and_freeze, chunk_changes, names
                )
            except Exception:  # noqa: BLE001 - per-statement isolation
                # the chunk failed as a unit: isolate the poison by
                # extracting each statement individually
                await self._extract_individually(loop, chunk, batch_hashes, failed)
                continue
            report = getattr(result, "report", None)
            # publish, then adopt the chunk: remember every staged
            # (name, hash) pair — overwriting retires a redefined name's
            # old text.  Publish comes first (a client that sees
            # "extracted" can immediately read its lineage) and
            # bookkeeping second, so a failed install leaves no pair
            # falsely marked known.
            self._snapshots.install(snapshot)
            for name in chunk_changes:
                digest = batch_hashes[name]
                self._name_hash[name] = digest
                self.quarantine.clear(name, digest)

        if failed:
            self.counters["batch_failures"] += 1

        # ---- tombstone journaled statements that quarantined instead of
        # publishing: without the mark, replay's and compaction's
        # latest-per-name selection would resurrect the poison text and
        # lose the name's last published definition across a crash
        checkpoint_offset = max_offset
        if self._journal is not None:
            self._unmarked_quarantined.update(
                journal_offsets[name] for name in failed
                if name in journal_offsets
            )
            if self._unmarked_quarantined:
                try:
                    await loop.run_in_executor(
                        self._executor,
                        self._journal.mark_quarantined,
                        sorted(self._unmarked_quarantined),
                    )
                    self._unmarked_quarantined.clear()
                except JournalError:
                    self.counters["journal_failures"] += 1
            if self._unmarked_quarantined and checkpoint_offset is not None:
                # the marks are not durable yet: hold the checkpoint
                # below the oldest unmarked quarantined offset so
                # compaction cannot fold away the prior published
                # definition the name must fall back to on replay (the
                # offsets stay in the retry set until a mark sticks)
                checkpoint_offset = min(
                    checkpoint_offset, min(self._unmarked_quarantined) - 1
                )

        # ---- checkpoint after publish: everything journaled this batch
        # has been processed (extracted, or quarantined and durably
        # marked), so the journal prefix is eligible for compaction
        if self._journal is not None and checkpoint_offset is not None \
                and checkpoint_offset >= 0:
            try:
                await loop.run_in_executor(
                    self._executor, self._journal.checkpoint, checkpoint_offset
                )
            except JournalError:
                # checkpoint advance is an optimisation (compaction
                # eligibility); failing it loses nothing but disk
                self.counters["journal_failures"] += 1

        version = self._snapshots.version
        for request in waiting:
            if request.future.done():
                continue
            rows = statuses[id(request)]
            for row in rows:
                outcome = failed.get(row["name"])
                if outcome is not None and row["status"] in ("extracted", "coalesced"):
                    row["status"] = "quarantined"
                    row["error"] = outcome["error"]
                    row["retry_after_seconds"] = outcome["retry_after_seconds"]
            request.future.set_result(self._result_payload(rows, report, version))

    async def _extract_individually(self, loop, chunk, batch_hashes, failed):
        """Fallback path after a chunk refresh failed: one statement at a
        time, quarantining the failures and publishing the survivors."""
        survivors = False
        for name, sql in chunk:
            digest = batch_hashes[name]
            try:
                await loop.run_in_executor(self._executor, self._refresh_one, name, sql)
            except Exception as error:  # noqa: BLE001 - this IS the isolation
                payload = {"type": type(error).__name__, "message": str(error)}
                backoff = self.quarantine.record(name, digest, payload)
                self.counters["quarantined"] += 1
                failed[name] = {
                    "error": payload,
                    "retry_after_seconds": round(backoff, 3),
                }
                continue
            survivors = True
            self._name_hash[name] = digest
            self.quarantine.clear(name, digest)
        if survivors and self._session.result is not None:
            names = sorted(self._name_hash)
            graph = self._session.result.graph
            snapshot = await loop.run_in_executor(
                self._executor,
                lambda: self._snapshots.prepare(graph, statement_names=names),
            )
            self._snapshots.install(snapshot)

    def _refresh_one(self, name, sql):
        """Worker-thread single-statement refresh (the isolation unit)."""
        faults.fire("batcher.refresh")
        return self._session.refresh({name: sql})

    def _refresh_and_freeze(self, changes, statement_names):
        """Worker-thread half of a batch: extract, then freeze the result.

        Returns ``(refresh result, unpublished Snapshot)``; the ingest
        loop installs the snapshot with an atomic swap once bookkeeping
        is adopted.
        """
        faults.fire("batcher.refresh")
        result = self._session.refresh(changes)
        snapshot = self._snapshots.prepare(
            result.graph, statement_names=statement_names
        )
        return result, snapshot

    def _result_payload(self, rows, report, version=None):
        payload = {
            "statements": rows,
            "snapshot_version": (
                version if version is not None else self._snapshots.version
            ),
        }
        quarantined = sum(1 for row in rows if row["status"] == "quarantined")
        if quarantined:
            payload["quarantined"] = quarantined
        if report is not None:
            payload["batch"] = {
                "extracted": len(getattr(report, "order", ()) or ()),
                "reused_from_memory": len(getattr(report, "reused", ()) or ()),
                "reused_from_store": len(
                    getattr(report, "reused_from", {}) or {}
                ),
                "unresolved": sorted(getattr(report, "unresolved", ()) or ()),
            }
        return payload

    def stats(self):
        counters = dict(self.counters)
        total = counters["statements"]
        skipped = counters["duplicate"] + counters["coalesced"]
        counters["dedupe_ratio"] = round(skipped / total, 4) if total else 0.0
        counters["known_statements"] = len(self._name_hash)
        counters["queue_depth"] = self._queue.qsize()
        counters["max_pending"] = self._max_pending
        counters["max_batch_statements"] = self._max_batch_statements
        return counters


class ExtractionFailed(RuntimeError):
    """A micro-batch failed; carries how many statements it contained.

    ``retryable`` marks failures where the statements themselves are fine
    but the daemon could not process them right now (journal write
    failure) — the HTTP layer answers 503 instead of 500 for those.
    """

    def __init__(self, message, batch_size, retryable=False):
        super().__init__(message)
        self.batch_size = batch_size
        self.retryable = retryable


class OverloadedError(RuntimeError):
    """The ingest queue is full; carries a Retry-After hint in seconds."""

    def __init__(self, message, retry_after=1.0):
        super().__init__(message)
        self.retry_after = retry_after
