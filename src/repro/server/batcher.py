"""The ingest side of the daemon: hash-deduped micro-batched extraction.

All writes funnel through one :class:`IngestBatcher`.  ``POST /extract``
handlers call :meth:`submit` and await the result; a single ingest task
drains the queue, coalesces everything that arrived within the batch
window into one micro-batch, and runs one ``session.refresh()`` per
batch in a worker thread so the event loop keeps serving reads.

Deduplication keys on the **(view name, statement text)** pair — the
name plus a sha256 of the SQL bytes — before any parsing:

* a (name, hash) pair the daemon has already extracted is a
  *duplicate*: it is answered from bookkeeping alone and never reaches
  the parser (this is the cheap path that makes duplicate-heavy
  workloads an order of magnitude faster than unique ones);
* the same pair submitted twice inside one micro-batch (two concurrent
  clients racing the same statement) is *coalesced*: one extraction,
  both requests get the answer;
* a known view name arriving with new text is a *redefinition*: the new
  hash replaces the old one, so the old text would extract again if
  resubmitted.

The name is part of the key because the ``{name: sql}`` mapping can
legitimately carry the same text under two names (dbt-style passthrough
models are bare identical SELECTs): each name is its own view and must
extract, so only an exact (name, text) repeat is skippable.

Failure domain: a micro-batch is atomic.  If any statement in it fails
to extract, the whole batch fails, every request that contributed a
novel statement gets the error, and the published snapshot is unchanged
(the session only adopts a result on success).  Duplicate-only requests
are answered before extraction starts and are unaffected.
"""

import asyncio
import hashlib


_SHUTDOWN = object()


def statement_hash(sql):
    """sha256 hex digest of the raw statement text (half the dedupe key:
    the batcher pairs it with the view name)."""
    return hashlib.sha256(sql.encode("utf-8")).hexdigest()


class _PendingRequest:
    """One awaiting ``POST /extract`` call: its statements and its future."""

    __slots__ = ("statements", "future")

    def __init__(self, statements, future):
        self.statements = statements  # [(name, sql, hash)] in request order
        self.future = future


class IngestBatcher:
    """Serialises all graph writes into hash-deduped micro-batches."""

    def __init__(self, session, snapshots, executor=None, batch_window=0.010):
        self._session = session
        self._snapshots = snapshots
        self._executor = executor
        self._batch_window = batch_window
        self._queue = asyncio.Queue()
        self._task = None
        self._stopping = False
        # name -> hash of its current text, for every statement the
        # daemon has extracted; a redefinition overwrites its entry, so
        # the retired text is no longer a known pair
        self._name_hash = {}
        self.counters = {
            "requests": 0,
            "statements": 0,
            "extracted": 0,
            "duplicate": 0,
            "coalesced": 0,
            "batches": 0,
            "batch_failures": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())
        return self._task

    async def stop(self):
        """Drain queued work, then stop the ingest task."""
        if self._task is None:
            return
        self._stopping = True
        await self._queue.put(_SHUTDOWN)
        await self._task
        self._task = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    async def submit(self, statements):
        """Queue ``{name: sql}`` for extraction; await the batch outcome.

        Returns ``{"statements": [...], "snapshot_version": int, ...}``
        with a per-statement status (``extracted`` / ``duplicate`` /
        ``coalesced``), or raises the batch's extraction error.
        """
        if self._stopping:
            raise RuntimeError("server is shutting down")
        hashed = [
            (str(name), sql, statement_hash(sql)) for name, sql in statements.items()
        ]
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_PendingRequest(hashed, future))
        return await future

    # ------------------------------------------------------------------
    # ingest loop
    # ------------------------------------------------------------------
    async def _run(self):
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            pending = [item]
            done = False
            deadline = loop.time() + self._batch_window
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if extra is _SHUTDOWN:
                    done = True
                    break
                pending.append(extra)
            try:
                await self._process(pending)
            except Exception as error:  # noqa: BLE001 - loop must survive
                # a bug past the refresh guard (publish, bookkeeping)
                # must not kill the ingest task: fail this batch's
                # still-unresolved futures and keep serving
                self.counters["batch_failures"] += 1
                failure = ExtractionFailed(
                    f"{type(error).__name__}: {error}",
                    sum(len(request.statements) for request in pending),
                )
                for request in pending:
                    if not request.future.done():
                        request.future.set_exception(failure)
            if done:
                break

    async def _process(self, pending):
        """Assemble one micro-batch from ``pending`` requests and run it."""
        changes = {}          # name -> sql: the novel statements to extract
        batch_hashes = {}     # name -> hash staged by this batch (coalescing)
        waiting = []          # requests that contributed novel statements
        statuses = {}         # id(request) -> per-statement status rows
        for request in pending:
            rows = []
            novel = False
            for name, sql, digest in request.statements:
                self.counters["statements"] += 1
                # the dedupe key is the (name, text) pair: identical text
                # under a different name is a distinct view, not a dupe
                if self._name_hash.get(name) == digest:
                    status = "duplicate"
                    self.counters["duplicate"] += 1
                elif batch_hashes.get(name) == digest:
                    status = "coalesced"
                    self.counters["coalesced"] += 1
                    novel = True  # outcome depends on this batch
                else:
                    status = "extracted"
                    self.counters["extracted"] += 1
                    batch_hashes[name] = digest
                    changes[name] = sql
                    novel = True
                rows.append({"name": name, "status": status, "hash": digest[:12]})
            self.counters["requests"] += 1
            statuses[id(request)] = rows
            if novel:
                waiting.append(request)
            else:
                # pure-duplicate request: answered without touching the
                # parser or waiting for the batch — the dedupe fast path
                request.future.set_result(
                    self._result_payload(rows, report=None)
                )

        if not waiting:
            return

        self.counters["batches"] += 1
        loop = asyncio.get_running_loop()
        # on success every staged name is adopted, so the published name
        # list is the union — computed up front so the freeze can run in
        # the worker thread alongside the refresh
        names = sorted(set(self._name_hash) | set(batch_hashes))
        try:
            # refresh AND freeze in the worker thread: freezing a large
            # graph copies the relation map and builds the adjacency
            # index, which would stall every read endpoint if it ran on
            # the event loop.  Only the reference swap happens here.
            result, snapshot = await loop.run_in_executor(
                self._executor, self._refresh_and_freeze, changes, names
            )
        except Exception as error:  # noqa: BLE001 - batch failure domain
            self.counters["batch_failures"] += 1
            for request in waiting:
                if not request.future.done():
                    request.future.set_exception(
                        ExtractionFailed(
                            f"{type(error).__name__}: {error}", len(changes)
                        )
                    )
            return

        # publish, then adopt the batch: remember every staged
        # (name, hash) pair — overwriting retires a redefined name's old
        # text.  Publish comes first (a client that sees "extracted" can
        # immediately read its lineage) and bookkeeping second, so a
        # failed install leaves no pair falsely marked known.
        report = getattr(result, "report", None)
        self._snapshots.install(snapshot)
        self._name_hash.update(batch_hashes)
        for request in waiting:
            if not request.future.done():
                request.future.set_result(
                    self._result_payload(
                        statuses[id(request)], report, snapshot.version
                    )
                )

    def _refresh_and_freeze(self, changes, statement_names):
        """Worker-thread half of a batch: extract, then freeze the result.

        Returns ``(refresh result, unpublished Snapshot)``; the ingest
        loop installs the snapshot with an atomic swap once bookkeeping
        is adopted.
        """
        result = self._session.refresh(changes)
        snapshot = self._snapshots.prepare(
            result.graph, statement_names=statement_names
        )
        return result, snapshot

    def _result_payload(self, rows, report, version=None):
        payload = {
            "statements": rows,
            "snapshot_version": (
                version if version is not None else self._snapshots.version
            ),
        }
        if report is not None:
            payload["batch"] = {
                "extracted": len(getattr(report, "order", ()) or ()),
                "reused_from_memory": len(getattr(report, "reused", ()) or ()),
                "reused_from_store": len(
                    getattr(report, "reused_from", {}) or {}
                ),
                "unresolved": sorted(getattr(report, "unresolved", ()) or ()),
            }
        return payload

    def stats(self):
        counters = dict(self.counters)
        total = counters["statements"]
        skipped = counters["duplicate"] + counters["coalesced"]
        counters["dedupe_ratio"] = round(skipped / total, 4) if total else 0.0
        counters["known_statements"] = len(self._name_hash)
        counters["queue_depth"] = self._queue.qsize()
        return counters


class ExtractionFailed(RuntimeError):
    """A micro-batch failed; carries how many statements it contained."""

    def __init__(self, message, batch_size):
        super().__init__(message)
        self.batch_size = batch_size
