"""The serving daemon: one session, one ingest loop, many lock-free readers.

:class:`LineageApp` wires the pieces together:

* a sourceless :class:`~repro.session.LineageSession` (optionally backed
  by a persistent store via ``cache_dir``) owned exclusively by the
  ingest loop;
* an :class:`~repro.server.batcher.IngestBatcher` that hash-dedupes and
  micro-batches every ``POST /extract``;
* a :class:`~repro.server.snapshot.SnapshotManager` publishing an
  immutable graph generation after each successful batch, which every
  read endpoint serves from without locking;
* the minimal asyncio HTTP layer in :mod:`repro.server.http`.

Durability (PR 9): pass ``journal_dir`` and every accepted novel
statement is written to an :class:`~repro.server.journal.IngestJournal`
before extraction; :meth:`start` replays the journal through the normal
batching path before binding the socket, so a SIGKILL'd daemon restarts
to the graph it would have had uninterrupted.  Boot order is **preload
first, then replay**: journal entries postdate any corpus the daemon was
originally started with, so replay must win name redefinitions.

``python -m repro serve`` builds one of these and calls :meth:`run`,
which blocks until SIGINT/SIGTERM and then shuts down cleanly: stop
accepting connections, drain the ingest queue, release the store.  A
SIGTERM that lands *during* preload aborts the load and still exits 0 —
preload is never journaled (the corpus lives on disk already), so an
aborted load leaves no journal entry behind.
"""

import asyncio
import contextlib
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from .batcher import IngestBatcher
from .http import serve_connection
from .journal import IngestJournal
from .quarantine import Quarantine
from .routes import dispatch
from .snapshot import SnapshotManager
from ..core.lineage import LineageGraph
from ..session import LineageSession


class LineageApp:
    """The daemon's application object (transport-independent)."""

    def __init__(
        self,
        session=None,
        *,
        cache_dir=None,
        cache_shards=None,
        workers=None,
        executor="thread",
        catalog=None,
        strict=False,
        batch_window=0.010,
        journal_dir=None,
        journal_fsync=True,
        max_pending=0,
        request_timeout=None,
        max_batch_statements=0,
        quarantine=None,
    ):
        if session is None:
            session = LineageSession(
                catalog=catalog,
                strict=strict,
                workers=workers,
                executor=executor,
                cache_dir=cache_dir,
                cache_shards=cache_shards,
            )
        self.session = session
        self.workers = session.config.workers
        # reads already extracted state if the caller handed over a warm
        # session; otherwise start from an empty generation-0 graph so
        # every endpoint works before the first ingest
        initial = (
            session.result.graph if session.result is not None else LineageGraph()
        )
        self.snapshots = SnapshotManager(initial)
        # renders and refreshes both run here, off the event loop; two
        # extra threads keep a long render from queueing behind ingest
        self.executor = ThreadPoolExecutor(
            max_workers=3, thread_name_prefix="lineage-serve"
        )
        self.journal = (
            IngestJournal(journal_dir, fsync=journal_fsync)
            if journal_dir else None
        )
        self.request_timeout = (
            float(request_timeout) if request_timeout else None
        )
        self.batcher = IngestBatcher(
            session, self.snapshots, executor=self.executor,
            batch_window=batch_window,
            journal=self.journal,
            quarantine=quarantine if quarantine is not None else Quarantine(),
            max_pending=max_pending,
            max_batch_statements=max_batch_statements,
        )
        self._started = time.monotonic()
        self._server = None
        self._recovered = False

    def uptime(self):
        return time.monotonic() - self._started

    async def handle(self, request):
        """Dispatch one parsed request (the HTTP layer's callback)."""
        return await dispatch(self, request)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host="127.0.0.1", port=8765):
        """Start the ingest loop and bind the listening socket.

        Returns the bound ``(host, port)`` — pass ``port=0`` to let the
        OS pick a free one (tests and benchmarks do).  Journal recovery
        runs *before* the socket binds: a client can never observe the
        daemon missing statements it already acknowledged.
        """
        self.batcher.start()
        await self.recover()
        self._server = await asyncio.start_server(
            self._on_connection, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def recover(self):
        """Replay the journal through the normal ingest path (idempotent).

        Returns the number of statements replayed.  Replay submissions
        carry ``journal=False`` — the entries are already durable.
        """
        if self.journal is None or self._recovered:
            return 0
        self._recovered = True
        self.batcher.start()
        entries = await asyncio.get_running_loop().run_in_executor(
            self.executor, self.journal.replay_entries
        )
        if not entries:
            return 0
        return await self.batcher.replay(entries)

    async def _on_connection(self, reader, writer):
        await serve_connection(reader, writer, self.handle)

    async def preload(self, statements):
        """Ingest ``{name: sql}`` through the normal batching path.

        Used by ``serve INPUT`` to warm the daemon before it announces
        readiness; the statements register in the dedupe index exactly as
        if a client had POSTed them.  Preload is **not journaled**
        (``journal=False``): the corpus already lives on disk, so
        re-serving it after a crash is the caller's restart command, not
        the journal's job.
        """
        if statements:
            await self.batcher.submit(dict(statements), journal=False)

    async def stop(self):
        """Graceful shutdown: close the socket, drain ingest, release stores."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        self.executor.shutdown(wait=True)
        if self.journal is not None:
            self.journal.close()
        self.session.close()

    # ------------------------------------------------------------------
    # blocking entry point (the CLI's `serve` subcommand)
    # ------------------------------------------------------------------
    def run(self, host="127.0.0.1", port=8765, preload=None, out=None):
        """Serve until SIGINT/SIGTERM, then shut down cleanly."""
        out = out if out is not None else sys.stdout
        return asyncio.run(self._run(host, port, preload, out))

    async def _run(self, host, port, preload, out):
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops: Ctrl-C still raises KeyboardInterrupt
        try:
            self.batcher.start()
            if preload:
                count = len(preload)
                # race the load against shutdown: a SIGTERM mid-preload
                # must abort the load and still exit 0 (and since preload
                # is unjournaled, it leaves no journal entry behind)
                load = asyncio.ensure_future(self.preload(preload))
                interrupted = asyncio.ensure_future(stop_event.wait())
                await asyncio.wait(
                    {load, interrupted}, return_when=asyncio.FIRST_COMPLETED
                )
                interrupted.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await interrupted
                if stop_event.is_set() and not load.done():
                    load.cancel()
                    with contextlib.suppress(asyncio.CancelledError, Exception):
                        await load
                    print("shutting down", file=out, flush=True)
                    return 0
                await load  # done: propagate any preload error
                print(f"preloaded {count} statements", file=out, flush=True)
            bound_host, bound_port = await self.start(host, port)
            # the readiness line: tests and scripts parse the bound port
            # from it, so keep the shape stable
            print(
                f"serving on http://{bound_host}:{bound_port}", file=out, flush=True
            )
            await stop_event.wait()
            print("shutting down", file=out, flush=True)
        finally:
            for signum in installed:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(signum)
            await self.stop()
        return 0
