"""The ingest write-ahead journal — what makes the daemon crash-safe.

The serving graph lives in memory; the persistent store is a *cache*
keyed by content hash, not a record of what the daemon has been asked to
serve.  Before this module, a SIGKILL mid-batch lost every accepted
statement since boot.  The journal closes that gap: every novel
statement an ``/extract`` batch accepts is appended here — name,
canonical text, content hash, a monotonic offset, and a CRC — flushed
and ``fsync``'d *before* extraction starts.  A restarted daemon replays
the journal through the normal batcher and arrives at a graph
byte-identical to an uninterrupted run (the store makes the replay warm,
so recovery is splice-speed, not parse-speed).

On-disk layout (inside ``--journal-dir``):

* ``segment-<start-offset>.jsonl`` — append-only entry files, one JSON
  object per line: ``{"o": offset, "n": name, "h": sha256, "c": crc32,
  "s": sql}``.  A new segment opens every ``segment_max_entries``
  entries.  A torn final line (the crash landed mid-append) fails its
  CRC/JSON check and is discarded at replay — by construction only the
  tail of the newest segment can be torn, because entries before it were
  fsync'd.
* ``checkpoint.json`` — ``{"applied": offset}``, rewritten atomically
  (tmp + fsync + rename) after each snapshot publish.  Entries at or
  below the checkpoint were *published* before the crash; entries above
  it are the unapplied suffix.  Replay runs the whole journal (the graph
  is memory-only), but the checkpoint is what compaction and the
  SIGTERM-during-preload guarantee are measured against.
* ``quarantined.jsonl`` — offset tombstones (``{"q": offset, "c":
  crc}``) for journaled statements that *quarantined* instead of
  publishing.  The batcher journals before extraction, so a poison
  redefinition of a healthy name lands in the journal; without the
  tombstone, replay's and compaction's latest-per-name selection would
  shadow the name's last *published* definition with text that never
  made it into the graph.  Marked offsets are excluded from replay and
  from compaction survivors, and ``next_offset`` accounts for them so a
  compacted-away mark can never collide with a reused offset.  Lines
  are independent records: a torn mark line is skipped, not
  segment-ending, and a lost mark only costs a redundant replay attempt
  (the batcher re-quarantines and falls back; see
  :meth:`~repro.server.batcher.IngestBatcher.replay`).

Compaction: once every offset of a closed segment is at or below the
checkpoint (published, hence its extraction durable in the store), the
applied prefix is rewritten as one segment holding only the *latest*
entry per name — replaying latest-per-name yields the same final graph,
so dead redefinitions stop costing replay time and disk.  The rewrite is
crash-safe: the compacted segment is staged under a temporary name,
renamed into place, and only then are the superseded segments unlinked;
a crash between rename and unlink leaves overlapping segments, which
replay tolerates by deduplicating on offset.

Failure semantics: an append that cannot be made durable raises
:class:`JournalWriteError`; the batcher fails that batch with a
*retryable* error (HTTP 503) and the daemon keeps serving — reads and
duplicate-answering never touch the journal.  A *partial* append
failure (ENOSPC mid-flush) may leave torn bytes inside the active
segment; because replay stops a segment at its first invalid line,
later durable entries written after that tear would be silently lost.
So a failed append repairs the segment before the journal accepts
anything else: the file is truncated back to its last fsync'd length,
and if even that fails the segment is abandoned (the next append
rotates) with ``next_offset`` advanced past every offset a torn line
could claim — an abandoned segment's completed-but-unacknowledged lines
may replay, which is sound because the client got a 503 and retries
(dedupe absorbs the overlap), while acknowledged entries always land in
a clean segment that replay reads in full.
"""

import json
import os
import zlib

from ..testing import faults

#: default entries per segment before rotation.
SEGMENT_MAX_ENTRIES = 1024

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"
_CHECKPOINT = "checkpoint.json"
_QUARANTINED = "quarantined.jsonl"


class JournalError(Exception):
    """Base class for journal failures."""


class JournalWriteError(JournalError):
    """An append or checkpoint could not be made durable."""


def _entry_crc(offset, name, digest, sql):
    payload = f"{offset}\x00{name}\x00{digest}\x00{sql}".encode("utf-8")
    return zlib.crc32(payload) & 0xFFFFFFFF


def _mark_crc(offset):
    return zlib.crc32(str(int(offset)).encode("utf-8")) & 0xFFFFFFFF


def _segment_name(start_offset):
    return f"{_SEGMENT_PREFIX}{start_offset:016d}{_SEGMENT_SUFFIX}"


class IngestJournal:
    """Append-only, fsync'd, checkpointed record of accepted statements.

    Parameters
    ----------
    directory:
        Where segments and the checkpoint live (created if missing).
    segment_max_entries:
        Rotation threshold; small values are useful in tests.
    fsync:
        ``False`` skips the per-batch ``os.fsync`` (benchmark ablation
        only — a journal that is not fsync'd does not survive power
        loss, though it still survives SIGKILL).
    """

    def __init__(self, directory, segment_max_entries=SEGMENT_MAX_ENTRIES,
                 fsync=True):
        self.directory = os.fspath(directory)
        self.segment_max_entries = max(1, int(segment_max_entries))
        self.use_fsync = bool(fsync)
        os.makedirs(self.directory, exist_ok=True)
        self._handle = None           # open append handle of the active segment
        self._segment_path = None
        self._segment_entries = 0     # entries in the active segment
        self._synced_size = 0         # fsync'd byte length of the active segment
        self.appended = 0             # entries appended by THIS process
        self.compactions = 0
        entries = self._scan()
        self._entries_on_disk = len(entries)
        self._quarantined = self._read_marks()
        # next_offset clears the marks too: a mark may outlive its entry
        # (compaction GC is best-effort), and a reused marked offset
        # would wrongly exclude a fresh entry from replay
        top = max(entries) if entries else -1
        if self._quarantined:
            top = max(top, max(self._quarantined))
        self.next_offset = top + 1
        self.applied_offset = self._read_checkpoint()

    # ------------------------------------------------------------------
    # disk scanning
    # ------------------------------------------------------------------
    def _segment_paths(self):
        try:
            names = sorted(
                name
                for name in os.listdir(self.directory)
                if name.startswith(_SEGMENT_PREFIX)
                and name.endswith(_SEGMENT_SUFFIX)
            )
        except OSError:
            return []
        return [os.path.join(self.directory, name) for name in names]

    def _read_segment(self, path):
        """``{offset: (name, sql, hash)}`` for one segment file.

        A line that fails JSON or CRC validation ends the segment: only a
        torn tail can produce one, and nothing after a torn write is
        trustworthy.
        """
        entries = {}
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        offset = int(record["o"])
                        name = record["n"]
                        digest = record["h"]
                        sql = record["s"]
                        crc = int(record["c"])
                    except (ValueError, KeyError, TypeError):
                        break
                    if _entry_crc(offset, name, digest, sql) != crc:
                        break
                    entries[offset] = (name, sql, digest)
        except OSError:
            return {}
        return entries

    def _scan(self):
        """Every valid entry on disk: ``{offset: (name, sql, hash)}``.

        Offsets are deduplicated (first segment wins) so an interrupted
        compaction — compacted segment renamed in, old segments not yet
        unlinked — replays each offset exactly once.
        """
        entries = {}
        for path in self._segment_paths():
            for offset, entry in self._read_segment(path).items():
                entries.setdefault(offset, entry)
        return entries

    def _read_checkpoint(self):
        try:
            with open(
                os.path.join(self.directory, _CHECKPOINT), "r", encoding="utf-8"
            ) as handle:
                payload = json.load(handle)
            return int(payload["applied"])
        except (OSError, ValueError, KeyError, TypeError):
            return -1

    def _read_marks(self):
        """The persisted quarantined-offset set.

        Mark lines are independent records (order and gaps carry no
        meaning), so an invalid line is skipped rather than ending the
        file the way a torn segment line would.
        """
        marks = set()
        try:
            with open(
                os.path.join(self.directory, _QUARANTINED), "r",
                encoding="utf-8", errors="replace",
            ) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        offset = int(record["q"])
                        crc = int(record["c"])
                    except (ValueError, KeyError, TypeError):
                        continue
                    if _mark_crc(offset) == crc:
                        marks.add(offset)
        except OSError:
            pass
        return marks

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------
    def _rotate(self):
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
        self._segment_path = os.path.join(
            self.directory, _segment_name(self.next_offset)
        )
        try:
            self._handle = open(self._segment_path, "a", encoding="utf-8")
            self._handle.seek(0, os.SEEK_END)
            self._synced_size = self._handle.tell()
        except OSError as error:
            self._handle = None
            raise JournalWriteError(
                f"cannot open journal segment {self._segment_path}: {error}"
            ) from error
        self._segment_entries = 0

    def append_batch(self, statements):
        """Durably append ``[(name, sql, hash)]``; returns their offsets.

        The entries are written, flushed, and fsync'd as one batch —
        extraction must not start until this returns.  Raises
        :class:`JournalWriteError` if durability cannot be promised.
        """
        if not statements:
            return []
        if self._handle is None or self._segment_entries >= self.segment_max_entries:
            self._rotate()
        offsets = []
        lines = []
        for name, sql, digest in statements:
            offset = self.next_offset + len(offsets)
            lines.append(
                json.dumps(
                    {
                        "o": offset,
                        "n": name,
                        "h": digest,
                        "c": _entry_crc(offset, name, digest, sql),
                        "s": sql,
                    },
                    sort_keys=True,
                )
            )
            offsets.append(offset)
        try:
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()
            faults.fire("journal.fsync")
            if self.use_fsync:
                os.fsync(self._handle.fileno())
            self._synced_size = self._handle.tell()
        except (OSError, ValueError, faults.InjectedFault) as error:
            self._discard_torn_tail(len(offsets))
            raise JournalWriteError(f"journal append failed: {error}") from error
        self.next_offset += len(offsets)
        self._segment_entries += len(offsets)
        self._entries_on_disk += len(offsets)
        self.appended += len(offsets)
        for _ in offsets:
            # one hit per durable entry: the crash suite kills the
            # process "at offset k" by counting these
            faults.fire("journal.append")
        return offsets

    def _discard_torn_tail(self, batch_size):
        """Repair the active segment after a failed append.

        The failed write may have left torn bytes in the file; durable
        entries appended after them would sit behind a line replay
        refuses, silently losing acknowledged work.  Truncating back to
        the last fsync'd length restores the "only the tail can be
        torn" invariant.  If even the truncate fails, the segment is
        abandoned — the handle is dropped so the next append rotates —
        and ``next_offset`` skips past every offset the failed batch
        could have written, so a torn-but-parseable line can never
        collide with a later acknowledged entry.
        """
        handle = self._handle
        if handle is None:
            return
        try:
            handle.truncate(self._synced_size)
            handle.flush()
            if self.use_fsync:
                os.fsync(handle.fileno())
        except (OSError, ValueError):
            try:
                handle.close()
            except (OSError, ValueError):
                pass
            self._handle = None
            self.next_offset += batch_size

    def mark_quarantined(self, offsets):
        """Durably tombstone journal offsets that quarantined instead of
        publishing; returns the offsets newly marked.

        Replay and compaction skip marked offsets, so a poison
        redefinition can never shadow a name's last *published*
        definition.  Raises :class:`JournalWriteError` when the marks
        cannot be made durable — the batcher then holds the checkpoint
        below the unmarked offsets so compaction cannot fold away the
        prior entry the name must fall back to.
        """
        fresh = sorted({int(offset) for offset in offsets} - self._quarantined)
        if not fresh:
            return []
        path = os.path.join(self.directory, _QUARANTINED)
        lines = [
            json.dumps({"c": _mark_crc(offset), "q": offset}, sort_keys=True)
            for offset in fresh
        ]
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
                handle.flush()
                if self.use_fsync:
                    os.fsync(handle.fileno())
        except (OSError, ValueError) as error:
            raise JournalWriteError(
                f"quarantine mark failed: {error}"
            ) from error
        self._quarantined.update(fresh)
        return fresh

    def quarantined_offsets(self):
        """The marked offsets (a copy; for stats and tests)."""
        return set(self._quarantined)

    def checkpoint(self, offset):
        """Record that every entry at or below ``offset`` was published."""
        if offset <= self.applied_offset:
            return
        path = os.path.join(self.directory, _CHECKPOINT)
        staging = path + ".tmp"
        try:
            with open(staging, "w", encoding="utf-8") as handle:
                json.dump({"version": 1, "applied": int(offset)}, handle)
                handle.write("\n")
                handle.flush()
                if self.use_fsync:
                    os.fsync(handle.fileno())
            os.replace(staging, path)
        except OSError as error:
            raise JournalWriteError(f"checkpoint failed: {error}") from error
        self.applied_offset = int(offset)
        self._maybe_compact()

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def replay_entries(self):
        """Every durable entry, offset order: ``[(offset, name, sql, hash)]``.

        The caller (daemon boot) feeds these through the normal batching
        path with journaling disabled — they are already durable.
        Offsets marked quarantined are excluded: those statements never
        published pre-crash, and replaying one would shadow the name's
        last good definition.
        """
        entries = self._scan()
        return [
            (offset, name, sql, digest)
            for offset, (name, sql, digest) in sorted(entries.items())
            if offset not in self._quarantined
        ]

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def _maybe_compact(self):
        """Fold fully-applied closed segments into one latest-per-name segment.

        Runs after a checkpoint advance.  Only segments that are (a) not
        the active append segment and (b) entirely at or below the
        checkpoint are eligible, and compaction only pays off once there
        is more than one of them or dead redefinitions dominate.
        """
        paths = self._segment_paths()
        eligible = []
        for path in paths:
            if path == self._segment_path:
                continue
            entries = self._read_segment(path)
            if not entries:
                eligible.append((path, entries))
                continue
            if max(entries) <= self.applied_offset:
                eligible.append((path, entries))
        if len(eligible) < 2:
            return
        merged = {}
        for _, entries in eligible:
            for offset, entry in entries.items():
                merged.setdefault(offset, entry)
        # quarantined entries never published: dropping them here is what
        # lets the name's last *published* definition win latest-per-name
        for offset in self._quarantined:
            merged.pop(offset, None)
        # latest entry per name survives, keyed back by its offset
        latest = {}
        for offset in sorted(merged):
            name, sql, digest = merged[offset]
            latest[name] = (offset, sql, digest)
        survivors = sorted(
            (offset, name, sql, digest)
            for name, (offset, sql, digest) in latest.items()
        )
        if not survivors:
            for path, _ in eligible:
                self._unlink(path)
            return
        start = survivors[0][0]
        target = os.path.join(self.directory, _segment_name(start))
        staging = target + ".compact"
        try:
            with open(staging, "w", encoding="utf-8") as handle:
                for offset, name, sql, digest in survivors:
                    handle.write(
                        json.dumps(
                            {
                                "o": offset,
                                "n": name,
                                "h": digest,
                                "c": _entry_crc(offset, name, digest, sql),
                                "s": sql,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                handle.flush()
                if self.use_fsync:
                    os.fsync(handle.fileno())
            os.replace(staging, target)
        except OSError:
            self._unlink(staging)
            return  # compaction is an optimisation; failing it changes nothing
        for path, _ in eligible:
            if path != target:
                self._unlink(path)
        self.compactions += 1
        remaining = self._scan()
        self._entries_on_disk = len(remaining)
        self._gc_marks(remaining)

    def _gc_marks(self, entries_on_disk):
        """Drop marks whose offsets compaction removed (best-effort).

        A stale mark is harmless — ``next_offset`` accounts for marks,
        so a compacted-away marked offset is never reused — which is
        what makes a failed rewrite safe to ignore.
        """
        live = self._quarantined & set(entries_on_disk)
        if live == self._quarantined:
            return
        path = os.path.join(self.directory, _QUARANTINED)
        staging = path + ".tmp"
        try:
            with open(staging, "w", encoding="utf-8") as handle:
                for offset in sorted(live):
                    handle.write(
                        json.dumps(
                            {"c": _mark_crc(offset), "q": offset},
                            sort_keys=True,
                        )
                        + "\n"
                    )
                handle.flush()
                if self.use_fsync:
                    os.fsync(handle.fileno())
            os.replace(staging, path)
        except OSError:
            self._unlink(staging)
            return
        self._quarantined = live

    @staticmethod
    def _unlink(path):
        try:
            os.remove(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    def stats(self):
        """Journal counters for ``/stats`` and the robustness benchmark."""
        return {
            "directory": self.directory,
            "next_offset": self.next_offset,
            "applied_offset": self.applied_offset,
            "entries_on_disk": self._entries_on_disk,
            "appended": self.appended,
            "segments": len(self._segment_paths()),
            "compactions": self.compactions,
            "quarantined_offsets": len(self._quarantined),
            "fsync": self.use_fsync,
        }

    def close(self):
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
