"""Poison-statement quarantine: bounded, backed-off, inspectable.

Before this module a single malformed statement failed its whole
micro-batch atomically — one bad dbt model in a 400-view corpus and
nothing publishes.  The quarantine replaces that failure domain with
per-statement isolation: when a statement fails to parse or extract, its
``(name, content-hash)`` pair lands here with a structured error and an
exponential backoff, the *rest* of the batch publishes normally, and the
failing request's response row says ``quarantined`` instead of the whole
request erroring.

Semantics:

* the key is the ``(name, hash)`` pair — the same dedupe key the batcher
  uses.  Fixing the SQL changes the hash, so a corrected resubmission is
  a fresh pair and extracts immediately; resubmitting the *same* broken
  text inside the backoff window is rejected up front (status
  ``quarantined``, with ``retry_after_seconds``) without burning a parse;
* backoff doubles per failure (``base * 2**(failures-1)``, capped), so a
  client hammering a poison statement converges to the cap instead of
  re-parsing on every batch.  After the window expires the pair may try
  again — a transiently failing statement (injected fault, store hiccup)
  clears itself on its first success;
* the table is bounded: beyond ``max_entries`` the entry with the oldest
  failure is evicted (its statement simply gets a fresh trial on
  resubmission), so hostile input cannot grow daemon memory;
* ``GET /quarantine`` renders :meth:`rows` — everything an operator
  needs to see what is stuck and why.

The table is only touched from the ingest loop (classification) and its
worker thread boundary, which the batcher serialises — no lock needed.
"""

import time

#: first-failure backoff, seconds.
BACKOFF_BASE = 1.0
#: backoff ceiling, seconds.
BACKOFF_CAP = 60.0
#: default table bound.
MAX_ENTRIES = 256


class QuarantineEntry:
    """One poisoned ``(name, hash)`` pair and its failure history."""

    __slots__ = ("name", "digest", "error", "failures", "first_failure",
                 "last_failure", "blocked_until")

    def __init__(self, name, digest, error, now):
        self.name = name
        self.digest = digest
        self.error = error            # {"type": ..., "message": ...}
        self.failures = 0
        self.first_failure = now
        self.last_failure = now
        self.blocked_until = now


class Quarantine:
    """Bounded table of poisoned statements with exponential backoff."""

    def __init__(self, max_entries=MAX_ENTRIES, backoff_base=BACKOFF_BASE,
                 backoff_cap=BACKOFF_CAP, clock=time.monotonic):
        self.max_entries = max(1, int(max_entries))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self._clock = clock
        self._entries = {}   # (name, digest) -> QuarantineEntry
        self.counters = {"recorded": 0, "blocked": 0, "cleared": 0, "evicted": 0}

    def __len__(self):
        return len(self._entries)

    def get(self, name, digest):
        return self._entries.get((name, digest))

    # ------------------------------------------------------------------
    def blocked_for(self, name, digest, now=None):
        """Seconds until ``(name, digest)`` may retry, or ``None`` if free.

        Free means unknown *or* backoff expired — an expired entry stays
        in the table (its failure count keeps compounding if it fails
        again) but no longer blocks submission.
        """
        entry = self._entries.get((name, digest))
        if entry is None:
            return None
        now = self._clock() if now is None else now
        remaining = entry.blocked_until - now
        if remaining <= 0:
            return None
        self.counters["blocked"] += 1
        return remaining

    def record(self, name, digest, error, now=None):
        """Register a failure; returns the backoff applied (seconds)."""
        now = self._clock() if now is None else now
        key = (name, digest)
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.max_entries:
                self._evict_oldest()
            entry = self._entries[key] = QuarantineEntry(name, digest, error, now)
        entry.failures += 1
        entry.error = error
        entry.last_failure = now
        backoff = min(
            self.backoff_base * (2 ** (entry.failures - 1)), self.backoff_cap
        )
        entry.blocked_until = now + backoff
        self.counters["recorded"] += 1
        return backoff

    def clear(self, name, digest):
        """Drop the pair after a successful extraction (no-op if unknown)."""
        if self._entries.pop((name, digest), None) is not None:
            self.counters["cleared"] += 1

    def _evict_oldest(self):
        oldest = min(self._entries.values(), key=lambda entry: entry.last_failure)
        del self._entries[(oldest.name, oldest.digest)]
        self.counters["evicted"] += 1

    # ------------------------------------------------------------------
    def rows(self, now=None):
        """The table as JSON-ready rows (``GET /quarantine``)."""
        now = self._clock() if now is None else now
        rows = []
        for entry in sorted(
            self._entries.values(), key=lambda item: (item.name, item.digest)
        ):
            rows.append(
                {
                    "name": entry.name,
                    "hash": entry.digest[:12],
                    "error": entry.error,
                    "failures": entry.failures,
                    "retry_after_seconds": round(
                        max(0.0, entry.blocked_until - now), 3
                    ),
                    "age_seconds": round(max(0.0, now - entry.first_failure), 3),
                }
            )
        return rows

    def stats(self):
        payload = dict(self.counters)
        payload["entries"] = len(self._entries)
        payload["max_entries"] = self.max_entries
        return payload
