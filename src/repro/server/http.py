"""A minimal asyncio HTTP/1.1 layer — just enough protocol for the daemon.

The serving daemon needs exactly four things from HTTP: parse a request
line + headers + optional body, answer with a status + content type +
body, keep connections alive so a client loop is not paying a TCP
handshake per query, and fail closed on malformed or oversized input.
The standard library has servers (``http.server``) but none that are
asyncio-native, and the hard dependencies budget for this repository is
zero — so this module implements the subset directly on
``asyncio.StreamReader``/``StreamWriter``.

Deliberate non-goals: TLS, chunked transfer encoding, pipelining beyond
what serialised request/response handling gives for free, multipart
bodies.  Requests using them get a clean 4xx/close instead of undefined
behaviour.
"""

import json
from urllib.parse import parse_qs, unquote, urlsplit

#: requests with bodies beyond this are rejected with 413 (a 100k-statement
#: corpus in JSON is ~30 MB; 64 MB leaves comfortable headroom while still
#: bounding a hostile or broken client).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: request line + headers must fit in this budget.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequestError(ValueError):
    """The bytes on the wire are not a request this server accepts."""


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(self, method, path, query, headers, body, keep_alive):
        self.method = method
        self.path = path
        self.query = query          # {name: first value} (decoded)
        self.headers = headers      # {lowercase-name: value}
        self.body = body            # bytes
        self.keep_alive = keep_alive

    def json(self):
        """The body decoded as JSON (:class:`BadRequestError` on failure)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from None


class Response:
    """One response: status + body bytes + content type (+ extra headers)."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(self, status, body=b"", content_type="text/plain; charset=utf-8",
                 headers=None):
        self.status = int(status)
        self.body = body if isinstance(body, bytes) else str(body).encode("utf-8")
        self.content_type = content_type
        self.headers = dict(headers) if headers else None

    @classmethod
    def json(cls, payload, status=200, headers=None):
        """A JSON response (the daemon's default shape)."""
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        return cls(status, body, "application/json; charset=utf-8", headers=headers)

    @classmethod
    def error(cls, status, message, headers=None):
        """A JSON error envelope: ``{"error": message}``."""
        return cls.json({"error": str(message)}, status=status, headers=headers)

    def encode(self, keep_alive, head_only=False):
        """Serialise status line + headers + body to wire bytes.

        ``head_only`` answers a HEAD request: Content-Length still
        advertises the GET body size (per RFC 9110) but no body bytes go
        on the wire — a compliant client won't read them, and leftover
        bytes would desync the next request on a keep-alive connection.
        """
        reason = _REASONS.get(self.status, "Unknown")
        extra = ""
        if self.headers:
            extra = "".join(
                f"{name}: {value}\r\n" for name, value in self.headers.items()
            )
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            "\r\n"
        )
        encoded = head.encode("latin-1")
        return encoded if head_only else encoded + self.body


async def read_request(reader):
    """Parse one request from ``reader``; ``None`` on a clean EOF.

    Raises :class:`BadRequestError` for malformed input (the connection
    handler answers 400 and closes) and lets transport errors
    (``ConnectionResetError``, ``asyncio.IncompleteReadError`` mid-message)
    propagate to be treated as a dropped client.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except NotImplementedError:  # pragma: no cover - defensive
        raise
    except Exception as error:
        # EOF before any byte = client done with a keep-alive connection
        partial = getattr(error, "partial", None)
        if partial is not None and not partial:
            return None
        if partial:
            raise BadRequestError("truncated request head") from None
        limit_error = error.__class__.__name__ == "LimitOverrunError"
        if limit_error:
            raise BadRequestError("request head too large") from None
        raise
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequestError("request head too large")

    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 cannot fail
        raise BadRequestError("undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequestError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts

    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise BadRequestError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise BadRequestError("chunked transfer encoding is not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequestError(f"bad Content-Length: {length_text!r}") from None
        if length < 0:
            raise BadRequestError(f"bad Content-Length: {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise BadRequestError("request body too large")
        if length:
            body = await reader.readexactly(length)

    split = urlsplit(target)
    query = {
        name: values[0]
        for name, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    # HTTP/1.1 defaults to keep-alive; "Connection: close" opts out
    keep_alive = version != "HTTP/1.0"
    connection = headers.get("connection", "").lower()
    if connection == "close":
        keep_alive = False
    elif connection == "keep-alive":
        keep_alive = True
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


async def serve_connection(reader, writer, dispatch):
    """Drive one client connection: read, dispatch, respond, repeat.

    ``dispatch`` is an async callable ``(Request) -> Response``.  A
    handler exception becomes a 500 (the connection survives); a protocol
    violation becomes a 400 and closes the connection; a transport error
    just drops the client.
    """
    try:
        while True:
            try:
                request = await read_request(reader)
            except BadRequestError as error:
                writer.write(Response.error(400, error).encode(keep_alive=False))
                await writer.drain()
                break
            if request is None:
                break
            try:
                response = await dispatch(request)
            except BadRequestError as error:
                response = Response.error(400, error)
            except Exception as error:  # noqa: BLE001 - the server must survive
                response = Response.error(500, f"{type(error).__name__}: {error}")
            keep_alive = request.keep_alive
            writer.write(
                response.encode(
                    keep_alive=keep_alive, head_only=request.method == "HEAD"
                )
            )
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionError, TimeoutError, OSError):
        pass
    except Exception:  # noqa: BLE001 - incomplete reads etc. = dropped client
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
