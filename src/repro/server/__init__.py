"""Lineage-as-a-service: the asyncio serving daemon.

Start it from the command line::

    python -m repro serve --cache-dir .lineage-cache --workers 4

or embed it::

    from repro.server import LineageApp

    app = LineageApp(cache_dir=".lineage-cache")
    app.run(host="127.0.0.1", port=8765)

Design in one paragraph: all writes (``POST /extract``) funnel through a
single micro-batching ingest loop that dedupes statements by content
hash before parsing and runs one incremental ``refresh()`` per batch on
a worker thread; after each successful batch an immutable frozen graph
snapshot is published by an atomic reference swap, and every read
endpoint (``/impact``, ``/ordering``, ``/render/{fmt}``, ``/stats``,
``/health``) serves from the snapshot it grabbed with no locks — a slow
render can neither block nor observe a half-applied ingest.
"""

from .app import LineageApp
from .batcher import IngestBatcher, statement_hash
from .http import Request, Response
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "IngestBatcher",
    "LineageApp",
    "Request",
    "Response",
    "Snapshot",
    "SnapshotManager",
    "statement_hash",
]
