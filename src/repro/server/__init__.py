"""Lineage-as-a-service: the asyncio serving daemon.

Start it from the command line::

    python -m repro serve --cache-dir .lineage-cache --workers 4 \
        --journal-dir .lineage-journal

or embed it::

    from repro.server import LineageApp

    app = LineageApp(cache_dir=".lineage-cache", journal_dir=".lineage-journal")
    app.run(host="127.0.0.1", port=8765)

Design in one paragraph: all writes (``POST /extract``) funnel through a
single micro-batching ingest loop that dedupes statements by content
hash before parsing, journals every accepted novel statement (fsync'd)
before extraction, and runs one incremental ``refresh()`` per batch on
a worker thread; after each successful batch an immutable frozen graph
snapshot is published by an atomic reference swap, and every read
endpoint (``/impact``, ``/ordering``, ``/render/{fmt}``, ``/stats``,
``/health``, ``/quarantine``) serves from the snapshot it grabbed with
no locks — a slow render can neither block nor observe a half-applied
ingest.  Poison statements quarantine individually instead of failing
their batch, overload sheds with 503 + Retry-After, and a SIGKILL'd
daemon replays its journal on restart to a byte-identical graph.
"""

from .app import LineageApp
from .batcher import (
    ExtractionFailed,
    IngestBatcher,
    OverloadedError,
    statement_hash,
)
from .http import Request, Response
from .journal import IngestJournal, JournalError, JournalWriteError
from .quarantine import Quarantine
from .snapshot import Snapshot, SnapshotManager

__all__ = [
    "ExtractionFailed",
    "IngestBatcher",
    "IngestJournal",
    "JournalError",
    "JournalWriteError",
    "LineageApp",
    "OverloadedError",
    "Quarantine",
    "Request",
    "Response",
    "Snapshot",
    "SnapshotManager",
    "statement_hash",
]
