"""A deterministic stand-in for the GPT-4o impact-analysis assistant.

Section IV of the paper compares LineageX against asking a state-of-the-art
LLM for an impact analysis, and reports a precise behaviour:

    "GPT-4o is able to correctly identify all contributing columns impacted
    by changes to ``page`` — specifically, the ``wpage`` columns in
    ``webinfo``, ``webact``, and ``info`` tables — but it is not able to
    reveal the columns that are referenced (not directly contributing to)
    in the SQL (such as the ``webact.wcid`` in the JOIN condition)."

Calling a hosted LLM is neither possible offline nor reproducible, so this
module simulates exactly that capability profile: the assistant reads the
SQL, builds a correct *contribution* graph (it "understands the code"), and
answers impact questions by following contribution edges only — never the
reference edges that encode join/filter/set-operation dependencies.  The
CMP-LLM benchmark quantifies the recall gap this causes.
"""

import networkx as nx

from ..core.column_refs import ColumnName
from ..core.runner import lineagex
from ..output.graph_ops import to_column_digraph


class SimulatedLLMAssistant:
    """Answers impact-analysis questions using contribution chains only."""

    def __init__(self, sql):
        self.sql = sql
        self._result = lineagex(sql)
        # The assistant's mental model: contribution edges only.
        self._digraph = to_column_digraph(self._result.graph, include_reference_edges=False)

    # ------------------------------------------------------------------
    def impacted_columns(self, column):
        """Columns the assistant reports as impacted by a change to ``column``.

        Follows contribution edges transitively (both directions are *not*
        mixed: this is a downstream analysis, like the paper's Step 4).
        """
        start = str(column if isinstance(column, ColumnName) else ColumnName.parse(column))
        if start not in self._digraph:
            return set()
        reachable = nx.descendants(self._digraph, start)
        return {ColumnName.parse(node) for node in reachable}

    def answer(self, column):
        """A short natural-language style answer (used by the example script)."""
        impacted = sorted(str(name) for name in self.impacted_columns(column))
        if not impacted:
            return (
                f"Changing {column} does not appear to affect any downstream column "
                "based on the provided SQL."
            )
        listed = ", ".join(impacted)
        return (
            f"Changing {column} affects the columns that are computed from it: {listed}. "
            "Columns that merely reference it in join or filter conditions are not included."
        )
