"""A SQLGlot-like single-statement baseline.

The paper (Section II) positions SQLGlot's lineage facility as scope-aware
within one statement but unable to "find the dependency across queries,
especially when there are ambiguities in table or column names".  This
baseline models that capability level: it reuses the LineageX extraction
rules for a *single* statement — correct CTE/subquery tracing, correct set
operation alignment, reference tracking — but runs every statement with an
empty schema provider, so:

* ``SELECT other_view.*`` cannot be expanded (wildcard output), because the
  other view's definition is never consulted;
* unprefixed columns with several candidate sources cannot be resolved with
  certainty and are attributed to every candidate;
* base-table column lists are never known beyond the columns a statement
  mentions explicitly.
"""

from ..core.extractor import LineageExtractor, SchemaProvider
from ..core.lineage import LineageGraph
from ..core.preprocess import preprocess
from ..sqlparser.dialect import normalize_name


class SingleFileBaseline:
    """LineageX's rule set without the cross-query Query Dictionary."""

    def __init__(self, strict=False):
        self.strict = strict
        self.graph = LineageGraph()

    def run(self, source):
        """Extract every statement in isolation and combine the results."""
        self.graph = LineageGraph()
        query_dictionary = preprocess(source)
        extractor = LineageExtractor(provider=SchemaProvider(), strict=self.strict)
        for entry in query_dictionary:
            lineage, _ = extractor.extract_statement(entry)
            self.graph.add(lineage)
        self._attach_base_tables(query_dictionary)
        return self.graph

    def _attach_base_tables(self, query_dictionary):
        view_names = {normalize_name(identifier) for identifier in query_dictionary.identifiers()}
        for lineage in list(self.graph):
            used = set()
            for sources in lineage.contributions.values():
                used |= sources
            used |= lineage.referenced
            for column_name in used:
                if column_name.table in view_names:
                    continue
                if column_name.column == "*":
                    self.graph.ensure_base_table(column_name.table)
                else:
                    self.graph.register_usage(column_name)
