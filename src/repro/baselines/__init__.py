"""Baseline lineage extractors used in the paper's comparisons.

* :mod:`repro.baselines.naive` -- a SQLLineage-like extractor: per-statement
  analysis with no cross-query inference, no ``C_ref`` tracking, wildcard
  ``table.*`` entries for unresolvable stars, and per-leaf output columns for
  set operations (reproducing the Figure 2 failure modes);
* :mod:`repro.baselines.singlefile` -- a SQLGlot-like extractor: correct
  scope handling inside a single statement, but still no cross-query
  metadata, so stars over other views stay wildcards;
* :mod:`repro.baselines.llm_sim` -- a deterministic stand-in for the GPT-4o
  impact-analysis assistant of Section IV: it finds contribution chains but
  misses referenced-only columns.
"""

from .naive import SQLLineageBaseline
from .singlefile import SingleFileBaseline
from .llm_sim import SimulatedLLMAssistant

__all__ = ["SQLLineageBaseline", "SingleFileBaseline", "SimulatedLLMAssistant"]
