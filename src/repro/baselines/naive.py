"""A SQLLineage-like baseline extractor.

The paper (Section I, Figure 2) describes how SQLLineage behaves on
Example 1:

* for the ``INTERSECT`` view ``webact`` it "erroneously includes four extra
  columns" — the output column list contains the projection names of *every*
  set-operation leaf, not just the leftmost one;
* for ``SELECT w.*`` in ``info`` it "would return an erroneous entry of
  ``webact.*`` to ``info.*`` while omitting the four correct columns",
  because without cross-query metadata the star cannot be expanded;
* columns referenced in join predicates or ``WHERE`` clauses are not
  tracked at all (no ``C_ref`` concept), so reference edges are absent.

This baseline reproduces exactly those behaviours on top of the same parser
substrate, so that the Figure 2 comparison benchmark can be regenerated
offline.  It is intentionally *not* a faithful port of the SQLLineage code
base — it is a model of the failure modes the paper documents.
"""

from ..core.column_refs import ColumnName
from ..core.lineage import LineageGraph, TableLineage
from ..core.preprocess import preprocess
from ..sqlparser import ast
from ..sqlparser.dialect import normalize_identifier, normalize_name


class SQLLineageBaseline:
    """Per-statement column lineage with no cross-query inference."""

    def __init__(self):
        self.graph = LineageGraph()

    # ------------------------------------------------------------------
    def run(self, source):
        """Extract lineage for every statement independently."""
        self.graph = LineageGraph()
        query_dictionary = preprocess(source)
        for entry in query_dictionary:
            lineage = self.extract_one(entry.identifier, entry.query, sql=entry.sql)
            self.graph.add(lineage)
        self._attach_base_tables(query_dictionary)
        return self.graph

    # ------------------------------------------------------------------
    def extract_one(self, identifier, query, sql=""):
        """Extract the lineage of a single statement (no outside knowledge)."""
        lineage = TableLineage(name=normalize_name(identifier), sql=sql)
        for leaf in self._leaves(query):
            alias_map = self._alias_map(leaf)
            for projection in leaf.projections:
                self._process_projection(projection, alias_map, lineage)
        return lineage

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _leaves(self, query):
        """Every SELECT block of the statement.

        Unlike LineageX, set-operation leaves are *not* aligned by position:
        each leaf's projections are treated as output columns of the result,
        which is what produces the four extra ``webact`` columns of Figure 2.
        """
        if isinstance(query, ast.SetOperation):
            for side in (query.left, query.right):
                for leaf in self._leaves(side):
                    yield leaf
        elif isinstance(query, ast.Select):
            yield query

    def _alias_map(self, select):
        """Map visible source names to real relation names (FROM clause only)."""
        alias_map = {}

        def visit(source):
            if isinstance(source, ast.Join):
                visit(source.left)
                visit(source.right)
            elif isinstance(source, ast.TableRef):
                relation = normalize_name(source.name.dotted())
                visible = normalize_identifier(source.alias) or relation.split(".")[-1]
                alias_map[visible] = relation
                alias_map.setdefault(relation.split(".")[-1], relation)
            elif isinstance(source, ast.SubquerySource):
                # derived tables are opaque to this baseline
                if source.alias:
                    alias_map[normalize_identifier(source.alias)] = normalize_identifier(
                        source.alias
                    )

        for source in select.from_sources:
            visit(source)
        # CTE names resolve to themselves (the baseline does not trace through)
        for cte in select.ctes:
            alias_map.setdefault(normalize_identifier(cte.name), normalize_identifier(cte.name))
        return alias_map

    def _process_projection(self, projection, alias_map, lineage):
        expression = projection.expression
        if isinstance(expression, ast.Star):
            self._process_star(expression, alias_map, lineage)
            return
        output = projection.output_name
        if output is None:
            return
        output = normalize_identifier(output)
        sources = self._column_refs(expression, alias_map)
        lineage.add_output_column(output)
        for source in sources:
            lineage.add_contribution(output, source)

    def _process_star(self, star, alias_map, lineage):
        """A star the baseline cannot expand becomes a ``table.* -> view.*`` entry."""
        if star.table is not None:
            relation = alias_map.get(
                normalize_identifier(star.table), normalize_name(star.table)
            )
            lineage.add_contribution("*", ColumnName.of(relation, "*"))
            return
        for relation in sorted(set(alias_map.values())):
            lineage.add_contribution("*", ColumnName.of(relation, "*"))

    def _column_refs(self, expression, alias_map):
        """Qualified column references inside a projection expression."""
        sources = set()

        def visit(node):
            if isinstance(node, ast.ColumnRef):
                qualifier = node.table
                if qualifier is None:
                    # Without metadata the baseline can only attribute
                    # unambiguous cases: a single source in scope.
                    relations = set(alias_map.values())
                    if len(relations) == 1:
                        sources.add(ColumnName.of(next(iter(relations)), node.name))
                    return
                relation = alias_map.get(
                    normalize_identifier(qualifier), normalize_name(qualifier)
                )
                sources.add(ColumnName.of(relation, node.name))
                return
            if isinstance(node, ast.QueryExpression):
                return  # subqueries are opaque
            for child in node.children():
                visit(child)

        if isinstance(expression, ast.Node):
            visit(expression)
        return sources

    def _attach_base_tables(self, query_dictionary):
        view_names = {normalize_name(identifier) for identifier in query_dictionary.identifiers()}
        for lineage in list(self.graph):
            for sources in lineage.contributions.values():
                for column_name in sources:
                    if column_name.table in view_names:
                        continue
                    if column_name.column == "*":
                        self.graph.ensure_base_table(column_name.table)
                    else:
                        self.graph.register_usage(column_name)
