"""Command-line interface.

The paper exposes LineageX as a one-call Python API; for pipeline and CI use
this module adds an equivalent command line:

.. code-block:: console

    $ python -m repro warehouse.sql --output out/
    $ python -m repro models/ --catalog schema.sql --impact web.page
    $ python -m repro customer.sql --format text
    $ python -m repro models/ --dbt --format json > lineage.json

Positional input: a ``.sql`` file, a directory of ``.sql`` files, or ``-``
for stdin.  The lineage graph can be written as JSON/HTML (``--output``) or
printed in one of several formats; ``--impact`` runs the Step 4 impact
analysis for a ``table.column`` and prints the affected columns.
"""

import argparse
import sys

from .analysis.impact import impact_report
from .catalog.introspect import catalog_from_sql
from .core.runner import lineagex
from .dbt.wrapper import lineagex_dbt


def build_parser():
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Extract column-level lineage from SQL query logs (LineageX reproduction).",
    )
    parser.add_argument(
        "input",
        help="a .sql file, a directory of .sql files, or '-' to read SQL from stdin",
    )
    parser.add_argument(
        "--catalog",
        metavar="DDL_FILE",
        help="CREATE TABLE script providing base-table schemas (optional)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="write lineagex.json and lineagex.html into this directory",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "dot", "html", "stats"],
        default="text",
        help="what to print to stdout (default: text)",
    )
    parser.add_argument(
        "--impact",
        metavar="TABLE.COLUMN",
        help="print the downstream impact analysis of this column",
    )
    parser.add_argument(
        "--upstream",
        metavar="TABLE.COLUMN",
        help="print the upstream lineage of this column",
    )
    parser.add_argument(
        "--dbt",
        action="store_true",
        help="treat the input directory as a dbt project (resolve ref()/source())",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on ambiguous column references instead of resolving conservatively",
    )
    parser.add_argument(
        "--no-stack",
        action="store_true",
        help="disable the auto-inference stack (ablation / debugging)",
    )
    parser.add_argument(
        "--mode",
        choices=["dag", "stack"],
        default="dag",
        help="scheduling mode: plan a dependency DAG and extract in "
        "topological waves (default) or use the purely reactive "
        "LIFO-deferral stack",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="in dag mode, extract independent queries of each wave on a "
        "thread pool of N workers (default: sequential; output is identical "
        "either way — on GIL-bound CPython builds expect little speedup)",
    )
    return parser


def _load_source(path):
    if path == "-":
        return sys.stdin.read()
    return path


def run(argv=None, stdout=None):
    """Entry point; returns the process exit code."""
    stdout = stdout if stdout is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)

    catalog = None
    if args.catalog:
        with open(args.catalog, "r", encoding="utf-8") as handle:
            catalog = catalog_from_sql(handle.read())

    source = _load_source(args.input)
    if args.dbt:
        result = lineagex_dbt(source, catalog=catalog, strict=args.strict,
                              output_dir=args.output)
    else:
        result = lineagex(
            source,
            catalog=catalog,
            strict=args.strict,
            use_stack=not args.no_stack,
            output_dir=args.output,
            mode=args.mode,
            workers=args.workers,
        )

    if args.impact:
        print(impact_report(result.graph, args.impact, direction="downstream"), file=stdout)
    elif args.upstream:
        print(impact_report(result.graph, args.upstream, direction="upstream"), file=stdout)
    elif args.format == "json":
        print(result.to_json(), file=stdout)
    elif args.format == "dot":
        print(result.to_dot(), file=stdout)
    elif args.format == "html":
        print(result.to_html(), file=stdout)
    elif args.format == "stats":
        for key, value in sorted(result.stats().items()):
            print(f"{key}: {value}", file=stdout)
    else:
        print(result.to_text(), file=stdout)

    if result.report.unresolved:
        for identifier, reason in result.report.unresolved.items():
            print(f"warning: could not resolve {identifier}: {reason}", file=sys.stderr)
        return 1
    return 0


def main():  # pragma: no cover - thin wrapper
    sys.exit(run())
