"""Command-line interface, rebuilt on the Session API.

Subcommand form (preferred):

.. code-block:: console

    $ python -m repro extract warehouse.sql --format markdown
    $ python -m repro extract logs/queries.jsonl --output out/
    $ python -m repro impact models/ web.page --catalog schema.sql
    $ python -m repro render models/ --format csv --out edges.csv
    $ python -m repro render --list-formats
    $ python -m repro refresh models/ --edit staging='CREATE VIEW staging AS ...'
    $ python -m repro extract models/ --cache-dir .lineage-cache
    $ python -m repro cache stats --cache-dir .lineage-cache
    $ python -m repro serve models/ --cache-dir .lineage-cache --port 8765

Every extraction subcommand accepts the shared extraction flags
(``--engine``, ``--catalog``, ``--strict``, ``--mode``, ``--workers``,
``--executor``, ``--cache-dir``, ...) and every ``--format`` value
resolves through the renderer registry, so formats added with
:func:`repro.output.register_renderer` are immediately available here.
The ``cache`` subcommand inspects and maintains a persistent lineage
store (``stats`` / ``clear`` / ``gc``).

The legacy flag form keeps working unchanged:

.. code-block:: console

    $ python -m repro warehouse.sql --output out/
    $ python -m repro models/ --catalog schema.sql --impact web.page
    $ python -m repro models/ --dbt --format json > lineage.json

Positional input: a ``.sql`` file, a directory of ``.sql`` files, a dbt
project, a ``.jsonl`` query log, or ``-`` for SQL on stdin (source kinds
are auto-detected; ``--dbt`` forces the dbt adapter).

Dispatch: a first argument equal to a subcommand name selects the
subcommand form; an input path that happens to be named like one can be
passed to the legacy form as ``./extract`` (any path spelling that is not
the bare name).
"""

import argparse
import sys

from . import __version__
from .analysis.impact import impact_report
from .analysis.selector import SelectorError, selector_impact
from .core.errors import UnknownColumnError
from .catalog.introspect import catalog_from_sql
from .output.registry import renderer_names
from .session import ENGINES, LineageSession, SessionConfig
from .sources import DbtSource, Source

SUBCOMMANDS = ("extract", "impact", "render", "refresh", "cache", "serve", "stream")


def _positive_int(text):
    """argparse type for ``--workers``: an integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"--workers must be >= 1 (a thread-pool size), got {value}"
        )
    return value


def _add_version(parser):
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )


def _add_extraction_options(parser):
    """The shared extraction flags (identical across all command forms)."""
    parser.add_argument(
        "--catalog",
        metavar="DDL_FILE",
        help="CREATE TABLE script providing base-table schemas (optional)",
    )
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="static",
        help="extraction engine: 'static' AST pipeline (default) or 'plan' "
        "database-connection mode (simulated EXPLAIN; needs --catalog for "
        "the base tables)",
    )
    parser.add_argument(
        "--dbt",
        action="store_true",
        help="treat the input directory as a dbt project (resolve ref()/source())",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on ambiguous column references instead of resolving conservatively",
    )
    parser.add_argument(
        "--no-stack",
        action="store_true",
        help="disable the auto-inference stack (ablation / debugging)",
    )
    parser.add_argument(
        "--collect-traces",
        action="store_true",
        help="record per-query extraction traces (rule firings)",
    )
    parser.add_argument(
        "--mode",
        choices=["dag", "stack"],
        default="dag",
        help="scheduling mode: plan a dependency DAG and extract in "
        "topological waves (default) or use the purely reactive "
        "LIFO-deferral stack",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        metavar="N",
        default=None,
        help="in dag mode, extract independent queries of each wave on a "
        "pool of N workers (default: sequential; output is identical "
        "either way — see --executor)",
    )
    parser.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="worker-pool backend for --workers: 'thread' (default; "
        "GIL-bound on stock CPython) or 'process' (uses the cores; "
        "byte-identical output, falls back to threads where process pools "
        "are unavailable)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent lineage store: splice unchanged statements from "
        "this directory's cache and persist new extractions (warm starts "
        "across runs; see the 'cache' subcommand for maintenance)",
    )
    parser.add_argument(
        "--cache-shards",
        type=_positive_int,
        metavar="N",
        default=None,
        help="shard a NEWLY created store at --cache-dir across N SQLite "
        "files routed by content-hash prefix (parallel warm-start reads, "
        "per-shard write transactions); an existing store keeps its "
        "layout — re-shard it with 'cache migrate'",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="bounded-memory extraction for very large corpora: release "
        "each statement's AST as soon as it is no longer needed and ship "
        "parallel waves as shard-routed batches (byte-identical output)",
    )


def build_parser():
    """The legacy flag-form argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Extract column-level lineage from SQL query logs (LineageX reproduction).",
        epilog="Subcommand form: repro {extract,impact,render,refresh} ... "
        "(see 'repro extract --help').",
    )
    _add_version(parser)
    parser.add_argument(
        "input",
        help="a .sql file, a directory of .sql files, a .jsonl query log, "
        "or '-' to read SQL from stdin",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="write lineagex.json and lineagex.html into this directory",
    )
    parser.add_argument(
        "--format",
        choices=renderer_names(),
        default="text",
        help="what to print to stdout (default: text)",
    )
    parser.add_argument(
        "--impact",
        metavar="TABLE.COLUMN",
        help="print the downstream impact analysis of this column",
    )
    parser.add_argument(
        "--upstream",
        metavar="TABLE.COLUMN",
        help="print the upstream lineage of this column",
    )
    _add_extraction_options(parser)
    return parser


def build_subcommand_parser():
    """The subcommand parser (``repro extract|impact|render|refresh|cache``)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Extract column-level lineage from SQL query logs (LineageX reproduction).",
    )
    _add_version(parser)
    commands = parser.add_subparsers(dest="command", required=True)

    extract = commands.add_parser(
        "extract", help="extract lineage and print/save it"
    )
    extract.add_argument("input", help="SQL file/dir, dbt project, .jsonl log, or '-'")
    extract.add_argument(
        "--format", choices=renderer_names(), default="text",
        help="what to print to stdout (default: text)",
    )
    extract.add_argument(
        "--output", metavar="DIR",
        help="write lineagex.json and lineagex.html into this directory",
    )
    _add_extraction_options(extract)
    extract.set_defaults(handler=_cmd_extract)

    impact = commands.add_parser(
        "impact", help="transitive impact analysis of one column or selector"
    )
    impact.add_argument("input", help="SQL file/dir, dbt project, .jsonl log, or '-'")
    impact.add_argument(
        "column", metavar="SELECTOR",
        help="a starting TABLE.COLUMN, or an InfoTracker-style selector: "
             "+name (upstream), name+ (downstream), +name+ (both), "
             "schema.table.* (every column of a relation)",
    )
    impact.add_argument(
        "--direction", choices=["downstream", "upstream"], default="downstream",
        help="traversal direction for plain TABLE.COLUMN starts "
             "(default: downstream; selectors encode their own direction)",
    )
    impact.add_argument(
        "--max-depth", type=_positive_int, metavar="N", default=None,
        help="limit the traversal to N hops from the start",
    )
    _add_extraction_options(impact)
    impact.set_defaults(handler=_cmd_impact)

    render = commands.add_parser(
        "render", help="render the lineage graph in any registered format"
    )
    render.add_argument(
        "input", nargs="?",
        help="SQL file/dir, dbt project, .jsonl log, or '-'",
    )
    render.add_argument(
        "--format", choices=renderer_names(), default="text",
        help="output format (default: text)",
    )
    render.add_argument(
        "--out", metavar="FILE",
        help="write the rendered document to FILE instead of stdout",
    )
    render.add_argument(
        "--list-formats", action="store_true",
        help="list the registered output formats and exit",
    )
    _add_extraction_options(render)
    render.set_defaults(handler=_cmd_render)

    refresh = commands.add_parser(
        "refresh",
        help="extract, apply query edits, and incrementally re-extract",
    )
    refresh.add_argument("input", help="SQL file/dir, dbt project, .jsonl log, or '-'")
    refresh.add_argument(
        "--edit", metavar="NAME=SQL", action="append", default=[],
        help="replace the named query with new SQL (prefix the value with @ "
        "to read it from a file; an empty value removes the query); "
        "repeatable",
    )
    refresh.add_argument(
        "--format", choices=renderer_names(), default="stats",
        help="what to print after the refresh (default: stats)",
    )
    _add_extraction_options(refresh)
    refresh.set_defaults(handler=_cmd_refresh)

    cache = commands.add_parser(
        "cache", help="inspect or maintain a persistent lineage store"
    )
    cache.add_argument(
        "action", choices=["stats", "clear", "gc", "migrate"],
        help="stats: print store counters; clear: delete every record; "
        "gc: evict stale records; migrate: re-shard the store in place "
        "(records and cache keys are preserved verbatim)",
    )
    cache.add_argument(
        "--cache-dir", metavar="DIR", required=True,
        help="the store directory (as passed to extract/refresh)",
    )
    cache.add_argument(
        "--max-age-days", type=float, metavar="DAYS", default=None,
        help="gc: drop records not used within this many days",
    )
    cache.add_argument(
        "--max-entries", type=_positive_int, metavar="N", default=None,
        help="gc: keep only the N most recently used lineage records",
    )
    cache.add_argument(
        "--shards", type=_positive_int, metavar="N", default=None,
        help="migrate: the target shard count (1 = back to a single file)",
    )
    cache.set_defaults(handler=_cmd_cache)

    serve = commands.add_parser(
        "serve",
        help="run the lineage serving daemon (HTTP/JSON over asyncio)",
    )
    serve.add_argument(
        "input", nargs="?",
        help="optional corpus to preload before announcing readiness: a "
        "directory of .sql files, a dbt project, or a .jsonl query log "
        "(any name-addressable source)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="port to bind; 0 picks a free one and prints it (default: 8765)",
    )
    serve.add_argument(
        "--catalog", metavar="DDL_FILE",
        help="CREATE TABLE script providing base-table schemas (optional)",
    )
    serve.add_argument(
        "--strict", action="store_true",
        help="fail ingest batches on ambiguous column references",
    )
    serve.add_argument(
        "--dbt", action="store_true",
        help="treat the preload input directory as a dbt project",
    )
    serve.add_argument(
        "--workers", type=_positive_int, metavar="N", default=None,
        help="worker-pool width for each ingest batch's DAG-wave extraction",
    )
    serve.add_argument(
        "--executor", choices=["thread", "process"], default="thread",
        help="worker-pool backend for --workers (see 'extract --help')",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent lineage store: ingest splices unchanged statements "
        "from it and persists new extractions (warm restarts)",
    )
    serve.add_argument(
        "--cache-shards", type=_positive_int, metavar="N", default=None,
        help="shard count for a NEWLY created store at --cache-dir",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, metavar="MS", default=10.0,
        help="how long the ingest loop gathers concurrent /extract requests "
        "into one micro-batch (default: 10 ms)",
    )
    serve.add_argument(
        "--journal-dir", metavar="DIR", default=None,
        help="ingest write-ahead journal: every accepted statement is "
        "fsync'd here before extraction, and a restarted daemon replays "
        "it to recover acknowledged-but-unpublished work (crash safety)",
    )
    serve.add_argument(
        "--no-journal-fsync", action="store_true",
        help="skip the per-batch fsync on the journal (benchmark ablation: "
        "still SIGKILL-safe, no longer power-loss-safe)",
    )
    serve.add_argument(
        "--max-pending", type=_positive_int, metavar="N", default=None,
        help="bound the ingest queue: beyond N pending /extract requests "
        "the daemon sheds with 503 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--request-timeout-ms", type=float, metavar="MS", default=None,
        help="per-request /extract deadline; past it the client gets 503 "
        "and may safely resubmit (default: none)",
    )
    serve.add_argument(
        "--max-batch-statements", type=_positive_int, metavar="N",
        default=None,
        help="split micro-batches beyond N statements into chunks that "
        "extract and publish separately (default: unbounded)",
    )
    serve.set_defaults(handler=_cmd_serve)

    stream = commands.add_parser(
        "stream",
        help="continuously stream a JSONL query log into a session "
        "(micro-batches, crash-safe resume offset, store compaction)",
    )
    stream.add_argument(
        "input",
        help="the JSONL query log file to tail (one JSON object per "
        "statement; see the query-log source docs)",
    )
    stream.add_argument(
        "--follow", action="store_true",
        help="keep polling for appended lines after reaching EOF "
        "(default: replay to EOF once and exit)",
    )
    stream.add_argument(
        "--batch-statements", type=_positive_int, metavar="N", default=1000,
        help="maximum log lines consumed per micro-batch (default: 1000)",
    )
    stream.add_argument(
        "--poll-interval-ms", type=float, metavar="MS", default=250.0,
        help="--follow: how long to sleep when no new lines arrived "
        "(default: 250 ms)",
    )
    stream.add_argument(
        "--max-batches", type=_positive_int, metavar="N", default=None,
        help="stop after N productive micro-batches (default: unbounded)",
    )
    stream.add_argument(
        "--offset-file", metavar="FILE", default=None,
        help="where the crash-safe resume offset is persisted "
        "(default: <log>.offset.json next to the log)",
    )
    stream.add_argument(
        "--no-resume", action="store_true",
        help="ignore a persisted resume offset and re-ingest from the "
        "start of the log",
    )
    stream.add_argument(
        "--compact-max-entries", type=_positive_int, metavar="N", default=None,
        help="with --cache-dir: run store gc down to N lineage records "
        "periodically; superseded definitions are evicted first",
    )
    stream.add_argument(
        "--compact-every", type=_positive_int, metavar="N", default=50,
        help="batch interval of the in-line compaction (default: 50)",
    )
    stream.add_argument(
        "--format", choices=renderer_names(), default="stats",
        help="what to print when the stream ends (default: stats)",
    )
    stream.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-batch progress lines on stderr",
    )
    _add_extraction_options(stream)
    stream.set_defaults(handler=_cmd_stream)

    return parser


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
def _load_source(path):
    if path == "-":
        return sys.stdin.read()
    return path


def _session_from_args(args):
    """Build a configured :class:`LineageSession` from parsed arguments."""
    catalog = None
    if args.catalog:
        with open(args.catalog, "r", encoding="utf-8") as handle:
            catalog = catalog_from_sql(handle.read())
    raw = _load_source(args.input)
    source = DbtSource(raw) if args.dbt else Source.detect(raw)
    config = SessionConfig(
        strict=args.strict,
        use_stack=not args.no_stack,
        collect_traces=args.collect_traces,
        mode=args.mode,
        workers=args.workers,
        engine=args.engine,
        executor=args.executor,
        cache_dir=args.cache_dir,
        stream=args.stream,
        cache_shards=args.cache_shards,
    )
    return LineageSession(source, catalog=catalog, config=config)


def _warn_unresolved(result):
    """Print unresolved-query warnings; the exit code they imply."""
    if result.report.unresolved:
        for identifier, reason in result.report.unresolved.items():
            print(f"warning: could not resolve {identifier}: {reason}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Subcommand handlers
# ----------------------------------------------------------------------
def _cmd_extract(args, stdout):
    with _session_from_args(args) as session:
        result = session.extract()
        if args.output:
            result.save(args.output)
        print(result.render(args.format), file=stdout)
        return _warn_unresolved(result)


def _looks_like_selector(text):
    """Selector syntax vs a plain TABLE.COLUMN start."""
    return "+" in text or text.endswith(".*") or "." not in text


def _cmd_impact(args, stdout):
    with _session_from_args(args) as session:
        result = session.extract()
        if _looks_like_selector(args.column):
            try:
                outcome = selector_impact(
                    result.graph, args.column, max_depth=args.max_depth
                )
            except (SelectorError, UnknownColumnError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            print(outcome.report(), file=stdout)
        else:
            print(
                impact_report(
                    result.graph, args.column,
                    direction=args.direction, max_depth=args.max_depth,
                ),
                file=stdout,
            )
        return _warn_unresolved(result)


def _cmd_render(args, stdout):
    if args.list_formats:
        print("\n".join(renderer_names()), file=stdout)
        return 0
    if args.input is None:
        print("error: an input is required unless --list-formats is given", file=sys.stderr)
        return 2
    with _session_from_args(args) as session:
        result = session.extract()
        rendered = result.render(args.format)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(rendered)
        else:
            print(rendered, file=stdout)
        return _warn_unresolved(result)


def _parse_edits(pairs):
    changes = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise SystemExit(f"error: --edit expects NAME=SQL, got {pair!r}")
        if value.startswith("@"):
            with open(value[1:], "r", encoding="utf-8") as handle:
                value = handle.read()
        changes[name] = value if value else None
    return changes


def _cmd_refresh(args, stdout):
    with _session_from_args(args) as session:
        session.extract()
        try:
            result = session.refresh(_parse_edits(args.edit) or None)
        except ValueError as error:
            # e.g. a single-file or stdin source without --edit: nothing to rescan
            print(f"error: {error}", file=sys.stderr)
            return 2
        reused = len(getattr(result.report, "reused", ()))
        total = len(result.query_dictionary)
        print(
            f"refresh: re-extracted {total - reused} of {total} queries "
            f"({reused} reused)",
            file=sys.stderr,
        )
        print(result.render(args.format), file=stdout)
        return _warn_unresolved(result)


def _cmd_cache(args, stdout):
    from .store import LineageStore

    if args.action == "migrate":
        if args.shards is None:
            print("error: cache migrate needs --shards", file=sys.stderr)
            return 2
        moved = LineageStore.migrate(args.cache_dir, args.shards)
        layout = LineageStore(args.cache_dir)
        try:
            print(
                f"migrated {moved} records; store now has "
                f"{layout.num_shards} shard(s)",
                file=stdout,
            )
        finally:
            layout.close()
        return 0
    store = LineageStore(args.cache_dir)
    try:
        if args.action == "stats":
            stats = store.stats()
            shards = stats.pop("per_shard", [])
            for key, value in sorted(stats.items()):
                print(f"{key}: {value}", file=stdout)
            for shard in shards:
                print(
                    f"shard {shard['shard']}: {shard['entries']} entries, "
                    f"{shard['source_entries']} sources, "
                    f"{shard['size_bytes']} bytes, "
                    f"{shard['hit_count']} hits  ({shard['path']})",
                    file=stdout,
                )
        elif args.action == "clear":
            print(f"removed {store.clear()} records", file=stdout)
        else:  # gc
            if args.max_age_days is None and args.max_entries is None:
                print(
                    "error: cache gc needs --max-age-days and/or --max-entries",
                    file=sys.stderr,
                )
                return 2
            removed = store.gc(
                max_age_days=args.max_age_days, max_entries=args.max_entries
            )
            print(f"evicted {removed} records", file=stdout)
    finally:
        store.close()
    return 0


def _cmd_stream(args, stdout):
    import os

    if not os.path.isfile(args.input):
        print(f"error: {args.input!r} is not a query log file", file=sys.stderr)
        return 2
    catalog = None
    if args.catalog:
        with open(args.catalog, "r", encoding="utf-8") as handle:
            catalog = catalog_from_sql(handle.read())
    config = SessionConfig(
        strict=args.strict,
        use_stack=not args.no_stack,
        collect_traces=args.collect_traces,
        mode=args.mode,
        workers=args.workers,
        engine=args.engine,
        executor=args.executor,
        cache_dir=args.cache_dir,
        stream=args.stream,
        cache_shards=args.cache_shards,
    )

    def on_batch(report):
        if not args.quiet:
            print(
                f"stream: batch consumed={report['consumed']} "
                f"applied={report['applied']} offset={report['byte_offset']}"
                + (" (log rotated; restarted)" if report["reset"] else ""),
                file=sys.stderr,
            )

    # the session is deliberately sourceless: the streamer's batches ARE
    # the corpus, and a resumed prefix bootstraps it in one refresh
    with LineageSession(catalog=catalog, config=config) as session:
        streamer = session.stream_log(
            args.input,
            batch_statements=args.batch_statements,
            offset_path=args.offset_file,
            resume=not args.no_resume,
            compact_max_entries=args.compact_max_entries,
            compact_every=args.compact_every,
        )
        try:
            stats = streamer.run(
                follow=args.follow,
                poll_interval=args.poll_interval_ms / 1000.0,
                max_batches=args.max_batches,
                on_batch=on_batch,
            )
        except KeyboardInterrupt:
            stats = streamer.stats  # the last completed batch's offset is saved
        print(
            "stream: {statements} statements in {batches} batches "
            "({applied} applied, {skipped} absorbed, "
            "warm-hit ratio {warm_hit_ratio}); offset saved to {offset_path}".format(
                **stats
            ),
            file=sys.stderr,
        )
        result = session.result
        if result is None:
            return 0
        print(result.render(args.format), file=stdout)
        return _warn_unresolved(result)


def _cmd_serve(args, stdout):
    from .server import LineageApp
    from .testing import faults

    # a REPRO_FAULTS plan (the chaos/crash suites run daemons this way)
    # activates before anything that has injection sites is constructed
    faults.install_from_env()

    catalog = None
    if args.catalog:
        with open(args.catalog, "r", encoding="utf-8") as handle:
            catalog = catalog_from_sql(handle.read())
    preload = None
    if args.input:
        raw = _load_source(args.input)
        source = DbtSource(raw) if args.dbt else Source.detect(raw)
        payload = source.load()
        if not isinstance(payload, dict):
            print(
                "error: serve preload needs a name-addressable source "
                "(a directory of .sql files, a dbt project, or a .jsonl "
                f"query log); got a {source.kind!r} source",
                file=sys.stderr,
            )
            return 2
        preload = payload
    app = LineageApp(
        cache_dir=args.cache_dir,
        cache_shards=args.cache_shards,
        workers=args.workers,
        executor=args.executor,
        catalog=catalog,
        strict=args.strict,
        batch_window=args.batch_window_ms / 1000.0,
        journal_dir=args.journal_dir,
        journal_fsync=not args.no_journal_fsync,
        max_pending=args.max_pending or 0,
        request_timeout=(
            args.request_timeout_ms / 1000.0 if args.request_timeout_ms else None
        ),
        max_batch_statements=args.max_batch_statements or 0,
    )
    return app.run(host=args.host, port=args.port, preload=preload, out=stdout)


# ----------------------------------------------------------------------
# Legacy flag form
# ----------------------------------------------------------------------
def _legacy_run(args, stdout):
    with _session_from_args(args) as session:
        result = session.extract()
        if args.output:
            result.save(args.output)

        if args.impact:
            print(impact_report(result.graph, args.impact, direction="downstream"), file=stdout)
        elif args.upstream:
            print(impact_report(result.graph, args.upstream, direction="upstream"), file=stdout)
        else:
            print(result.render(args.format), file=stdout)
        return _warn_unresolved(result)


def run(argv=None, stdout=None):
    """Entry point; returns the process exit code."""
    stdout = stdout if stdout is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        args = build_subcommand_parser().parse_args(argv)
        return args.handler(args, stdout)
    args = build_parser().parse_args(argv)
    return _legacy_run(args, stdout)


def main():  # pragma: no cover - thin wrapper
    sys.exit(run())
