"""The SQL Preprocessing Module.

Section III of the paper: scan each query and record the mapping from the
query's *identifier* to its query body.  For ``CREATE`` statements the
created table/view name is the identifier; for bare ``SELECT`` statements a
generated id is used (or, for dbt-style projects where each model lives in
its own file, the file name).  The resulting key/value pairs form the
*Query Dictionary (QD)* consumed by the transformation and extraction
modules.
"""

import os

from .dag import statement_table_refs
from .errors import LineageRecordError
from ..sqlparser import ast, parse
from ..sqlparser.dialect import normalize_name
from ..sqlparser.printer import canonical_sql_and_hash, content_hash_of, to_sql
from ..sqlparser.visitor import created_name, query_of

#: Version of the serialized per-source parse record (the store's parse
#: cache).  Bump whenever :func:`_statement_record` / statement
#: classification changes shape or semantics; old records become misses.
#: v2: records carry the precomputed ``content_hash`` (fused with the
#: canonical print), so replays never re-hash.
#: v3: the warehouse DML surface — new ``merge`` kind, ``table_refs``
#: now includes the written target of UPDATE/DELETE/MERGE and of
#: upserting INSERTs, and GROUPING SETS/ROLLUP/CUBE/QUALIFY change the
#: canonical shape of statements that previously parsed loosely.
PARSE_RECORD_VERSION = 3

#: fragments announced to the parse cache per prefetch window.  Matches
#: the store's ``IN (...)`` chunk width, so one window = one batched
#: SELECT per shard; it also bounds how many raw source texts streaming
#: preprocessing holds in memory at once.
PREFETCH_CHUNK = 400


class ParsedQuery:
    """One entry of the Query Dictionary.

    The AST (``statement`` / ``query``) is materialised *lazily*: entries
    replayed from the persistent parse cache carry only the canonical
    ``statement_sql`` and re-parse it on first AST access.  A warm-start
    run whose extractions all splice from the lineage store therefore never
    parses a single statement — ``content_hash`` and ``dependencies()``
    are served from the cached record.
    """

    def __init__(
        self,
        identifier,
        statement=None,
        query=None,
        sql="",
        kind="select",  # view | table | insert | update | delete | merge | select
        column_names=None,
        source_name=None,
        statement_sql="",
        table_refs=None,
        content_hash=None,
    ):
        self.identifier = identifier
        self._statement = statement
        self._query = query
        #: for named sources, the whole source text this entry came from;
        #: for anonymous script input, this entry's statement alone.
        self.sql = sql
        self.kind = kind
        self.column_names = list(column_names or [])
        #: the named source (dict key / file stem) this entry was parsed
        #: from, or ``None`` for anonymous script input.  Incremental
        #: merging uses it to purge entries whose source was replaced by a
        #: fragment that no longer produces them.
        self.source_name = source_name
        #: this entry's statement alone, pretty-printed from the AST.
        #: Unlike ``sql`` this is always exactly one statement in canonical
        #: form — the basis of :attr:`content_hash`, of incremental source
        #: reconstruction, and of lazy re-parsing.
        self.statement_sql = statement_sql
        #: every relation name the statement references (before discarding
        #: the self-reference); computed on demand and cached, or replayed
        #: from the parse cache.
        self._table_refs = frozenset(table_refs) if table_refs is not None else None
        if content_hash is not None:
            # fused with the canonical print (or replayed from the parse
            # cache); the property's lazy fallback covers everything else
            self._content_hash = content_hash

    def __repr__(self):
        return (
            f"ParsedQuery(identifier={self.identifier!r}, kind={self.kind!r}, "
            f"parsed={self._statement is not None})"
        )

    @property
    def statement(self):
        """The statement AST (re-parsed from ``statement_sql`` on demand).

        A lazy entry only exists when the statement was replayed from the
        persistent parse cache, so a re-parse failure means the cached
        canonical SQL is corrupt or version-skewed; it surfaces as
        :class:`~repro.core.errors.LineageRecordError`, which the runner
        turns into a cold retry without the parse cache.
        """
        if self._statement is None:
            try:
                statements = parse(self.statement_sql)
            except Exception as error:
                raise LineageRecordError(
                    f"cached canonical SQL of {self.identifier!r} no longer "
                    f"parses ({error}); the parse cache is corrupt or was "
                    "written by an incompatible version"
                ) from None
            if len(statements) != 1:
                raise LineageRecordError(
                    f"cached canonical SQL of {self.identifier!r} holds "
                    f"{len(statements)} statements, expected exactly 1"
                )
            self._statement = statements[0]
        return self._statement

    @property
    def query(self):
        """The query expression whose lineage describes this entry."""
        if self._query is None:
            self._query = _query_for(self.statement)
        return self._query

    @property
    def is_parsed(self):
        """True when the AST is already materialised (no parse on access)."""
        return self._statement is not None

    def table_refs(self):
        """Every relation name referenced by the statement (incl. self)."""
        if self._table_refs is None:
            self._table_refs = frozenset(statement_table_refs(self.statement))
        return self._table_refs

    def release(self):
        """Drop the materialised AST; it re-materialises lazily on demand.

        The streaming extraction path calls this right after an entry's
        lineage has been recorded, so a 100k-statement run holds at most
        one wave's ASTs at a time instead of the whole corpus's.  The
        derived facts that outlive extraction (``table_refs``,
        ``content_hash``) are forced into their caches first, so nothing
        observable changes — a released entry behaves exactly like one
        replayed from the parse cache.  Returns ``True`` when an AST was
        actually dropped.  A no-op for entries with no canonical SQL to
        re-parse from (they could never rebuild the AST).
        """
        if not self.statement_sql or self._statement is None:
            return False
        self.table_refs()
        _ = self.content_hash
        self._statement = None
        self._query = None
        return True

    def dependencies(self):
        """Relations this entry reads (the self-reference excluded)."""
        return self.table_refs() - {self.identifier}

    @property
    def creates_relation(self):
        """True if this entry defines/extends a named relation."""
        return self.kind in ("view", "table", "insert")

    @property
    def content_hash(self):
        """A stable fingerprint of this entry's semantic content.

        Computed over the canonical printed statement (so whitespace and
        comment changes do not count as changes) plus the statement kind.
        Incremental re-extraction compares these hashes to find the entries
        that actually changed between runs.  On the cold path the hash is
        fused with the canonical print
        (:func:`repro.sqlparser.printer.canonical_sql_and_hash`); this lazy
        fallback serves entries built any other way.  Cached: an entry's
        statement is never mutated after preprocessing.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            cached = self.__dict__["_content_hash"] = content_hash_of(
                self.statement_sql, self.kind
            )
        return cached


class QueryDictionary:
    """Ordered mapping from query identifiers to parsed queries.

    Besides the SELECT-bearing entries, the dictionary keeps the plain DDL
    statements (``CREATE TABLE`` with a column list) it encountered so the
    runner can seed the schema catalog from them, and a list of warnings for
    anything that was skipped or replaced.
    """

    def __init__(self):
        self.entries = {}
        self.order = []
        self.ddl_statements = []
        #: parallel to ``ddl_statements``: the named source each DDL
        #: statement came from (``None`` for anonymous script input)
        self.ddl_sources = []
        self.warnings = []

    # ------------------------------------------------------------------
    def add(self, parsed_query):
        """Insert an entry, replacing (with a warning) any previous definition."""
        identifier = parsed_query.identifier
        if identifier in self.entries:
            self.warnings.append(
                f"query identifier {identifier!r} redefined; keeping the latest definition"
            )
            self.order.remove(identifier)
        self.entries[identifier] = parsed_query
        self.order.append(identifier)
        return parsed_query

    def add_ddl(self, statement, source=None):
        """Record a non-query DDL statement (CREATE TABLE / DROP)."""
        self.ddl_statements.append(statement)
        self.ddl_sources.append(source)

    # ------------------------------------------------------------------
    def __contains__(self, identifier):
        return normalize_name(identifier) in self.entries

    def __getitem__(self, identifier):
        return self.entries[normalize_name(identifier)]

    def get(self, identifier, default=None):
        return self.entries.get(normalize_name(identifier), default)

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        for identifier in self.order:
            yield self.entries[identifier]

    def identifiers(self):
        """Identifiers in insertion order."""
        return list(self.order)

    def items(self):
        for identifier in self.order:
            yield identifier, self.entries[identifier]


def preprocess(source, id_generator=None, parse_cache=None, retain_asts=True):
    """Build a :class:`QueryDictionary` from ``source``.

    ``source`` may be:

    * a SQL script string (possibly containing many statements),
    * a list of SQL script strings,
    * a mapping ``{name: sql}`` (dbt-style: the key names bare SELECTs),
    * a path to a ``.sql`` file or to a directory of ``.sql`` files,
    * any other iterable (including a generator) yielding SQL strings or
      ``(name, sql)`` pairs — the streaming input: fragments are consumed
      in :data:`PREFETCH_CHUNK` windows, so a 100k-statement corpus never
      materialises as one giant list of source texts.

    ``id_generator`` customises how anonymous SELECT statements are named;
    it is called with a running counter and must return a string.  The
    default produces deterministic ``query_1``, ``query_2``, ... identifiers
    (the paper uses randomly generated ids; determinism is friendlier to
    tests and caching and does not change the algorithm).

    ``parse_cache`` (optional) is an object with ``get(sql) -> records``
    and ``put(sql, records)`` — typically
    :meth:`repro.store.LineageStore.parse_cache`.  Source fragments found
    in the cache are *replayed* from their serialized statement records
    instead of being parsed; the resulting entries materialise their ASTs
    lazily, so a fully warm run never parses at all.  Fragments are
    announced to the cache one window at a time (``prefetch``), which
    batches the reads without holding every raw text at once.

    ``retain_asts`` (default ``True``) controls whether cold-parsed
    entries keep their ASTs.  With ``False`` — the streaming mode — each
    entry drops its AST as soon as its parse record exists; everything
    the DAG needs (``table_refs``, ``content_hash``) is served from the
    record, and extraction re-materialises each AST lazily from the
    canonical SQL, wave by wave.  The full AST population then never
    coexists, trading one extra (fast, canonical-text) parse per
    extracted statement for a flat memory profile.
    """
    if id_generator is None:
        id_generator = lambda counter: f"query_{counter}"  # noqa: E731

    dictionary = QueryDictionary()
    counter = 0
    prefetch = (
        getattr(parse_cache, "prefetch", None) if parse_cache is not None else None
    )
    for window in _windows(_iter_sources(source), PREFETCH_CHUNK):
        if prefetch is not None:
            # announce the window up front: a cache that supports batched
            # reads (the store-backed one does) resolves all its keys in
            # one SELECT per shard instead of one point query per fragment
            prefetch([sql for _, sql in window])
        for default_name, sql in window:
            statements = None
            records = parse_cache.get(sql) if parse_cache is not None else None
            if records is not None:
                records = _validated_fragment(records)
            if records is None:
                statements = parse(sql)
                records = [_statement_record(statement) for statement in statements]
                if parse_cache is not None:
                    parse_cache.put(sql, records)
            for index, record in enumerate(records):
                statement = statements[index] if statements is not None else None
                if statement is not None and not retain_asts and record["kind"] not in (
                    "ddl", "skip"
                ):
                    # the record carries table_refs + content_hash, so the
                    # entry stays lazy exactly like a parse-cache replay
                    # (DDL is exempt: its AST seeds the catalog eagerly)
                    statement = None
                counter = _apply_record(
                    dictionary, record, statement, default_name, sql, counter,
                    id_generator,
                )
    return dictionary


def _windows(iterable, size):
    """Yield lists of up to ``size`` items from ``iterable``."""
    window = []
    for item in iterable:
        window.append(item)
        if len(window) >= size:
            yield window
            window = []
    if window:
        yield window


def _statement_record(statement):
    """Serialise one parsed statement's preprocessing outcome.

    The record carries everything the downstream pipeline needs without
    the AST: the classification, the canonical single-statement SQL (the
    substrate of ``content_hash`` and of lazy re-parsing), the declared
    column list, and the referenced relation names (the dependency-DAG
    input).  ``skip`` records keep only their warning text.
    """
    entry_kind, identifier, column_names = _classify(statement)
    record = {
        "kind": entry_kind,
        "identifier": identifier,
        "column_names": list(column_names),
    }
    if entry_kind == "skip":
        record["warning"] = (
            f"statement of type {type(statement).__name__} does not produce lineage; skipped"
        )
        return record
    if entry_kind == "ddl":
        record["statement_sql"] = _statement_sql(statement)
    else:
        # one streaming pass produces the canonical text AND its hash
        record["statement_sql"], record["content_hash"] = canonical_sql_and_hash(
            statement, entry_kind
        )
        record["table_refs"] = sorted(statement_table_refs(statement))
    return record


_RECORD_KINDS = (
    "view", "table", "insert", "update", "delete", "merge", "select", "ddl", "skip"
)


def _validated_fragment(records):
    """Structurally validate replayed parse records; ``None`` = cold miss."""
    if not isinstance(records, list):
        return None
    for record in records:
        if not isinstance(record, dict) or record.get("kind") not in _RECORD_KINDS:
            return None
        kind = record["kind"]
        if kind == "skip":
            if not isinstance(record.get("warning"), str):
                return None
            continue
        if not isinstance(record.get("statement_sql"), str) or not record["statement_sql"]:
            return None
        identifier = record.get("identifier")
        if identifier is not None and not isinstance(identifier, str):
            return None
        if not isinstance(record.get("column_names"), list):
            return None
        if kind != "ddl" and not (
            isinstance(record.get("table_refs"), list)
            and all(isinstance(name, str) for name in record["table_refs"])
        ):
            return None
        if kind != "ddl" and not isinstance(record.get("content_hash"), str):
            return None
        if kind == "ddl":
            # DDL ASTs are needed eagerly (they seed the schema catalog);
            # prove the cached text re-parses before applying anything and
            # keep the AST so _apply_record does not parse a second time
            try:
                statements = parse(record["statement_sql"])
            except Exception:
                return None
            if len(statements) != 1:
                return None
            record["_parsed_ddl"] = statements[0]
    return records


def _apply_record(dictionary, record, statement, default_name, sql, counter, id_generator):
    """Apply one statement record to the dictionary (cold or replayed path).

    ``statement`` is the live AST on the cold path and ``None`` on replay,
    in which case lineage-bearing entries stay lazy and DDL is re-parsed
    eagerly (the schema catalog needs it up front).
    """
    kind = record["kind"]
    if kind == "skip":
        dictionary.warnings.append(record["warning"])
        return counter
    if kind == "ddl":
        if statement is None:
            # attached by _validated_fragment on the replay path (records
            # are decoded fresh per replay, so the AST is never shared)
            statement = record.pop("_parsed_ddl", None)
        if statement is None:
            statement = parse(record["statement_sql"])[0]
        dictionary.add_ddl(statement, source=default_name)
        return counter
    identifier = record["identifier"]
    if identifier is None:
        if default_name is not None:
            identifier = default_name
        else:
            counter += 1
            identifier = id_generator(counter)
    if kind in ("update", "delete", "merge") and identifier in dictionary:
        # A CREATE already defines this relation's lineage; an UPDATE,
        # DELETE or MERGE later in the log must not overwrite it.
        dictionary.warnings.append(
            f"{kind.upper()} on {identifier!r} ignored: the relation is "
            "already defined by an earlier statement"
        )
        return counter
    statement_sql = record["statement_sql"]
    dictionary.add(
        ParsedQuery(
            identifier=normalize_name(identifier),
            statement=statement,
            sql=sql if default_name is not None else statement_sql,
            kind=kind,
            column_names=record["column_names"],
            statement_sql=statement_sql,
            source_name=default_name,
            table_refs=record.get("table_refs"),
            content_hash=record.get("content_hash"),
        )
    )
    return counter


def _and_join(left, right):
    """``left AND right`` treating ``None`` as absent (for reference
    accumulation — the extractor only walks these, it never evaluates)."""
    if left is None:
        return right
    if right is None:
        return left
    return ast.BinaryOp("AND", left, right)


def _query_for(statement):
    """The query expression whose lineage describes ``statement``.

    ``SELECT``/``CREATE``/``INSERT`` statements embed one directly.  An
    ``UPDATE`` is rewritten into an equivalent SELECT over the target table
    (plus any FROM sources): each ``SET col = expr`` becomes a projection, so
    the assigned columns obtain contribution lineage and the WHERE / join
    columns become references.  A ``DELETE`` contributes no columns but its
    USING / WHERE columns are references that affect the target's contents.

    A ``MERGE`` is rewritten the same way: the target table and the USING
    source are bound, the ON condition and every ``WHEN ... AND`` condition
    become references (folded into WHERE), ``UPDATE SET`` assignments and
    ``INSERT (cols) VALUES (...)`` pairs become projections.  An INSERT
    action without a declared column list contributes nothing nameable, so
    its value expressions degrade to references.

    ``INSERT ... SELECT ... ON CONFLICT`` wraps the insert's query as a
    derived table aliased ``excluded`` (the SQL name of the would-be
    inserted row), binds the target table, and adds the ``DO UPDATE SET``
    assignments as projections — so conflict-resolution lineage flows from
    both the source query and the target, and the conflict-target columns
    become references.
    """
    if isinstance(statement, ast.UpdateStatement):
        target = ast.TableRef(name=statement.table, alias=statement.alias)
        projections = [
            ast.Projection(expression=expression, alias=column)
            for column, expression in statement.assignments
        ]
        return ast.Select(
            projections=projections,
            from_sources=[target] + list(statement.from_sources),
            where=statement.where,
        )
    if isinstance(statement, ast.DeleteStatement):
        target = ast.TableRef(name=statement.table, alias=statement.alias)
        return ast.Select(
            projections=[],
            from_sources=[target] + list(statement.using_sources),
            where=statement.where,
        )
    if isinstance(statement, ast.MergeStatement):
        target = ast.TableRef(name=statement.target, alias=statement.alias)
        projections = []
        where = statement.condition
        for when in statement.when_clauses:
            where = _and_join(where, when.condition)
            if when.action == "update":
                projections.extend(
                    ast.Projection(expression=expression, alias=column)
                    for column, expression in when.assignments
                )
            elif when.action == "insert":
                if when.columns:
                    projections.extend(
                        ast.Projection(expression=expression, alias=column)
                        for column, expression in zip(when.columns, when.values)
                    )
                else:
                    # no declared target columns: the values cannot be
                    # attributed to named outputs; keep them as references
                    for expression in when.values:
                        where = _and_join(where, expression)
        return ast.Select(
            projections=projections,
            from_sources=[target, statement.source],
            where=where,
        )
    if (
        isinstance(statement, ast.InsertStatement)
        and statement.on_conflict is not None
        and statement.query is not None
    ):
        conflict = statement.on_conflict
        target = ast.TableRef(name=statement.table)
        target_name = statement.table.name
        excluded = ast.SubquerySource(
            query=statement.query,
            alias="excluded",
            column_aliases=list(statement.columns),
        )
        projections = [ast.Projection(ast.Star(qualifier=["excluded"]))]
        where = None
        for column in conflict.columns:
            where = _and_join(
                where, ast.ColumnRef(name=column, qualifier=[target_name])
            )
        if conflict.do_update:
            projections.extend(
                ast.Projection(expression=expression, alias=column)
                for column, expression in conflict.assignments
            )
            where = _and_join(where, conflict.where)
        return ast.Select(
            projections=projections,
            from_sources=[excluded, target],
            where=where,
        )
    return query_of(statement)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _iter_sources(source):
    """Yield ``(default_name, sql_text)`` pairs from the supported inputs."""
    if isinstance(source, str):
        if _looks_like_path(source):
            yield from _iter_path(source)
        else:
            yield None, source
        return
    if isinstance(source, os.PathLike):
        yield from _iter_path(os.fspath(source))
        return
    if isinstance(source, dict):
        for name, sql in source.items():
            yield normalize_name(str(name)), sql
        return
    if isinstance(source, (list, tuple)):
        for item in source:
            yield from _iter_item(item)
        return
    try:
        iterator = iter(source)
    except TypeError:
        raise TypeError(
            "unsupported source type for preprocess(): expected str, path, "
            f"iterable or dict, got {type(source).__name__}"
        ) from None
    # any other iterable — a generator, most usefully: fragments stream
    # through preprocessing one prefetch window at a time
    for item in iterator:
        yield from _iter_item(item)


def _iter_item(item):
    """One streamed fragment: a SQL string or a ``(name, sql)`` pair."""
    if isinstance(item, tuple) and len(item) == 2:
        name, sql = item
        yield (None if name is None else normalize_name(str(name))), sql
    else:
        yield None, item


def _looks_like_path(text):
    """Heuristic: treat short, existing filesystem paths as paths, not SQL."""
    if "\n" in text or ";" in text:
        return False
    if text.strip().upper().startswith(("SELECT", "CREATE", "INSERT", "WITH", "DROP")):
        return False
    return os.path.exists(text)


def _iter_path(path):
    if os.path.isdir(path):
        for filename in sorted(os.listdir(path)):
            if filename.endswith(".sql"):
                full = os.path.join(path, filename)
                with open(full, "r", encoding="utf-8") as handle:
                    yield normalize_name(os.path.splitext(filename)[0]), handle.read()
        return
    with open(path, "r", encoding="utf-8") as handle:
        yield None, handle.read()


def _classify(statement):
    """Map a statement to (kind, identifier, declared column names)."""
    if isinstance(statement, ast.CreateView):
        return "view", created_name(statement), list(statement.column_names)
    if isinstance(statement, ast.CreateTableAs):
        return "table", created_name(statement), []
    if isinstance(statement, ast.InsertStatement):
        if statement.query is None:
            # INSERT ... VALUES carries no column lineage from other relations
            return "skip", None, []
        return "insert", created_name(statement), list(statement.columns)
    if isinstance(statement, ast.UpdateStatement):
        return "update", statement.table.dotted(), []
    if isinstance(statement, ast.DeleteStatement):
        return "delete", statement.table.dotted(), []
    if isinstance(statement, ast.MergeStatement):
        return "merge", statement.target.dotted(), []
    if isinstance(statement, ast.QueryStatement):
        return "select", None, []
    if isinstance(statement, (ast.CreateTable, ast.DropStatement)):
        return "ddl", None, []
    return "skip", None, []


def _statement_sql(statement):
    return to_sql(statement)
