"""The SQL Preprocessing Module.

Section III of the paper: scan each query and record the mapping from the
query's *identifier* to its query body.  For ``CREATE`` statements the
created table/view name is the identifier; for bare ``SELECT`` statements a
generated id is used (or, for dbt-style projects where each model lives in
its own file, the file name).  The resulting key/value pairs form the
*Query Dictionary (QD)* consumed by the transformation and extraction
modules.
"""

import hashlib
import os
from dataclasses import dataclass, field

from ..sqlparser import ast, parse
from ..sqlparser.dialect import normalize_name
from ..sqlparser.visitor import created_name, query_of


@dataclass
class ParsedQuery:
    """One entry of the Query Dictionary."""

    identifier: str
    statement: ast.Statement
    query: ast.QueryExpression
    sql: str = ""
    kind: str = "select"  # view | table | insert | select
    column_names: list = field(default_factory=list)
    #: the named source (dict key / file stem) this entry was parsed from, or
    #: ``None`` for anonymous script input.  Incremental merging uses it to
    #: purge entries whose source was replaced by a fragment that no longer
    #: produces them.
    source_name: str = None
    #: this entry's statement alone, pretty-printed from the AST.  Unlike
    #: ``sql`` (which for named sources holds the whole source text), this is
    #: always exactly one statement in canonical form — the basis of
    #: :attr:`content_hash` and of incremental source reconstruction.
    statement_sql: str = ""

    @property
    def creates_relation(self):
        """True if this entry defines/extends a named relation."""
        return self.kind in ("view", "table", "insert")

    @property
    def content_hash(self):
        """A stable fingerprint of this entry's semantic content.

        Computed over the canonical printed statement (so whitespace and
        comment changes do not count as changes) plus the statement kind.
        Incremental re-extraction compares these hashes to find the entries
        that actually changed between runs.  Cached: an entry's statement is
        never mutated after preprocessing.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            digest = hashlib.sha256()
            digest.update(self.kind.encode("utf-8"))
            digest.update(b"\0")
            digest.update(self.statement_sql.encode("utf-8"))
            cached = self.__dict__["_content_hash"] = digest.hexdigest()
        return cached


class QueryDictionary:
    """Ordered mapping from query identifiers to parsed queries.

    Besides the SELECT-bearing entries, the dictionary keeps the plain DDL
    statements (``CREATE TABLE`` with a column list) it encountered so the
    runner can seed the schema catalog from them, and a list of warnings for
    anything that was skipped or replaced.
    """

    def __init__(self):
        self.entries = {}
        self.order = []
        self.ddl_statements = []
        #: parallel to ``ddl_statements``: the named source each DDL
        #: statement came from (``None`` for anonymous script input)
        self.ddl_sources = []
        self.warnings = []

    # ------------------------------------------------------------------
    def add(self, parsed_query):
        """Insert an entry, replacing (with a warning) any previous definition."""
        identifier = parsed_query.identifier
        if identifier in self.entries:
            self.warnings.append(
                f"query identifier {identifier!r} redefined; keeping the latest definition"
            )
            self.order.remove(identifier)
        self.entries[identifier] = parsed_query
        self.order.append(identifier)
        return parsed_query

    def add_ddl(self, statement, source=None):
        """Record a non-query DDL statement (CREATE TABLE / DROP)."""
        self.ddl_statements.append(statement)
        self.ddl_sources.append(source)

    # ------------------------------------------------------------------
    def __contains__(self, identifier):
        return normalize_name(identifier) in self.entries

    def __getitem__(self, identifier):
        return self.entries[normalize_name(identifier)]

    def get(self, identifier, default=None):
        return self.entries.get(normalize_name(identifier), default)

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        for identifier in self.order:
            yield self.entries[identifier]

    def identifiers(self):
        """Identifiers in insertion order."""
        return list(self.order)

    def items(self):
        for identifier in self.order:
            yield identifier, self.entries[identifier]


def preprocess(source, id_generator=None):
    """Build a :class:`QueryDictionary` from ``source``.

    ``source`` may be:

    * a SQL script string (possibly containing many statements),
    * a list of SQL script strings,
    * a mapping ``{name: sql}`` (dbt-style: the key names bare SELECTs),
    * a path to a ``.sql`` file or to a directory of ``.sql`` files.

    ``id_generator`` customises how anonymous SELECT statements are named;
    it is called with a running counter and must return a string.  The
    default produces deterministic ``query_1``, ``query_2``, ... identifiers
    (the paper uses randomly generated ids; determinism is friendlier to
    tests and caching and does not change the algorithm).
    """
    if id_generator is None:
        id_generator = lambda counter: f"query_{counter}"  # noqa: E731

    dictionary = QueryDictionary()
    counter = 0
    for default_name, sql in _iter_sources(source):
        for statement in parse(sql):
            entry_kind, identifier, column_names = _classify(statement)
            if entry_kind == "ddl":
                dictionary.add_ddl(statement, source=default_name)
                continue
            if entry_kind == "skip":
                dictionary.warnings.append(
                    f"statement of type {type(statement).__name__} does not produce lineage; skipped"
                )
                continue
            if identifier is None:
                if default_name is not None:
                    identifier = default_name
                else:
                    counter += 1
                    identifier = id_generator(counter)
            if entry_kind in ("update", "delete") and identifier in dictionary:
                # A CREATE already defines this relation's lineage; an UPDATE
                # or DELETE later in the log must not overwrite it.
                dictionary.warnings.append(
                    f"{entry_kind.upper()} on {identifier!r} ignored: the relation is "
                    "already defined by an earlier statement"
                )
                continue
            statement_sql = _statement_sql(statement)
            dictionary.add(
                ParsedQuery(
                    identifier=normalize_name(identifier),
                    statement=statement,
                    query=_query_for(statement),
                    sql=sql if default_name is not None else statement_sql,
                    kind=entry_kind,
                    column_names=column_names,
                    statement_sql=statement_sql,
                    source_name=default_name,
                )
            )
    return dictionary


def _query_for(statement):
    """The query expression whose lineage describes ``statement``.

    ``SELECT``/``CREATE``/``INSERT`` statements embed one directly.  An
    ``UPDATE`` is rewritten into an equivalent SELECT over the target table
    (plus any FROM sources): each ``SET col = expr`` becomes a projection, so
    the assigned columns obtain contribution lineage and the WHERE / join
    columns become references.  A ``DELETE`` contributes no columns but its
    USING / WHERE columns are references that affect the target's contents.
    """
    if isinstance(statement, ast.UpdateStatement):
        target = ast.TableRef(name=statement.table, alias=statement.alias)
        projections = [
            ast.Projection(expression=expression, alias=column)
            for column, expression in statement.assignments
        ]
        return ast.Select(
            projections=projections,
            from_sources=[target] + list(statement.from_sources),
            where=statement.where,
        )
    if isinstance(statement, ast.DeleteStatement):
        target = ast.TableRef(name=statement.table, alias=statement.alias)
        return ast.Select(
            projections=[],
            from_sources=[target] + list(statement.using_sources),
            where=statement.where,
        )
    return query_of(statement)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _iter_sources(source):
    """Yield ``(default_name, sql_text)`` pairs from the supported inputs."""
    if isinstance(source, str):
        if _looks_like_path(source):
            yield from _iter_path(source)
        else:
            yield None, source
        return
    if isinstance(source, os.PathLike):
        yield from _iter_path(os.fspath(source))
        return
    if isinstance(source, dict):
        for name, sql in source.items():
            yield normalize_name(str(name)), sql
        return
    if isinstance(source, (list, tuple)):
        for item in source:
            yield None, item
        return
    raise TypeError(
        "unsupported source type for preprocess(): expected str, path, list or dict, "
        f"got {type(source).__name__}"
    )


def _looks_like_path(text):
    """Heuristic: treat short, existing filesystem paths as paths, not SQL."""
    if "\n" in text or ";" in text:
        return False
    if text.strip().upper().startswith(("SELECT", "CREATE", "INSERT", "WITH", "DROP")):
        return False
    return os.path.exists(text)


def _iter_path(path):
    if os.path.isdir(path):
        for filename in sorted(os.listdir(path)):
            if filename.endswith(".sql"):
                full = os.path.join(path, filename)
                with open(full, "r", encoding="utf-8") as handle:
                    yield normalize_name(os.path.splitext(filename)[0]), handle.read()
        return
    with open(path, "r", encoding="utf-8") as handle:
        yield None, handle.read()


def _classify(statement):
    """Map a statement to (kind, identifier, declared column names)."""
    if isinstance(statement, ast.CreateView):
        return "view", created_name(statement), list(statement.column_names)
    if isinstance(statement, ast.CreateTableAs):
        return "table", created_name(statement), []
    if isinstance(statement, ast.InsertStatement):
        if statement.query is None:
            # INSERT ... VALUES carries no column lineage from other relations
            return "skip", None, []
        return "insert", created_name(statement), list(statement.columns)
    if isinstance(statement, ast.UpdateStatement):
        return "update", statement.table.dotted(), []
    if isinstance(statement, ast.DeleteStatement):
        return "delete", statement.table.dotted(), []
    if isinstance(statement, ast.QueryStatement):
        return "select", None, []
    if isinstance(statement, (ast.CreateTable, ast.DropStatement)):
        return "ddl", None, []
    return "skip", None, []


def _statement_sql(statement):
    from ..sqlparser.printer import to_sql

    return to_sql(statement)
