"""Table/View Auto-Inference: planned and stack-based query scheduling.

Section III of the paper: the extraction module "gives priority to SQL
statements identified by keys in QD"; when a traversal encounters a table or
view that has not been processed yet, the current traversal is deferred onto
a stack, the missing dependency is processed first, and the deferred work is
resumed in LIFO order.  This is what makes ``SELECT *`` over a later-defined
view and unprefixed column references resolvable without DBMS metadata.

This module supports two scheduling modes:

* ``mode="dag"`` (the default) — *plan-first*: a cheap pre-pass
  (:class:`~repro.core.dag.DependencyDAG`) reads each statement's
  ``FROM``/``JOIN``/set-operation sources, topologically sorts the Query
  Dictionary into waves, and extracts in dependency order.  The LIFO
  deferral stack is retained only as a fallback for references the pre-pass
  cannot see; on well-formed input it never fires.  Entries within a wave
  are mutually independent, so they can optionally be extracted on a
  ``ThreadPoolExecutor`` (``workers=N``) — results are recorded in wave
  order, so the output is identical for any worker count.  (Extraction is
  CPU-bound pure Python; under the GIL the threads mostly serialize, so
  this is a determinism-preserving seam for free-threaded builds and a
  future process-based backend rather than a speedup on stock CPython.)
* ``mode="stack"`` — the paper's reactive behaviour: process entries in
  Query Dictionary order and discover dependencies via thrown
  :class:`UnknownRelationError`.

The scheduler also supports ``use_stack=False`` for the ablation benchmark
(ABL-STACK in DESIGN.md): queries are then processed strictly in Query
Dictionary order and any not-yet-known relation is treated as an external
table of unknown schema, reproducing the failure modes of single-pass tools.
(``use_stack=False`` forces the reactive mode — planning would mask exactly
the failure modes the ablation measures.)

``seed_results`` pre-populates extraction results (keyed by identifier) and
is the substrate of incremental re-extraction: seeded entries are treated as
already processed and spliced into the output graph unchanged.
"""

from dataclasses import dataclass, field

from .dag import DependencyDAG
from .errors import (
    CyclicDependencyError,
    DeferralLimitExceededError,
    UnknownRelationError,
)
from .extractor import LineageExtractor, SchemaProvider
from .lineage import LineageGraph
from ..sqlparser.dialect import normalize_name


@dataclass
class DeferralEvent:
    """One stack operation, recorded for tests and the ablation bench."""

    kind: str            # "defer" | "resume" | "done"
    identifier: str
    missing: str = ""


@dataclass
class ScheduleReport:
    """What the scheduler did: plan, processing order, and deferral events."""

    order: list = field(default_factory=list)
    events: list = field(default_factory=list)
    unresolved: dict = field(default_factory=dict)   # identifier -> error message
    traces: dict = field(default_factory=dict)       # identifier -> ExtractionTrace
    mode: str = "stack"
    waves: list = field(default_factory=list)        # the topological plan (dag mode)
    reused: list = field(default_factory=list)       # identifiers spliced from a cache

    @property
    def deferral_count(self):
        return sum(1 for event in self.events if event.kind == "defer")


class _SchedulerProvider(SchemaProvider):
    """Schema provider that reflects the scheduler's progress.

    Column lookups consult, in order: lineage already extracted for a Query
    Dictionary entry, the optional catalog, and finally — when the relation
    is a *pending* Query Dictionary entry and the stack is enabled — raise
    :class:`UnknownRelationError` so the scheduler defers to it.

    ``current`` is the identifier being extracted through this provider; a
    query reading the relation it also writes (``UPDATE ... FROM``,
    self-referencing ``INSERT``) must not be treated as a missing dependency
    on itself.  Parallel wave extraction gives each worker its own provider
    with ``current`` fixed, so no shared mutable state is involved.
    """

    def __init__(self, scheduler, current=None):
        self.scheduler = scheduler
        self.current = current

    def get_columns(self, name):
        name = normalize_name(name)
        lineage = self.scheduler.results.get(name)
        if lineage is not None:
            return list(lineage.output_columns)
        if self.scheduler.catalog is not None:
            table = self.scheduler.catalog.get(name)
            if table is not None:
                return table.column_names()
        if (
            self.scheduler.use_stack
            and name in self.scheduler.pending
            and name != self.current
        ):
            raise UnknownRelationError(
                name, reason="defined by a not-yet-processed query"
            )
        return None


class AutoInferenceScheduler:
    """Drive lineage extraction over a whole Query Dictionary."""

    def __init__(
        self,
        query_dictionary,
        catalog=None,
        strict=False,
        use_stack=True,
        collect_traces=False,
        max_deferrals=None,
        mode="dag",
        workers=None,
        seed_results=None,
        dag=None,
    ):
        if mode not in ("dag", "stack"):
            raise ValueError(f"mode must be 'dag' or 'stack', got {mode!r}")
        self.query_dictionary = query_dictionary
        self.catalog = catalog
        self.strict = strict
        self.use_stack = use_stack
        self.collect_traces = collect_traces
        self.max_deferrals = max_deferrals
        self.mode = mode if use_stack else "stack"
        self.workers = workers
        self.results = {}
        self.pending = set(query_dictionary.identifiers())
        self.seeded = []
        if seed_results:
            for identifier in query_dictionary.identifiers():
                lineage = seed_results.get(identifier)
                if lineage is not None:
                    self.results[identifier] = lineage
                    self.pending.discard(identifier)
                    self.seeded.append(identifier)
        #: a pre-built DependencyDAG for this Query Dictionary may be passed
        #: in (the incremental runner already computed one for its dirty
        #: set); otherwise the plan-first mode builds it on demand.
        self.dag = dag
        self.provider = _SchedulerProvider(self)
        self.extractor = LineageExtractor(
            provider=self.provider,
            strict=strict,
            collect_trace=collect_traces,
        )

    # ------------------------------------------------------------------
    def run(self):
        """Process every Query Dictionary entry; return (graph, report)."""
        report = ScheduleReport(mode=self.mode, reused=list(self.seeded))
        if self.mode == "dag":
            self._run_planned(report)
        else:
            for identifier in self.query_dictionary.identifiers():
                if identifier not in self.pending:
                    continue
                self._process_with_stack(identifier, report)

        graph = LineageGraph()
        for identifier in self.seeded:
            graph.add(self.results[identifier])
        for identifier in report.order:
            lineage = self.results.get(identifier)
            if lineage is not None:
                graph.add(lineage)
        return graph, report

    # ------------------------------------------------------------------
    # Plan-first (DAG) mode
    # ------------------------------------------------------------------
    def _run_planned(self, report):
        if self.dag is None:
            self.dag = DependencyDAG.from_query_dictionary(self.query_dictionary)
        waves, deferred = self.dag.waves()
        report.waves = [list(wave) for wave in waves]
        parallel = self.workers and self.workers > 1
        pool = None
        try:
            for wave in waves:
                todo = [identifier for identifier in wave if identifier in self.pending]
                if parallel and len(todo) > 1:
                    if pool is None:
                        # one executor for the whole run — waves are already
                        # barriers, so spawning threads per wave would only
                        # pay startup cost repeatedly
                        from concurrent.futures import ThreadPoolExecutor

                        pool = ThreadPoolExecutor(max_workers=self.workers)
                    fallback = self._run_wave_parallel(pool, todo, report)
                else:
                    fallback = todo
                for identifier in fallback:
                    if identifier in self.pending:
                        self._process_with_stack(identifier, report)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        # Entries the plan could not order (dependency cycles): hand them to
        # the stack, which reports genuine cycles with the participant list.
        for identifier in deferred:
            if identifier in self.pending:
                self._process_with_stack(identifier, report)

    def _run_wave_parallel(self, pool, todo, report):
        """Extract one wave's entries concurrently; return pre-pass misses.

        Each worker gets its own extractor and provider (no shared mutable
        state); results are recorded in wave order after the wave completes,
        so the report and graph are identical for any worker count.  An
        entry whose extraction hits an :class:`UnknownRelationError` — a
        dependency the pre-pass could not see — is returned for sequential
        re-processing with the deferral stack.
        """

        def extract(identifier):
            extractor = LineageExtractor(
                provider=_SchedulerProvider(self, current=identifier),
                strict=self.strict,
                collect_trace=self.collect_traces,
            )
            return extractor.extract_statement(self.query_dictionary.get(identifier))

        futures = [(identifier, pool.submit(extract, identifier)) for identifier in todo]
        # Drain every future BEFORE recording anything: workers read
        # scheduler.results through their providers, so recording mid-wave
        # would let a sibling racily observe a same-wave result and make the
        # report (order, deferral events) timing-dependent.
        fallback = []
        outcomes = []
        for identifier, future in futures:
            try:
                outcomes.append((identifier, future.result()))
            except UnknownRelationError:
                fallback.append(identifier)
        for identifier, (lineage, trace) in outcomes:
            self._record(identifier, lineage, trace, report)
        return fallback

    def _record(self, identifier, lineage, trace, report):
        self.results[identifier] = lineage
        self.pending.discard(identifier)
        report.order.append(identifier)
        if self.collect_traces:
            report.traces[identifier] = trace
        report.events.append(DeferralEvent(kind="done", identifier=identifier))

    # ------------------------------------------------------------------
    # Reactive (stack) mode — also the fallback for pre-pass misses
    # ------------------------------------------------------------------
    def _process_with_stack(self, identifier, report):
        stack = [identifier]
        deferrals = 0
        limit = self.max_deferrals or (10 * max(len(self.query_dictionary), 1))
        while stack:
            current = stack[-1]
            if current not in self.pending:
                stack.pop()
                continue
            entry = self.query_dictionary.get(current)
            self.provider.current = current
            try:
                lineage, trace = self.extractor.extract_statement(entry)
            except UnknownRelationError as error:
                missing = normalize_name(error.relation)
                if not self.use_stack:
                    # Without the stack we cannot recover; record and move on.
                    report.unresolved[current] = str(error)
                    self.pending.discard(current)
                    stack.pop()
                    continue
                if missing in stack:
                    raise CyclicDependencyError(stack[stack.index(missing):] + [missing])
                if missing not in self.pending:
                    # The dependency failed previously; give up on this entry.
                    report.unresolved[current] = str(error)
                    self.pending.discard(current)
                    stack.pop()
                    continue
                deferrals += 1
                if deferrals > limit:
                    raise DeferralLimitExceededError(stack, limit)
                report.events.append(
                    DeferralEvent(kind="defer", identifier=current, missing=missing)
                )
                stack.append(missing)
                continue
            finally:
                self.provider.current = None
            # Success: record the result and resume whatever was deferred.
            self._record(current, lineage, trace, report)
            stack.pop()
            if stack:
                report.events.append(
                    DeferralEvent(kind="resume", identifier=stack[-1], missing=current)
                )
        return report
