"""Table/View Auto-Inference: stack-based reordering of query processing.

Section III of the paper: the extraction module "gives priority to SQL
statements identified by keys in QD"; when a traversal encounters a table or
view that has not been processed yet, the current traversal is deferred onto
a stack, the missing dependency is processed first, and the deferred work is
resumed in LIFO order.  This is what makes ``SELECT *`` over a later-defined
view and unprefixed column references resolvable without DBMS metadata.

The scheduler also supports ``use_stack=False`` for the ablation benchmark
(ABL-STACK in DESIGN.md): queries are then processed strictly in Query
Dictionary order and any not-yet-known relation is treated as an external
table of unknown schema, reproducing the failure modes of single-pass tools.
"""

from dataclasses import dataclass, field

from .errors import CyclicDependencyError, UnknownRelationError
from .extractor import LineageExtractor, SchemaProvider
from .lineage import LineageGraph
from ..sqlparser.dialect import normalize_name


@dataclass
class DeferralEvent:
    """One stack operation, recorded for tests and the ablation bench."""

    kind: str            # "defer" | "resume" | "done"
    identifier: str
    missing: str = ""


@dataclass
class ScheduleReport:
    """What the scheduler did: processing order and deferral events."""

    order: list = field(default_factory=list)
    events: list = field(default_factory=list)
    unresolved: dict = field(default_factory=dict)   # identifier -> error message
    traces: dict = field(default_factory=dict)       # identifier -> ExtractionTrace

    @property
    def deferral_count(self):
        return sum(1 for event in self.events if event.kind == "defer")


class _SchedulerProvider(SchemaProvider):
    """Schema provider that reflects the scheduler's progress.

    Column lookups consult, in order: lineage already extracted for a Query
    Dictionary entry, the optional catalog, and finally — when the relation
    is a *pending* Query Dictionary entry and the stack is enabled — raise
    :class:`UnknownRelationError` so the scheduler defers to it.
    """

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def get_columns(self, name):
        name = normalize_name(name)
        lineage = self.scheduler.results.get(name)
        if lineage is not None:
            return list(lineage.output_columns)
        if self.scheduler.catalog is not None:
            table = self.scheduler.catalog.get(name)
            if table is not None:
                return table.column_names()
        if (
            self.scheduler.use_stack
            and name in self.scheduler.pending
            and name != self.scheduler.current
        ):
            raise UnknownRelationError(
                name, reason="defined by a not-yet-processed query"
            )
        return None


class AutoInferenceScheduler:
    """Drive lineage extraction over a whole Query Dictionary."""

    def __init__(
        self,
        query_dictionary,
        catalog=None,
        strict=False,
        use_stack=True,
        collect_traces=False,
        max_deferrals=None,
    ):
        self.query_dictionary = query_dictionary
        self.catalog = catalog
        self.strict = strict
        self.use_stack = use_stack
        self.collect_traces = collect_traces
        self.max_deferrals = max_deferrals
        self.results = {}
        self.pending = set(query_dictionary.identifiers())
        #: identifier currently being extracted; a query reading the relation
        #: it also writes (UPDATE ... FROM, self-referencing INSERT) must not
        #: be treated as a missing dependency on itself.
        self.current = None
        self.extractor = LineageExtractor(
            provider=_SchedulerProvider(self),
            strict=strict,
            collect_trace=collect_traces,
        )

    # ------------------------------------------------------------------
    def run(self):
        """Process every Query Dictionary entry; return (graph, report)."""
        report = ScheduleReport()
        for identifier in self.query_dictionary.identifiers():
            if identifier not in self.pending:
                continue
            self._process_with_stack(identifier, report)

        graph = LineageGraph()
        for identifier in report.order:
            lineage = self.results.get(identifier)
            if lineage is not None:
                graph.add(lineage)
        return graph, report

    # ------------------------------------------------------------------
    def _process_with_stack(self, identifier, report):
        stack = [identifier]
        deferrals = 0
        limit = self.max_deferrals or (10 * max(len(self.query_dictionary), 1))
        while stack:
            current = stack[-1]
            if current not in self.pending:
                stack.pop()
                continue
            entry = self.query_dictionary.get(current)
            self.current = current
            try:
                lineage, trace = self.extractor.extract_statement(entry)
            except UnknownRelationError as error:
                missing = normalize_name(error.relation)
                if not self.use_stack:
                    # Without the stack we cannot recover; record and move on.
                    report.unresolved[current] = str(error)
                    self.pending.discard(current)
                    stack.pop()
                    continue
                if missing in stack:
                    raise CyclicDependencyError(stack[stack.index(missing):] + [missing])
                if missing not in self.pending:
                    # The dependency failed previously; give up on this entry.
                    report.unresolved[current] = str(error)
                    self.pending.discard(current)
                    stack.pop()
                    continue
                deferrals += 1
                if deferrals > limit:
                    raise CyclicDependencyError(stack)
                report.events.append(
                    DeferralEvent(kind="defer", identifier=current, missing=missing)
                )
                stack.append(missing)
                continue
            # Success: record the result and resume whatever was deferred.
            self.results[current] = lineage
            self.pending.discard(current)
            report.order.append(current)
            if self.collect_traces:
                report.traces[current] = trace
            stack.pop()
            report.events.append(DeferralEvent(kind="done", identifier=current))
            if stack:
                report.events.append(
                    DeferralEvent(kind="resume", identifier=stack[-1], missing=current)
                )
        return report
