"""Table/View Auto-Inference: planned and stack-based query scheduling.

Section III of the paper: the extraction module "gives priority to SQL
statements identified by keys in QD"; when a traversal encounters a table or
view that has not been processed yet, the current traversal is deferred onto
a stack, the missing dependency is processed first, and the deferred work is
resumed in LIFO order.  This is what makes ``SELECT *`` over a later-defined
view and unprefixed column references resolvable without DBMS metadata.

This module supports two scheduling modes:

* ``mode="dag"`` (the default) — *plan-first*: a cheap pre-pass
  (:class:`~repro.core.dag.DependencyDAG`) reads each statement's
  ``FROM``/``JOIN``/set-operation sources, topologically sorts the Query
  Dictionary into waves, and extracts in dependency order.  The LIFO
  deferral stack is retained only as a fallback for references the pre-pass
  cannot see; on well-formed input it never fires.  Entries within a wave
  are mutually independent, so they can optionally be extracted in
  parallel (``workers=N``) on either executor backend:
  ``executor="thread"`` (a ``ThreadPoolExecutor`` — extraction is
  CPU-bound pure Python, so under the GIL this mostly serializes; useful
  on free-threaded builds) or ``executor="process"`` (a
  ``ProcessPoolExecutor`` — each wave entry ships to a worker process as
  a picklable, self-contained :func:`extract_statement_job`, actually
  using the cores).  Results are recorded in wave order after each wave
  drains, so the output is byte-identical for any worker count and any
  executor; a process pool that cannot start (no fork/spawn support,
  sandboxes) degrades gracefully to threads.
* ``mode="stack"`` — the paper's reactive behaviour: process entries in
  Query Dictionary order and discover dependencies via thrown
  :class:`UnknownRelationError`.

The scheduler also supports ``use_stack=False`` for the ablation benchmark
(ABL-STACK in DESIGN.md): queries are then processed strictly in Query
Dictionary order and any not-yet-known relation is treated as an external
table of unknown schema, reproducing the failure modes of single-pass tools.
(``use_stack=False`` forces the reactive mode — planning would mask exactly
the failure modes the ablation measures.)

``seed_results`` pre-populates extraction results (keyed by identifier) and
is the substrate of incremental re-extraction: seeded entries are treated as
already processed and spliced into the output graph unchanged.
"""

import contextlib
import pickle
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field

from .dag import DependencyDAG
from .errors import (
    CyclicDependencyError,
    DeferralLimitExceededError,
    UnknownRelationError,
)
from .extractor import LineageExtractor, MappingSchemaProvider, SchemaProvider
from .lineage import LineageGraph
from ..sqlparser.dialect import normalize_name

#: executor kinds accepted by the scheduler (and by SessionConfig/the CLI).
EXECUTORS = ("thread", "process")


def extract_statement_job(entry, schemas, pending, strict, collect_trace):
    """Extract one Query Dictionary entry against a schema snapshot.

    A module-level *pure* function of picklable inputs: ``entry`` is the
    :class:`~repro.core.preprocess.ParsedQuery`, ``schemas`` a plain
    ``{relation: [columns]}`` snapshot of everything visible to it, and
    ``pending`` the referenced relations that are still unextracted Query
    Dictionary entries (a lookup of one raises
    :class:`UnknownRelationError`, which the scheduler turns into a
    deferral-stack fallback).  Being module-level and self-contained is what
    makes ``executor="process"`` possible: the job ships to a
    ``ProcessPoolExecutor`` worker as data, runs without any shared state,
    and returns a picklable ``(TableLineage, ExtractionTrace)`` pair.
    """
    provider = MappingSchemaProvider(
        schemas, pending=pending, current=entry.identifier
    )
    extractor = LineageExtractor(
        provider=provider, strict=strict, collect_trace=collect_trace
    )
    return extractor.extract_statement(entry)


def extract_statement_batch_job(jobs, strict, collect_trace):
    """Extract a batch of wave entries in one worker round trip.

    ``jobs`` is a list of ``(entry, schemas, pending)`` triples, each the
    payload of one :func:`extract_statement_job`.  The 100k-statement
    scale tier made per-entry submission a bottleneck: wide waves mean
    tens of thousands of futures, each paying pickling and queue overhead
    for milliseconds of work.  Batches amortise that, and the scheduler
    routes each batch by store shard (content-hash prefix), so the
    results a batch produces land in one shard's transaction when the
    runner bulk-persists them.

    Outcomes are per entry and positional: ``("ok", lineage, trace)`` or
    ``("defer", None, None)`` for an :class:`UnknownRelationError` (a
    dependency the pre-pass could not see — that *entry* falls back to
    the deferral stack, not the whole batch).  Any other exception
    propagates and fails the batch's future, exactly like the per-entry
    job.
    """
    outcomes = []
    for entry, schemas, pending in jobs:
        try:
            lineage, trace = extract_statement_job(
                entry, schemas, pending, strict, collect_trace
            )
        except UnknownRelationError:
            outcomes.append(("defer", None, None))
        else:
            outcomes.append(("ok", lineage, trace))
    return outcomes


def _probe_job():
    """A no-op shipped through a fresh process pool to prove it works."""
    return True


@contextlib.contextmanager
def _managed_pool(pool):
    """Deterministic executor shutdown, success or failure.

    On a clean exit the pool drains normally; when a wave raises, queued
    futures are cancelled *before* the join so no stray extraction keeps
    running (or keeps worker threads/processes alive) after the scheduler
    has already propagated the error.
    """
    try:
        yield pool
    except BaseException:
        pool.shutdown(wait=True, cancel_futures=True)
        raise
    else:
        pool.shutdown(wait=True)


@dataclass
class DeferralEvent:
    """One stack operation, recorded for tests and the ablation bench."""

    kind: str            # "defer" | "resume" | "done"
    identifier: str
    missing: str = ""


@dataclass
class ScheduleReport:
    """What the scheduler did: plan, processing order, and deferral events."""

    order: list = field(default_factory=list)
    events: list = field(default_factory=list)
    unresolved: dict = field(default_factory=dict)   # identifier -> error message
    traces: dict = field(default_factory=dict)       # identifier -> ExtractionTrace
    mode: str = "stack"
    waves: list = field(default_factory=list)        # the topological plan (dag mode)
    reused: list = field(default_factory=list)       # identifiers spliced from a cache
    #: where each reused identifier was spliced from: ``"memory"`` (the
    #: previous result's graph, i.e. the incremental layer) or ``"store"``
    #: (the persistent content-addressed lineage store).
    reused_from: dict = field(default_factory=dict)
    #: the wave-execution backend actually used: ``"serial"``, ``"thread"``,
    #: or ``"process"`` (a requested process pool that could not be started
    #: degrades to ``"thread"``; a pool that breaks mid-run finishes
    #: sequentially and is reported as ``"<backend>-degraded-serial"``).
    executor: str = "serial"

    @property
    def deferral_count(self):
        return sum(1 for event in self.events if event.kind == "defer")


class _SchedulerProvider(SchemaProvider):
    """Schema provider that reflects the scheduler's progress.

    Column lookups consult, in order: lineage already extracted for a Query
    Dictionary entry, the optional catalog, and finally — when the relation
    is a *pending* Query Dictionary entry and the stack is enabled — raise
    :class:`UnknownRelationError` so the scheduler defers to it.

    ``current`` is the identifier being extracted through this provider; a
    query reading the relation it also writes (``UPDATE ... FROM``,
    self-referencing ``INSERT``) must not be treated as a missing dependency
    on itself.  Parallel wave extraction gives each worker its own provider
    with ``current`` fixed, so no shared mutable state is involved.
    """

    def __init__(self, scheduler, current=None):
        self.scheduler = scheduler
        self.current = current

    def get_columns(self, name):
        name = normalize_name(name)
        scheduler = self.scheduler
        lineage = scheduler.results.get(name)
        if lineage is not None:
            # memoized across statements within the run; the cached list is
            # stamped with the TableLineage version token so a (never
            # expected) post-record mutation invalidates instead of serving
            # stale columns.  Wide schemas referenced by many statements
            # stop rebuilding their column list per reference.
            cached = scheduler.schema_cache.get(name)
            if cached is not None and cached[0] == lineage._version:
                return list(cached[1])
            columns = list(lineage.output_columns)
            scheduler.schema_cache[name] = (lineage._version, columns)
            return list(columns)
        if (
            scheduler.use_stack
            and name in scheduler.pending
            and name != self.current
        ):
            # A pending Query Dictionary entry shadows any same-named
            # catalog table: a relation that is both a catalog table and a
            # write target (MERGE/UPDATE/INSERT into a base table) must
            # resolve to the entry's extracted output columns regardless of
            # processing order — falling back to the catalog here would
            # make stack-mode results depend on statement order.
            raise UnknownRelationError(
                name, reason="defined by a not-yet-processed query"
            )
        if scheduler.catalog is not None:
            # the catalog is frozen for the duration of a run (it is built
            # before scheduling and only merged/extended between runs), so
            # its column lists memoize under a version-less token
            cached = scheduler.schema_cache.get(name)
            if cached is not None and cached[0] is None:
                return list(cached[1])
            table = scheduler.catalog.get(name)
            if table is not None:
                columns = table.column_names()
                scheduler.schema_cache[name] = (None, list(columns))
                return columns
        return None


class AutoInferenceScheduler:
    """Drive lineage extraction over a whole Query Dictionary."""

    def __init__(
        self,
        query_dictionary,
        catalog=None,
        strict=False,
        use_stack=True,
        collect_traces=False,
        max_deferrals=None,
        mode="dag",
        workers=None,
        executor="thread",
        seed_results=None,
        seed_origins=None,
        dag=None,
        release_asts=False,
        wave_batching=False,
        shard_router=None,
    ):
        if mode not in ("dag", "stack"):
            raise ValueError(f"mode must be 'dag' or 'stack', got {mode!r}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {', '.join(EXECUTORS)}, got {executor!r}"
            )
        self.query_dictionary = query_dictionary
        self.catalog = catalog
        self.strict = strict
        self.use_stack = use_stack
        self.collect_traces = collect_traces
        self.max_deferrals = max_deferrals
        self.mode = mode if use_stack else "stack"
        self.workers = workers
        self.executor = executor
        #: streaming mode: drop each entry's AST as soon as its lineage is
        #: recorded, so a run holds at most one wave's ASTs at a time.
        self.release_asts = release_asts
        #: streaming mode: ship each wave to the pool as a few
        #: :func:`extract_statement_batch_job` batches instead of one
        #: future per entry (see that function's docstring).
        self.wave_batching = wave_batching
        #: optional ``entry -> shard index`` callable (the runner passes
        #: the store's content-hash routing); batches are grouped by it so
        #: one batch's results persist into one shard's transaction.
        self.shard_router = shard_router
        self.results = {}
        #: name -> (TableLineage._version, [columns]); the provider's
        #: per-relation resolved-column memo (see _SchedulerProvider).
        self.schema_cache = {}
        self.pending = set(query_dictionary.identifiers())
        self.seeded = []
        #: identifier -> "memory" | "store"; where each seed was spliced from
        self.seed_origins = {}
        if seed_results:
            seed_origins = seed_origins or {}
            for identifier in query_dictionary.identifiers():
                lineage = seed_results.get(identifier)
                if lineage is not None:
                    self.results[identifier] = lineage
                    self.pending.discard(identifier)
                    self.seeded.append(identifier)
                    self.seed_origins[identifier] = seed_origins.get(
                        identifier, "memory"
                    )
        #: a pre-built DependencyDAG for this Query Dictionary may be passed
        #: in (the incremental runner already computed one for its dirty
        #: set); otherwise the plan-first mode builds it on demand.
        self.dag = dag
        self.provider = _SchedulerProvider(self)
        self.extractor = LineageExtractor(
            provider=self.provider,
            strict=strict,
            collect_trace=collect_traces,
        )

    # ------------------------------------------------------------------
    def run(self):
        """Process every Query Dictionary entry; return (graph, report)."""
        report = ScheduleReport(
            mode=self.mode,
            reused=list(self.seeded),
            reused_from=dict(self.seed_origins),
        )
        if self.mode == "dag":
            self._run_planned(report)
        else:
            for identifier in self.query_dictionary.identifiers():
                if identifier not in self.pending:
                    continue
                self._process_with_stack(identifier, report)

        graph = LineageGraph()
        for identifier in self.seeded:
            graph.add(self.results[identifier])
        for identifier in report.order:
            lineage = self.results.get(identifier)
            if lineage is not None:
                graph.add(lineage)
        return graph, report

    # ------------------------------------------------------------------
    # Plan-first (DAG) mode
    # ------------------------------------------------------------------
    def _run_planned(self, report):
        if self.dag is None:
            self.dag = DependencyDAG.from_query_dictionary(self.query_dictionary)
        waves, deferred = self.dag.waves()
        report.waves = [list(wave) for wave in waves]
        parallel = self.workers and self.workers > 1
        with contextlib.ExitStack() as stack:
            pool = None
            for wave in waves:
                todo = [identifier for identifier in wave if identifier in self.pending]
                if parallel and len(todo) > 1:
                    if pool is None:
                        # one executor for the whole run — waves are already
                        # barriers, so spawning workers per wave would only
                        # pay startup cost repeatedly.  The pool is
                        # context-managed: a raising wave cancels queued
                        # futures and joins the workers deterministically.
                        pool = self._open_pool(stack, report)
                    if pool is not None:
                        fallback = self._run_wave_parallel(pool, todo, report)
                        if self._pool_broken:
                            # the remainder of the run is sequential; make
                            # report.executor say so instead of advertising
                            # a backend that stopped mid-run
                            report.executor = f"{report.executor}-degraded-serial"
                            pool = None
                            parallel = False
                    else:
                        fallback = todo
                else:
                    fallback = todo
                for identifier in fallback:
                    if identifier in self.pending:
                        self._process_with_stack(identifier, report)
        # Entries the plan could not order (dependency cycles): hand them to
        # the stack, which reports genuine cycles with the participant list.
        for identifier in deferred:
            if identifier in self.pending:
                self._process_with_stack(identifier, report)

    _pool_broken = False

    def _open_pool(self, stack, report):
        """Open the configured executor pool (registered on ``stack``).

        ``executor="process"`` starts a ``ProcessPoolExecutor`` (preferring
        the cheap ``fork`` start method where the platform offers it) and
        proves it with a probe job; any failure — no ``fork``/``spawn``
        support, sandboxed environments, pickling restrictions — degrades
        gracefully to the thread pool, recorded in ``report.executor``.
        """
        if self.executor == "process":
            try:
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor

                mp_context = None
                if "fork" in multiprocessing.get_all_start_methods():
                    mp_context = multiprocessing.get_context("fork")
                pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=mp_context
                )
                try:
                    pool.submit(_probe_job).result(timeout=60)
                except BaseException:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                report.executor = "process"
                return stack.enter_context(_managed_pool(pool))
            except Exception:
                pass  # fall back to threads below
        from concurrent.futures import ThreadPoolExecutor

        report.executor = "thread"
        pool = ThreadPoolExecutor(max_workers=self.workers)
        return stack.enter_context(_managed_pool(pool))

    def _schema_snapshot(self, identifier):
        """``(schemas, pending)`` visible to one entry, as plain data.

        Mirrors the live :class:`_SchedulerProvider` lookup order — already
        extracted results first, then "pending Query Dictionary entry"
        (which shadows any same-named catalog table, so a write target of a
        not-yet-processed MERGE/UPDATE defers instead of silently resolving
        catalog columns), then the catalog — restricted to the relations
        the entry's statement actually references, so the snapshot pickled
        to a worker process stays small.  The self-reference is included (a
        query reading the relation it writes resolves it through the
        catalog, exactly like the live provider with ``current`` set) but
        is never treated as pending.
        """
        entry = self.query_dictionary.get(identifier)
        schemas = {}
        pending = set()
        for name in entry.table_refs():
            lineage = self.results.get(name)
            if lineage is not None:
                schemas[name] = list(lineage.output_columns)
                continue
            if self.use_stack and name in self.pending and name != identifier:
                # mirrors the live provider: a pending entry shadows a
                # same-named catalog table (write targets of MERGE/UPDATE)
                pending.add(name)
                continue
            if self.catalog is not None:
                table = self.catalog.get(name)
                if table is not None:
                    schemas[name] = table.column_names()
        return schemas, frozenset(pending)

    def _run_wave_parallel(self, pool, todo, report):
        """Extract one wave's entries concurrently; return pre-pass misses.

        Every entry is shipped as a self-contained
        :func:`extract_statement_job` over a per-entry schema snapshot —
        pure data in, pure data out, for thread and process pools alike —
        and results are recorded in wave order after the whole wave drains,
        so the report and graph are identical for any worker count and any
        executor.  An entry whose extraction hits an
        :class:`UnknownRelationError` — a dependency the pre-pass could not
        see — is returned for sequential re-processing with the deferral
        stack.  A pool that breaks mid-wave (dead worker process, pickling
        failure) flags ``_pool_broken`` and hands the rest of the wave to
        the sequential path instead of failing the run.
        """
        jobs = []
        for identifier in todo:
            entry = self.query_dictionary.get(identifier)
            schemas, pending = self._schema_snapshot(identifier)
            jobs.append((identifier, entry, schemas, pending))
        # Drain every future BEFORE recording anything, and record in wave
        # (= submission) order, so the recorded order — and with it the
        # report — never depends on worker timing or batch composition.
        fallback = []
        outcomes = {}
        for identifiers, future in self._submit_wave(pool, jobs):
            try:
                result = future.result()
            except UnknownRelationError:
                fallback.extend(identifiers)
                continue
            except BrokenExecutor:
                self._pool_broken = True
                fallback.extend(identifiers)
                continue
            except (pickle.PicklingError, TypeError) as error:
                # an un-picklable payload means this executor cannot run the
                # job at all; anything else is a genuine extraction error
                if "pickle" not in str(error).lower():
                    raise
                self._pool_broken = True
                fallback.extend(identifiers)
                continue
            if len(identifiers) == 1 and not isinstance(result, list):
                outcomes[identifiers[0]] = result
                continue
            for identifier, (status, lineage, trace) in zip(identifiers, result):
                if status == "ok":
                    outcomes[identifier] = (lineage, trace)
                else:
                    fallback.append(identifier)
        deferred = set(fallback)
        fallback = [identifier for identifier in todo if identifier in deferred]
        for identifier in todo:
            outcome = outcomes.get(identifier)
            if outcome is not None:
                self._record(identifier, outcome[0], outcome[1], report)
        return fallback

    def _submit_wave(self, pool, jobs):
        """Submit one wave's jobs; yield ``(identifiers, future)`` pairs.

        The classic path ships one :func:`extract_statement_job` per
        entry.  With ``wave_batching`` and a wave wider than the worker
        count, entries are grouped — by store shard first when a router is
        configured — and chunked into a few
        :func:`extract_statement_batch_job` submissions per worker, which
        at 100k-statement scale cuts submission and pickling overhead by
        orders of magnitude.
        """
        workers = self.workers or 1
        if not self.wave_batching or len(jobs) <= workers:
            for identifier, entry, schemas, pending in jobs:
                yield (
                    [identifier],
                    pool.submit(
                        extract_statement_job,
                        entry,
                        schemas,
                        pending,
                        self.strict,
                        self.collect_traces,
                    ),
                )
            return
        groups = {}
        if self.shard_router is not None:
            for job in jobs:
                groups.setdefault(self.shard_router(job[1]), []).append(job)
        else:
            groups[0] = list(jobs)
        # a few batches per worker keeps the pool load-balanced even when
        # batch runtimes are skewed, without reintroducing per-entry churn
        batch_size = max(1, min(64, -(-len(jobs) // (workers * 4))))
        for _, group in sorted(groups.items()):
            for start in range(0, len(group), batch_size):
                batch = group[start:start + batch_size]
                yield (
                    [identifier for identifier, *_ in batch],
                    pool.submit(
                        extract_statement_batch_job,
                        [(entry, schemas, pending) for _, entry, schemas, pending in batch],
                        self.strict,
                        self.collect_traces,
                    ),
                )

    def _record(self, identifier, lineage, trace, report):
        self.results[identifier] = lineage
        self.pending.discard(identifier)
        report.order.append(identifier)
        if self.collect_traces:
            report.traces[identifier] = trace
        report.events.append(DeferralEvent(kind="done", identifier=identifier))
        if self.release_asts:
            # streaming: the entry's lineage is recorded and its derived
            # facts (table_refs, content_hash) are cached, so the AST —
            # the dominant per-entry allocation — can go now instead of
            # living until the end of the run
            entry = self.query_dictionary.get(identifier)
            if entry is not None:
                entry.release()

    # ------------------------------------------------------------------
    # Reactive (stack) mode — also the fallback for pre-pass misses
    # ------------------------------------------------------------------
    def _process_with_stack(self, identifier, report):
        stack = [identifier]
        deferrals = 0
        limit = self.max_deferrals or (10 * max(len(self.query_dictionary), 1))
        while stack:
            current = stack[-1]
            if current not in self.pending:
                stack.pop()
                continue
            entry = self.query_dictionary.get(current)
            self.provider.current = current
            try:
                lineage, trace = self.extractor.extract_statement(entry)
            except UnknownRelationError as error:
                missing = normalize_name(error.relation)
                if not self.use_stack:
                    # Without the stack we cannot recover; record and move on.
                    report.unresolved[current] = str(error)
                    self.pending.discard(current)
                    stack.pop()
                    continue
                if missing in stack:
                    raise CyclicDependencyError(stack[stack.index(missing):] + [missing])
                if missing not in self.pending:
                    # The dependency failed previously; give up on this entry.
                    report.unresolved[current] = str(error)
                    self.pending.discard(current)
                    stack.pop()
                    continue
                deferrals += 1
                if deferrals > limit:
                    raise DeferralLimitExceededError(stack, limit)
                report.events.append(
                    DeferralEvent(kind="defer", identifier=current, missing=missing)
                )
                stack.append(missing)
                continue
            finally:
                self.provider.current = None
            # Success: record the result and resume whatever was deferred.
            self._record(current, lineage, trace, report)
            stack.pop()
            if stack:
                report.events.append(
                    DeferralEvent(kind="resume", identifier=stack[-1], missing=current)
                )
        return report
