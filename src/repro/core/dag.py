"""The relation dependency DAG — a cheap pre-pass over parsed statements.

The Table/View Auto-Inference stack (Section III of the paper) discovers
dependencies *reactively*: it starts extracting a query, hits an unknown
relation, and defers.  For whole-warehouse extraction the dependency
structure is static and can be read directly off the parsed statements: the
relations a query reads are exactly the ``FROM`` / ``JOIN`` / set-operation
sources appearing anywhere in its AST (minus the CTE names it defines
itself).

:class:`DependencyDAG` materialises that structure once, in a pass that is
orders of magnitude cheaper than full extraction.  It backs three features:

* the scheduler's *plan-first* mode — topologically sort the Query
  Dictionary into :meth:`waves` and extract in dependency order, so the
  deferral stack is only ever needed for references the pre-pass cannot see;
* wave-level parallelism — entries within one wave are mutually independent
  and can be extracted concurrently;
* incremental re-extraction — :meth:`transitive_dependents` is the dirty
  set of a source change.

The pre-pass deliberately over-approximates (it collects every table
reference under a statement, including those inside subqueries); an
over-approximation can only make the plan more conservative, never wrong,
and any reference it *misses* is still recovered by the stack fallback.
"""

from ..sqlparser import ast
from ..sqlparser.dialect import normalize_name

#: node classes that can never contain a TableRef below them — the
#: reference walk skips their child enumeration outright.
_ATOMIC_NODES = frozenset(
    (
        ast.ColumnRef,
        ast.Star,
        ast.Literal,
        ast.Parameter,
        ast.QualifiedName,
        ast.ColumnDef,
        ast.WindowFrame,
    )
)


def _scoped_table_refs(node, active_ctes, referenced):
    """Collect table references, resolving CTE names *lexically*.

    A CTE name only shadows table references within the query expression
    that defines it (and nested subqueries) — exactly the scoping the
    extractor applies.  Stripping CTE names globally would hide a genuine
    dependency whenever a subquery-local CTE shares its name with a real
    relation, which is merely conservative for scheduling (the stack
    fallback recovers) but unsound for incremental invalidation.

    The common CTE-free path runs on an explicit stack — this pre-pass
    walks every statement once per cold preprocess, and recursive generator
    descent was a measurable slice of it.  Scope sets are shared between
    siblings (they are only replaced, never mutated, when a CTE list forks
    a new scope), and ``referenced`` is an unordered set, so traversal
    order does not matter.
    """
    stack = [(node, active_ctes)]
    atomic = _ATOMIC_NODES
    while stack:
        node, scope = stack.pop()
        if node is None:
            continue
        cls = type(node)
        if cls in atomic:
            continue
        if cls is ast.TableRef:
            name = normalize_name(node.name.dotted())
            if name not in scope:
                referenced.add(name)
            continue
        if (cls is ast.Select or cls is ast.SetOperation) and node.ctes:
            forked = set(scope)
            for cte in node.ctes:
                # a CTE body sees the preceding CTEs and (if recursive) itself
                stack.append((cte.query, forked | {normalize_name(cte.name)}))
                forked = forked | {normalize_name(cte.name)}
            # walk the remaining children through Node.children() — it
            # knows about tuple-valued fields (e.g. named WINDOW clauses)
            # — skipping the CTE nodes handled above
            cte_ids = {id(cte) for cte in node.ctes}
            for child in node.children():
                if id(child) not in cte_ids:
                    stack.append((child, forked))
            continue
        for child in node.children():
            stack.append((child, scope))


def statement_table_refs(statement):
    """Every relation name referenced anywhere under ``statement``.

    CTE names are resolved lexically (matching the extractor) and excluded;
    the statement's own target relation is *not* excluded — callers that
    need dependencies subtract it (see
    :meth:`repro.core.preprocess.ParsedQuery.dependencies`).

    Statements whose lineage rewrite *binds* the written relation — UPDATE,
    DELETE, MERGE, and upserting INSERTs (``ON CONFLICT``) — include that
    target here even though it appears only as a bare name in the AST: the
    extraction resolves columns against it, so schema snapshots (process
    workers) and store cache keys must see it.  ``dependencies()`` subtracts
    the entry's own identifier, so this never creates a self-dependency.
    """
    referenced = set()
    _scoped_table_refs(statement, frozenset(), referenced)
    target = _written_target(statement)
    if target is not None:
        referenced.add(target)
    return referenced


def _written_target(statement):
    """The written relation a statement's lineage rewrite binds, if any."""
    cls = type(statement)
    if cls is ast.UpdateStatement or cls is ast.DeleteStatement:
        return normalize_name(statement.table.dotted())
    if cls is ast.MergeStatement:
        return normalize_name(statement.target.dotted())
    if cls is ast.InsertStatement and statement.on_conflict is not None:
        return normalize_name(statement.table.dotted())
    return None


def statement_dependencies(entry):
    """Relations read by one Query Dictionary entry (CTE names excluded).

    Returns a set of normalised relation names referenced anywhere under the
    entry's statement, minus the names of CTEs in scope at the reference
    (lexical scoping, matching the extractor) and minus the entry's own
    identifier (a query reading the relation it writes — ``UPDATE ... FROM``,
    self-referencing ``INSERT`` — is not a dependency on another entry).
    The reference set is cached on the entry (and replayed from the parse
    cache for warm starts), so repeated DAG builds never re-walk the AST.
    """
    return set(entry.dependencies())


class DependencyDAG:
    """Dependency structure of a Query Dictionary.

    ``dependencies`` maps an identifier to the *internal* relations it reads
    (other Query Dictionary entries); ``readers`` maps every referenced
    relation name — internal or external base table — to the identifiers
    that read it.  The latter powers incremental invalidation: dependents of
    a *removed* relation still need re-extraction even though the relation
    is no longer a node.
    """

    def __init__(self):
        self.nodes = []            # QD identifiers, insertion order
        self.dependencies = {}     # identifier -> set of internal identifiers read
        self.dependents = {}       # identifier -> set of internal identifiers reading it
        self.readers = {}          # any relation name -> set of identifiers reading it
        self.references = {}       # identifier -> every relation name it reads
        self._waves_cache = None   # memoized waves() result (the DAG is
                                   # immutable once built, and the runner
                                   # consults the plan repeatedly: store
                                   # splicing, scheduling, stats)

    # ------------------------------------------------------------------
    @classmethod
    def from_query_dictionary(cls, query_dictionary):
        """Build the DAG with one cheap AST walk per entry."""
        dag = cls()
        dag.nodes = list(query_dictionary.identifiers())
        node_set = set(dag.nodes)
        for identifier in dag.nodes:
            dag.dependencies[identifier] = set()
            dag.dependents[identifier] = set()
        for identifier, entry in query_dictionary.items():
            referenced = statement_dependencies(entry)
            dag.references[identifier] = set(referenced)
            for name in referenced:
                dag.readers.setdefault(name, set()).add(identifier)
                if name in node_set:
                    dag.dependencies[identifier].add(name)
                    dag.dependents[name].add(identifier)
        return dag

    # ------------------------------------------------------------------
    def waves(self):
        """Layer the DAG into parallel-safe waves (Kahn's algorithm by level).

        Returns ``(waves, deferred)``: ``waves`` is a list of lists of
        identifiers — every entry in wave *k* depends only on entries in
        waves ``< k``, so entries within one wave are mutually independent;
        ``deferred`` holds the identifiers that could not be scheduled
        because they sit on (or downstream of) a dependency cycle.  Both are
        deterministic: Query Dictionary insertion order breaks all ties.

        The layering is computed once and memoized (the DAG never changes
        after :meth:`from_query_dictionary`); callers get fresh outer
        lists, so mutating a returned plan cannot corrupt the memo.
        """
        if self._waves_cache is not None:
            waves, deferred = self._waves_cache
            return [list(wave) for wave in waves], list(deferred)
        position = {identifier: index for index, identifier in enumerate(self.nodes)}
        indegree = {
            identifier: len(self.dependencies[identifier]) for identifier in self.nodes
        }
        current = sorted(
            (identifier for identifier in self.nodes if indegree[identifier] == 0),
            key=position.__getitem__,
        )
        waves = []
        scheduled = 0
        while current:
            waves.append(current)
            scheduled += len(current)
            ready = []
            for identifier in current:
                for dependent in self.dependents[identifier]:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0:
                        ready.append(dependent)
            current = sorted(ready, key=position.__getitem__)
        deferred = [
            identifier for identifier in self.nodes if indegree[identifier] > 0
        ]
        self._waves_cache = (waves, deferred)
        return [list(wave) for wave in waves], list(deferred)

    def topological_order(self):
        """A flat topological order (waves concatenated, cyclic leftovers last)."""
        waves, deferred = self.waves()
        order = [identifier for wave in waves for identifier in wave]
        order.extend(deferred)
        return order

    # ------------------------------------------------------------------
    def transitive_dependents(self, names):
        """Every entry that transitively reads any relation in ``names``.

        ``names`` may include external relations or identifiers no longer
        present (removed entries): the first hop goes through ``readers``,
        which records every observed reference.  The result never contains
        members of ``names`` unless they also read another member.
        """
        result = set()
        frontier = list(names)
        while frontier:
            name = frontier.pop()
            for reader in self.readers.get(name, ()):
                if reader not in result:
                    result.add(reader)
                    frontier.append(reader)
        return result

    # ------------------------------------------------------------------
    def stats(self):
        """Summary counters (used by the CLI and the benchmarks)."""
        waves, deferred = self.waves()
        return {
            "num_nodes": len(self.nodes),
            "num_edges": sum(len(deps) for deps in self.dependencies.values()),
            "num_waves": len(waves),
            "max_wave_width": max((len(wave) for wave in waves), default=0),
            "num_cyclic": len(deferred),
        }

    def to_dict(self):
        """Plain-data form: ``{identifier: sorted dependencies}``."""
        return {
            identifier: sorted(self.dependencies[identifier])
            for identifier in self.nodes
        }
