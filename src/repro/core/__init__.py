"""The LineageX core: column-level lineage extraction from SQL.

This package implements the paper's primary contribution:

* :mod:`repro.core.preprocess` -- the SQL Preprocessing Module (Query
  Dictionary construction);
* :mod:`repro.core.extractor` -- the SQL Lineage Information Extraction
  Module (post-order AST traversal with the Table I keyword rules);
* :mod:`repro.core.resolver` -- name scopes, ``*`` expansion and ambiguity
  resolution;
* :mod:`repro.core.scheduler` -- the stack-based Table/View Auto-Inference
  mechanism;
* :mod:`repro.core.lineage` -- the lineage graph data model;
* :mod:`repro.core.plan_extractor` -- extraction from simulated EXPLAIN
  plans (database-connection mode);
* :mod:`repro.core.runner` -- the user-facing orchestration API.
"""

from .errors import (
    LineageError,
    UnknownRelationError,
    AmbiguousColumnError,
    CyclicDependencyError,
)
from .column_refs import ColumnName
from .lineage import ColumnEdge, TableLineage, LineageGraph
from .preprocess import ParsedQuery, QueryDictionary, preprocess
from .extractor import LineageExtractor, ExtractionTrace
from .scheduler import AutoInferenceScheduler
from .runner import LineageXResult, LineageXRunner, lineagex

__all__ = [
    "LineageError",
    "UnknownRelationError",
    "AmbiguousColumnError",
    "CyclicDependencyError",
    "ColumnName",
    "ColumnEdge",
    "TableLineage",
    "LineageGraph",
    "ParsedQuery",
    "QueryDictionary",
    "preprocess",
    "LineageExtractor",
    "ExtractionTrace",
    "AutoInferenceScheduler",
    "LineageXResult",
    "LineageXRunner",
    "lineagex",
]
