"""The SQL Lineage Information Extraction Module.

This module implements the heart of LineageX (Section III, Table I of the
paper): a post-order depth-first traversal of the query AST that maintains

* ``T``      -- the table lineage,
* ``C_con``  -- per output column, the set of contributing source columns,
* ``C_ref``  -- source columns referenced by the query,
* ``M_CTE``  -- the lineage of WITH/subquery intermediates,
* ``C_pos``  -- the column candidates currently in scope,
* ``P``      -- the columns of the most recent projection,

and updates them according to the keyword rules:

========================  =====================================================
Keyword                    Rule
========================  =====================================================
``SELECT``                 resolve ``C_con`` for each projection from ``C_pos``
``FROM`` (table/view)      add the relation to ``T`` and its columns to ``C_pos``
``FROM`` (CTE/subquery)    look the intermediate up in ``M_CTE`` and add its
                           columns to ``C_pos``
``WITH`` / subquery        extract the intermediate's lineage and store it in
                           ``M_CTE`` for later reference
set operations             add every projection column of every leaf to
                           ``C_ref`` (a set comparison references all of them)
other keywords             add every column found in the clause to ``C_ref``
========================  =====================================================

In this implementation the traversal state lives in scopes
(:class:`~repro.core.resolver.Scope`) and per-query accumulation objects
(:class:`QueryResult`), which is equivalent to the temporary-variable
formulation of the paper but composes cleanly across nesting levels.
Intermediate results (CTEs, derived tables) are traced *through*, so the
reported lineage only mentions real relations: base tables, views, and other
Query Dictionary entries.
"""

from dataclasses import dataclass, field

from .column_refs import ColumnName
from .errors import UnknownRelationError
from .lineage import TableLineage
from .resolver import Scope, SourceBinding
from ..sqlparser import ast
from ..sqlparser.dialect import normalize_identifier, normalize_name, quote_identifier
from ..sqlparser.printer import to_sql


#: Version of the extraction algorithm's observable output.  It is one of
#: the four components of the persistent lineage store's cache key, so any
#: change to the rules in Table I (or to how results are attributed) must
#: bump it — stale records then become silent cold misses instead of wrong
#: warm hits.
#:
#: v2: the warehouse DML surface (MERGE / INSERT ... ON CONFLICT / QUALIFY
#: / GROUPING SETS) — new reference rules, and the cache-key fingerprint of
#: UPDATE/DELETE/MERGE/upsert entries now covers the written target's
#: schema, so every pre-v2 record must miss cleanly.
EXTRACTOR_VERSION = 2


# ----------------------------------------------------------------------
# Schema providers
# ----------------------------------------------------------------------
class SchemaProvider:
    """Answers "which columns does relation X have?" during extraction.

    The default provider knows nothing: every relation is treated as an
    external base table of unknown schema.  The auto-inference scheduler and
    the catalog integration supply richer providers.
    """

    def get_columns(self, name):
        """Return the ordered column list of ``name`` or ``None`` if unknown.

        Implementations may raise :class:`UnknownRelationError` to signal
        that the relation *will* be known once another Query Dictionary
        entry has been processed — the scheduler reacts by deferring the
        current extraction.
        """
        return None


class CatalogSchemaProvider(SchemaProvider):
    """A provider backed by a :class:`repro.catalog.Catalog`."""

    def __init__(self, catalog):
        self.catalog = catalog

    def get_columns(self, name):
        table = self.catalog.get(name)
        if table is None:
            return None
        return table.column_names()


class MappingSchemaProvider(SchemaProvider):
    """A provider over a plain ``{relation: [columns]}`` snapshot.

    This is the *pure* provider behind wave-parallel extraction: the
    scheduler snapshots the schemas visible to one statement (results of
    already-extracted entries plus catalog tables) into a plain dict, so
    the whole extraction job — provider included — pickles cleanly into a
    worker process and touches no shared mutable state.

    ``pending`` names relations that *will* be defined by a
    not-yet-processed Query Dictionary entry; looking one up raises
    :class:`UnknownRelationError` exactly like the live scheduler provider,
    which the scheduler turns into a deferral-stack fallback.  ``current``
    is the identifier being extracted (a self-reference is never treated
    as a missing dependency).
    """

    def __init__(self, schemas, pending=frozenset(), current=None):
        self.schemas = dict(schemas)
        self.pending = frozenset(pending)
        self.current = current

    def get_columns(self, name):
        name = normalize_name(name)
        columns = self.schemas.get(name)
        if columns is not None:
            return list(columns)
        if name in self.pending and name != self.current:
            raise UnknownRelationError(
                name, reason="defined by a not-yet-processed query"
            )
        return None


# ----------------------------------------------------------------------
# Tracing (used by the Figure 4 benchmark and the tests)
# ----------------------------------------------------------------------
RULE_SELECT = "SELECT"
RULE_FROM_TABLE = "FROM (Table/View)"
RULE_FROM_CTE = "FROM (CTE/Subquery)"
RULE_WITH = "WITH/Subquery"
RULE_SET_OPERATION = "Set Operation"
RULE_OTHER = "Other Keywords"

ALL_RULES = (
    RULE_SELECT,
    RULE_FROM_TABLE,
    RULE_FROM_CTE,
    RULE_WITH,
    RULE_SET_OPERATION,
    RULE_OTHER,
)


@dataclass
class ExtractionStep:
    """One rule firing during the traversal."""

    order: int
    rule: str
    node: str
    detail: str = ""


@dataclass
class ExtractionTrace:
    """The ordered list of rule firings for one extracted query."""

    steps: list = field(default_factory=list)

    #: traces with ``active = False`` (the shared null trace) record
    #: nothing; hot paths test this before building step detail strings.
    active = True

    def add(self, rule, node, detail=""):
        self.steps.append(
            ExtractionStep(order=len(self.steps) + 1, rule=rule, node=node, detail=detail)
        )

    def rule_counts(self):
        """How many times each Table I rule fired."""
        counts = {rule: 0 for rule in ALL_RULES}
        for step in self.steps:
            counts[step.rule] = counts.get(step.rule, 0) + 1
        return counts

    def as_rows(self):
        """Rows of (order, rule, node, detail) for pretty-printing."""
        return [(step.order, step.rule, step.node, step.detail) for step in self.steps]


class _NullTrace:
    """Shared do-nothing trace used when ``collect_trace`` is off.

    Rule firings used to be recorded (and their detail strings formatted)
    on every extraction and then thrown away unless the caller asked for
    traces; the null trace makes the non-collecting path free.
    """

    steps = ()
    active = False

    def add(self, rule, node, detail=""):
        pass

    def rule_counts(self):
        return {rule: 0 for rule in ALL_RULES}

    def as_rows(self):
        return []


_NULL_TRACE = _NullTrace()


# ----------------------------------------------------------------------
# Per-query accumulation
# ----------------------------------------------------------------------
class QueryResult:
    """The lineage accumulated for one query expression (slotted: one is
    built per SELECT block, subquery, and CTE processed)."""

    __slots__ = (
        "output_columns",
        "column_map",
        "referenced",
        "source_tables",
        "expressions",
    )

    def __init__(self):
        self.output_columns = []
        self.column_map = {}        # column -> set[ColumnName]
        self.referenced = set()     # set[ColumnName]
        self.source_tables = set()  # set[str]
        self.expressions = {}       # column -> defining SQL text

    def add_output(self, column, sources, expression=None):
        column = normalize_identifier(column)
        column_map = self.column_map
        existing = column_map.get(column)
        if existing is None:
            self.output_columns.append(column)
            existing = column_map[column] = set()
        existing.update(sources)
        if expression and column not in self.expressions:
            self.expressions[column] = expression
        add_table = self.source_tables.add
        for source in sources:
            add_table(source.table)

    def add_reference(self, sources):
        for source in sources:
            self.referenced.add(source)
            self.source_tables.add(source.table)

    def rename_columns(self, new_names):
        """Positionally rename output columns (CREATE VIEW (c1, c2, ...))."""
        if not new_names:
            return
        renamed_map = {}
        renamed_columns = []
        renamed_expressions = {}
        for index, column in enumerate(self.output_columns):
            new_name = (
                normalize_identifier(new_names[index])
                if index < len(new_names)
                else column
            )
            renamed_columns.append(new_name)
            renamed_map[new_name] = self.column_map.get(column, set())
            if column in self.expressions:
                renamed_expressions[new_name] = self.expressions[column]
        self.output_columns = renamed_columns
        self.column_map = renamed_map
        self.expressions = renamed_expressions


# ----------------------------------------------------------------------
# The extractor
# ----------------------------------------------------------------------
class LineageExtractor:
    """Extract column-level lineage from a single query AST."""

    def __init__(self, provider=None, strict=False, collect_trace=False):
        self.provider = provider if provider is not None else SchemaProvider()
        self.strict = strict
        self.collect_trace = collect_trace

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def extract(self, identifier, query, sql="", declared_columns=None):
        """Extract the lineage of ``query`` producing relation ``identifier``.

        Returns ``(TableLineage, ExtractionTrace)``.  ``declared_columns``
        is the optional explicit column list of a ``CREATE VIEW (c1, ...)``
        statement and renames the query's output columns positionally.
        The trace is only populated when the extractor was built with
        ``collect_trace=True``; otherwise a shared empty null trace is
        returned and no rule firings are recorded.
        """
        trace = ExtractionTrace() if self.collect_trace else _NULL_TRACE
        result = self._process_query(query, None, trace)
        result.rename_columns(declared_columns or [])
        # Bulk-fill the lineage object: everything in the QueryResult is
        # already normalised and de-duplicated (QueryResult.add_output /
        # add_reference maintain those invariants), so the per-item
        # ``add_*`` helpers — each a membership probe plus an observer
        # notification — are pure overhead here.  One _bump at the end
        # keeps subscribed-graph semantics.
        lineage = TableLineage(name=normalize_name(identifier), sql=sql)
        column_map = result.column_map
        expressions = result.expressions
        contributions = lineage.contributions
        lineage_expressions = lineage.expressions
        output_columns = lineage.output_columns
        for column in result.output_columns:
            if column in contributions:
                # duplicate declared names (CREATE VIEW v (a, a) AS ...)
                # collapse to their first occurrence, as add_output_column
                # always did; column_map already merged their sources
                continue
            sources = column_map.get(column)
            contributions[column] = set(sources) if sources else set()
            if column in expressions:
                lineage_expressions[column] = expressions[column]
            output_columns.append(column)
        lineage.referenced.update(result.referenced)
        lineage.source_tables.update(result.source_tables)
        lineage._bump()
        return lineage, trace

    def extract_statement(self, parsed_query):
        """Extract lineage for a :class:`~repro.core.preprocess.ParsedQuery`."""
        return self.extract(
            parsed_query.identifier,
            parsed_query.query,
            sql=parsed_query.sql,
            declared_columns=parsed_query.column_names,
        )

    # ------------------------------------------------------------------
    # Query expressions
    # ------------------------------------------------------------------
    def _process_query(self, query, parent_scope, trace):
        if isinstance(query, ast.Select):
            return self._process_select(query, parent_scope, trace)
        if isinstance(query, ast.SetOperation):
            return self._process_set_operation(query, parent_scope, trace)
        if query is None:
            return QueryResult()
        raise TypeError(f"unsupported query expression: {type(query).__name__}")

    # -- SELECT blocks ------------------------------------------------------
    def _process_select(self, select, parent_scope, trace):
        scope = Scope(parent_scope)
        result = QueryResult()

        # WITH rule: extract each CTE and store it in M_CTE.
        self._register_ctes(select.ctes, scope, trace)

        # FROM rules: bind every source, collecting join predicates into C_ref.
        for source in select.from_sources:
            self._bind_source(source, scope, result, trace)

        # Other-keywords rule: WHERE / GROUP BY / HAVING / windows / DISTINCT ON.
        if select.where is not None:
            self._collect_references(select.where, scope, result, trace, "WHERE")
        for expression in select.distinct_on:
            self._collect_references(expression, scope, result, trace, "DISTINCT ON")
        for _, window in select.windows:
            self._collect_window_references(window, scope, result, trace)

        # SELECT rule: resolve the contribution set of every projection.
        self._process_projections(select, scope, result, trace)

        # GROUP BY / HAVING / ORDER BY may reference projection aliases, so
        # they are resolved after the projections are known.
        for expression in select.group_by:
            self._collect_references(
                expression, scope, result, trace, "GROUP BY", result_aliases=result
            )
        if select.having is not None:
            self._collect_references(
                select.having, scope, result, trace, "HAVING", result_aliases=result
            )
        if select.qualify is not None:
            # QUALIFY filters on window results and, like ORDER BY, may
            # name a projection alias — other-keywords rule either way.
            self._collect_references(
                select.qualify, scope, result, trace, "QUALIFY", result_aliases=result
            )
        for item in select.order_by:
            self._collect_references(
                item.expression, scope, result, trace, "ORDER BY", result_aliases=result
            )
        for expression in (select.limit, select.offset):
            if expression is not None:
                self._collect_references(expression, scope, result, trace, "LIMIT")
        return result

    def _register_ctes(self, ctes, scope, trace):
        for cte in ctes:
            # Pre-register the CTE name so a recursive self-reference inside
            # its own body resolves to the (still empty) intermediate instead
            # of leaking a phantom base table into the lineage.
            placeholder = SourceBinding(
                name=normalize_identifier(cte.name),
                kind="cte",
                columns=[normalize_identifier(c) for c in cte.column_names] or None,
            )
            scope.add_cte(cte.name, placeholder)
            sub_result = self._process_query(cte.query, scope, trace)
            sub_result.rename_columns(cte.column_names)
            binding = SourceBinding(
                name=normalize_identifier(cte.name),
                kind="cte",
                columns=list(sub_result.output_columns),
                column_map={k: set(v) for k, v in sub_result.column_map.items()},
                referenced=set(sub_result.referenced),
                source_tables=set(sub_result.source_tables),
            )
            scope.add_cte(cte.name, binding)
            trace.add(RULE_WITH, "CTE", cte.name)

    def _process_projections(self, select, scope, result, trace):
        unnamed_counter = 0
        for projection in select.projections:
            expression = projection.expression
            if isinstance(expression, ast.Star):
                self._expand_star_projection(expression, scope, result, trace)
                continue
            name = projection.output_name
            if name is None:
                unnamed_counter += 1
                name = f"column_{len(result.output_columns) + 1}"
            if type(expression) is ast.ColumnRef:
                # fast path for the dominant projection shape — one column
                # reference, no subqueries/aliases to thread through
                qualifier = expression.table
                resolution = scope.resolve_column(
                    qualifier, expression.name, strict=self.strict
                )
                if resolution.unresolved and qualifier is None:
                    sources = set()
                else:
                    sources = resolution.sources
            else:
                sources = self._contributions_of(expression, scope, result, trace)
            result.add_output(name, sources, expression=_expression_sql(expression))
            if trace.active:
                trace.add(
                    RULE_SELECT, "Projection", f"{name} <- {_format_sources(sources)}"
                )

    def _expand_star_projection(self, star, scope, result, trace):
        expansions = scope.expand_star(star.table)
        for column, sources in expansions:
            result.add_output(column, sources, expression=str(star))
        if trace.active:
            label = f"{star.table}.*" if star.table else "*"
            trace.add(
                RULE_SELECT,
                "Projection",
                f"{label} expanded to {len(expansions)} columns",
            )

    # -- set operations ------------------------------------------------------
    def _process_set_operation(self, operation, parent_scope, trace):
        scope = Scope(parent_scope)
        self._register_ctes(operation.ctes, scope, trace)

        leaves = list(operation.leaves())
        leaf_results = [self._process_query(leaf, scope, trace) for leaf in leaves]
        result = QueryResult()

        # Output columns take their names from the leftmost leaf; every leaf
        # contributes positionally to the matching output column.
        first = leaf_results[0] if leaf_results else QueryResult()
        for position, column in enumerate(first.output_columns):
            combined = set()
            for leaf_result in leaf_results:
                if position < len(leaf_result.output_columns):
                    leaf_column = leaf_result.output_columns[position]
                    combined |= leaf_result.column_map.get(leaf_column, set())
            result.add_output(column, combined, expression=first.expressions.get(column))

        # Set-operation rule: every projection column of every leaf is
        # referenced by the row comparison, and the leaves' own references
        # propagate too.
        for leaf_result in leaf_results:
            for sources in leaf_result.column_map.values():
                result.add_reference(sources)
            result.add_reference(leaf_result.referenced)
            result.source_tables |= leaf_result.source_tables
        if trace.active:
            trace.add(
                RULE_SET_OPERATION,
                operation.operator,
                f"{len(leaves)} leaves, {len(result.output_columns)} output columns",
            )

        for item in operation.order_by:
            self._collect_references(
                item.expression, scope, result, trace, "ORDER BY", result_aliases=result
            )
        for expression in (operation.limit, operation.offset):
            if expression is not None:
                self._collect_references(expression, scope, result, trace, "LIMIT")
        return result

    # ------------------------------------------------------------------
    # FROM-clause binding
    # ------------------------------------------------------------------
    def _bind_source(self, source, scope, result, trace):
        if isinstance(source, ast.Join):
            self._bind_source(source.left, scope, result, trace)
            self._bind_source(source.right, scope, result, trace)
            if source.condition is not None:
                self._collect_references(
                    source.condition, scope, result, trace, f"{source.join_type} JOIN ON"
                )
            for column in source.using_columns:
                resolution = scope.resolve_column(None, column, strict=self.strict)
                result.add_reference(resolution.sources)
                trace.add(RULE_OTHER, "USING", column)
            return
        if isinstance(source, ast.TableRef):
            self._bind_table_ref(source, scope, result, trace)
            return
        if isinstance(source, ast.SubquerySource):
            self._bind_subquery_source(source, scope, result, trace)
            return
        if isinstance(source, ast.ValuesSource):
            columns = source.column_aliases or []
            binding = SourceBinding(
                name=normalize_identifier(source.alias or "values"),
                kind="values",
                columns=[normalize_identifier(c) for c in columns] if columns else [],
            )
            scope.add_binding(binding)
            trace.add(RULE_FROM_CTE, "VALUES", source.alias or "values")
            return
        if isinstance(source, ast.FunctionSource):
            self._bind_function_source(source, scope, result, trace)
            return
        raise TypeError(f"unsupported FROM source: {type(source).__name__}")

    def _bind_table_ref(self, table_ref, scope, result, trace):
        parts = table_ref.name.parts
        relation = normalize_name(parts[0] if len(parts) == 1 else ".".join(parts))
        visible_name = normalize_identifier(table_ref.alias) or relation.split(".")[-1]

        # FROM (CTE/Subquery) rule: the name may refer to a WITH intermediate.
        cte_binding = None
        if table_ref.name.schema is None:
            cte_binding = scope.find_cte(relation)
        if cte_binding is not None:
            binding = SourceBinding(
                name=visible_name,
                kind="cte",
                columns=list(cte_binding.columns)
                if cte_binding.columns is not None
                else None,
                column_map={k: set(v) for k, v in cte_binding.column_map.items()},
                referenced=set(cte_binding.referenced),
                source_tables=set(cte_binding.source_tables),
            )
            self._apply_column_aliases(binding, table_ref.column_aliases)
            scope.add_binding(binding)
            # The intermediate's own lineage flows into the outer query.
            result.add_reference(binding.referenced)
            result.source_tables |= binding.source_tables
            if trace.active:
                trace.add(RULE_FROM_CTE, "FROM", f"{relation} (CTE)")
            return

        # FROM (Table/View) rule: a real relation.
        columns = self.provider.get_columns(relation)
        binding = SourceBinding(
            name=visible_name,
            kind="relation",
            relation_name=relation,
            columns=list(columns) if columns is not None else None,
        )
        self._apply_column_aliases(binding, table_ref.column_aliases)
        scope.add_binding(binding)
        result.source_tables.add(relation)
        if trace.active:
            trace.add(
                RULE_FROM_TABLE,
                "FROM",
                f"{relation}" + (f" AS {visible_name}" if table_ref.alias else ""),
            )

    def _bind_subquery_source(self, source, scope, result, trace):
        sub_result = self._process_query(source.query, scope, trace)
        binding = SourceBinding(
            name=normalize_identifier(source.alias or "subquery"),
            kind="subquery",
            columns=list(sub_result.output_columns),
            column_map={k: set(v) for k, v in sub_result.column_map.items()},
            referenced=set(sub_result.referenced),
            source_tables=set(sub_result.source_tables),
        )
        self._apply_column_aliases(binding, source.column_aliases)
        scope.add_binding(binding)
        result.add_reference(binding.referenced)
        result.source_tables |= binding.source_tables
        trace.add(RULE_WITH, "Subquery", source.alias or "(derived table)")

    def _bind_function_source(self, source, scope, result, trace):
        columns = [normalize_identifier(c) for c in source.column_aliases]
        if not columns:
            columns = [normalize_identifier(source.effective_name or "value")]
        binding = SourceBinding(
            name=normalize_identifier(source.effective_name or "function"),
            kind="function",
            columns=columns,
        )
        scope.add_binding(binding)
        if source.function is not None:
            for argument in source.function.args:
                self._collect_references(argument, scope, result, trace, "FUNCTION")
        if trace.active:
            trace.add(RULE_FROM_CTE, "FROM", f"function {binding.name}")

    @staticmethod
    def _apply_column_aliases(binding, column_aliases):
        if not column_aliases:
            return
        aliases = [normalize_identifier(name) for name in column_aliases]
        if binding.columns is None:
            binding.columns = aliases
            return
        renamed_map = {}
        renamed_columns = []
        for index, original in enumerate(binding.columns):
            new_name = aliases[index] if index < len(aliases) else original
            renamed_columns.append(new_name)
            if binding.column_map:
                renamed_map[new_name] = set(binding.column_map.get(original, set()))
            elif binding.kind == "relation":
                renamed_map[new_name] = {
                    ColumnName.of(binding.relation_name, original)
                }
        binding.columns = renamed_columns
        if renamed_map:
            binding.column_map = renamed_map

    # ------------------------------------------------------------------
    # Expression walking
    # ------------------------------------------------------------------
    def _contributions_of(self, expression, scope, result, trace):
        """Source columns contributing to a projection expression (C_con)."""
        sources = set()
        self._walk_expression(
            expression,
            scope,
            result,
            trace,
            on_column=lambda resolved: sources.update(resolved),
            context="SELECT",
        )
        return sources

    def _collect_references(
        self, expression, scope, result, trace, clause, result_aliases=None
    ):
        """Add every column found in ``expression`` to C_ref (other-keywords rule)."""
        if expression is None:
            return
        found = set()
        self._walk_expression(
            expression,
            scope,
            result,
            trace,
            on_column=lambda resolved: found.update(resolved),
            context=clause,
            result_aliases=result_aliases,
        )
        if found:
            result.add_reference(found)
            if trace.active:
                trace.add(RULE_OTHER, clause, _format_sources(found))

    def _collect_window_references(self, window, scope, result, trace):
        for expression in window.partition_by:
            self._collect_references(expression, scope, result, trace, "WINDOW")
        for item in window.order_by:
            self._collect_references(item.expression, scope, result, trace, "WINDOW")

    def _walk_expression(
        self,
        expression,
        scope,
        result,
        trace,
        on_column,
        context,
        result_aliases=None,
    ):
        """Recursively visit ``expression`` resolving every column reference.

        ``on_column`` receives the set of real source columns for each
        reference found.  Subqueries nested in the expression are processed
        with their own scopes (parented to ``scope`` so correlated references
        resolve); their output columns feed ``on_column`` and their internal
        references are added to the enclosing query's ``C_ref``.
        """
        if expression is None or not isinstance(expression, ast.Node):
            return

        if isinstance(expression, ast.ColumnRef):
            qualifier = expression.table
            if qualifier is None and result_aliases is not None:
                # GROUP BY / ORDER BY / HAVING may name a projection alias;
                # prefer it (SQL resolves ORDER BY against the output list).
                alias = normalize_identifier(expression.name)
                if alias in result_aliases.column_map:
                    on_column(result_aliases.column_map[alias])
                    return
            resolution = scope.resolve_column(
                qualifier, expression.name, strict=self.strict
            )
            if resolution.unresolved and qualifier is None:
                # An unqualified column we cannot place anywhere: ignore it
                # rather than invent a relation (matches the paper's
                # best-effort behaviour without metadata).
                return
            on_column(resolution.sources)
            return

        if isinstance(expression, ast.Star):
            try:
                expansions = scope.expand_star(expression.table)
            except UnknownRelationError:
                raise
            for _, sources in expansions:
                on_column(sources)
            return

        if isinstance(expression, (ast.SubqueryExpr, ast.ExistsExpr)):
            sub_result = self._process_query(expression.query, scope, trace)
            if isinstance(expression, ast.SubqueryExpr):
                for sources in sub_result.column_map.values():
                    on_column(sources)
            else:
                # EXISTS only filters rows; its columns are references.
                for sources in sub_result.column_map.values():
                    result.add_reference(sources)
            result.add_reference(sub_result.referenced)
            result.source_tables |= sub_result.source_tables
            return

        if isinstance(expression, ast.InExpr):
            self._walk_expression(
                expression.operand, scope, result, trace, on_column, context, result_aliases
            )
            for value in expression.values:
                self._walk_expression(
                    value, scope, result, trace, on_column, context, result_aliases
                )
            if expression.query is not None:
                sub_result = self._process_query(expression.query, scope, trace)
                for sources in sub_result.column_map.values():
                    result.add_reference(sources)
                result.add_reference(sub_result.referenced)
                result.source_tables |= sub_result.source_tables
            return

        if isinstance(expression, ast.FunctionCall):
            for argument in expression.args:
                self._walk_expression(
                    argument, scope, result, trace, on_column, context, result_aliases
                )
            if expression.filter_clause is not None:
                self._collect_references(
                    expression.filter_clause, scope, result, trace, "FILTER"
                )
            if expression.over is not None:
                self._collect_window_references(expression.over, scope, result, trace)
            return

        # Generic recursion over child nodes for every other expression type
        # (binary/unary operators, CASE, CAST, EXTRACT, BETWEEN, LIKE, ...).
        for child in expression.children():
            self._walk_expression(
                child, scope, result, trace, on_column, context, result_aliases
            )


def _format_sources(sources):
    return ", ".join(sorted(str(source) for source in sources)) or "(none)"


def _expression_sql(expression):
    """Best-effort SQL text of a projection expression (for documentation)."""
    if type(expression) is ast.ColumnRef:
        # the overwhelmingly common projection shape; matches the printer's
        # output exactly without spinning up a renderer
        qualifier = expression.qualifier
        if not qualifier:
            return quote_identifier(expression.name)
        if len(qualifier) == 1:
            return quote_identifier(qualifier[0]) + "." + quote_identifier(
                expression.name
            )
        return ".".join(
            quote_identifier(part) for part in (*qualifier, expression.name)
        )
    try:
        return to_sql(expression)
    except TypeError:
        return ""
