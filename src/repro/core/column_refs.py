"""Canonical column identifiers used throughout the lineage graph.

A :class:`ColumnName` names one column of one relation (base table, view, or
query output) after identifier normalisation.  It is hashable and ordered so
it can live in sets, serve as a dictionary key, and produce stable sorted
output in JSON documents and test assertions.
"""

from .errors import LineageRecordError
from ..sqlparser.dialect import normalize_identifier, normalize_name


class ColumnName:
    """A fully-qualified column: ``table.column`` after normalisation.

    Implemented as a slotted value class (historically a frozen dataclass):
    column names live in sets and dict keys throughout the lineage graph,
    so the hash is computed once at construction instead of on every
    membership probe, and attribute access is a fixed slot load.  Treat
    instances as immutable — mutating ``table``/``column`` after
    construction would desynchronise the cached hash.
    """

    __slots__ = ("table", "column", "_hash")

    def __init__(self, table, column):
        self.table = table
        self.column = column
        self._hash = hash((table, column))

    # -- value semantics (what @dataclass(frozen=True, order=True) made) --
    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if type(other) is ColumnName:
            return self.table == other.table and self.column == other.column
        return NotImplemented

    def __ne__(self, other):
        if type(other) is ColumnName:
            return self.table != other.table or self.column != other.column
        return NotImplemented

    def __lt__(self, other):
        if type(other) is ColumnName:
            return (self.table, self.column) < (other.table, other.column)
        return NotImplemented

    def __le__(self, other):
        if type(other) is ColumnName:
            return (self.table, self.column) <= (other.table, other.column)
        return NotImplemented

    def __gt__(self, other):
        if type(other) is ColumnName:
            return (self.table, self.column) > (other.table, other.column)
        return NotImplemented

    def __ge__(self, other):
        if type(other) is ColumnName:
            return (self.table, self.column) >= (other.table, other.column)
        return NotImplemented

    def __repr__(self):
        return f"ColumnName(table={self.table!r}, column={self.column!r})"

    def __reduce__(self):
        return (ColumnName, (self.table, self.column))

    @classmethod
    def of(cls, table, column):
        """Build a normalised :class:`ColumnName` from raw identifiers."""
        return cls(normalize_name(table), normalize_identifier(column))

    @classmethod
    def parse(cls, dotted):
        """Parse ``"table.column"`` (or ``"schema.table.column"``) text."""
        parts = str(dotted).split(".")
        if len(parts) < 2:
            raise ValueError(f"not a qualified column name: {dotted!r}")
        return cls.of(".".join(parts[:-1]), parts[-1])

    def dotted(self):
        """Return the canonical ``table.column`` string."""
        return f"{self.table}.{self.column}"

    def __str__(self):
        return self.dotted()

    # ------------------------------------------------------------------
    # Loss-free record round-trip (persistent lineage store)
    # ------------------------------------------------------------------
    def to_record(self):
        """A plain-data form that survives serialisation exactly.

        Unlike :meth:`dotted`, the record keeps the table and column parts
        separate, so identifiers containing dots round-trip without being
        re-split on parse.
        """
        return [self.table, self.column]

    @classmethod
    def from_record(cls, record):
        """Rebuild from :meth:`to_record` output (no re-normalisation).

        Raises :class:`~repro.core.errors.LineageRecordError` for anything
        that is not a two-element ``[table, column]`` pair of strings.
        """
        if (
            not isinstance(record, (list, tuple))
            or len(record) != 2
            or not all(isinstance(part, str) for part in record)
        ):
            raise LineageRecordError(f"not a column record: {record!r}")
        return cls(table=record[0], column=record[1])


def normalize_column(name):
    """Normalise a bare column identifier."""
    return normalize_identifier(name)


def normalize_table(name):
    """Normalise a possibly schema-qualified table name."""
    return normalize_name(name)
