"""Canonical column identifiers used throughout the lineage graph.

A :class:`ColumnName` names one column of one relation (base table, view, or
query output) after identifier normalisation.  It is hashable and ordered so
it can live in sets, serve as a dictionary key, and produce stable sorted
output in JSON documents and test assertions.
"""

from dataclasses import dataclass

from .errors import LineageRecordError
from ..sqlparser.dialect import normalize_identifier, normalize_name


@dataclass(frozen=True, order=True)
class ColumnName:
    """A fully-qualified column: ``table.column`` after normalisation."""

    table: str
    column: str

    @classmethod
    def of(cls, table, column):
        """Build a normalised :class:`ColumnName` from raw identifiers."""
        return cls(normalize_name(table), normalize_identifier(column))

    @classmethod
    def parse(cls, dotted):
        """Parse ``"table.column"`` (or ``"schema.table.column"``) text."""
        parts = str(dotted).split(".")
        if len(parts) < 2:
            raise ValueError(f"not a qualified column name: {dotted!r}")
        return cls.of(".".join(parts[:-1]), parts[-1])

    def dotted(self):
        """Return the canonical ``table.column`` string."""
        return f"{self.table}.{self.column}"

    def __str__(self):
        return self.dotted()

    # ------------------------------------------------------------------
    # Loss-free record round-trip (persistent lineage store)
    # ------------------------------------------------------------------
    def to_record(self):
        """A plain-data form that survives serialisation exactly.

        Unlike :meth:`dotted`, the record keeps the table and column parts
        separate, so identifiers containing dots round-trip without being
        re-split on parse.
        """
        return [self.table, self.column]

    @classmethod
    def from_record(cls, record):
        """Rebuild from :meth:`to_record` output (no re-normalisation).

        Raises :class:`~repro.core.errors.LineageRecordError` for anything
        that is not a two-element ``[table, column]`` pair of strings.
        """
        if (
            not isinstance(record, (list, tuple))
            or len(record) != 2
            or not all(isinstance(part, str) for part in record)
        ):
            raise LineageRecordError(f"not a column record: {record!r}")
        return cls(table=record[0], column=record[1])


def normalize_column(name):
    """Normalise a bare column identifier."""
    return normalize_identifier(name)


def normalize_table(name):
    """Normalise a possibly schema-qualified table name."""
    return normalize_name(name)
