"""Name scopes, star expansion, and ambiguity resolution.

The lineage extractor resolves every column reference against the set of
table sources visible at that point of the query.  A :class:`Scope` holds
the :class:`SourceBinding` objects for one SELECT block (plus a link to the
enclosing scope, so correlated subqueries can see outer sources), and
implements the paper's ambiguity-handling policies:

* a qualified reference ``t.c`` binds to the source named/aliased ``t``;
* an unqualified reference binds to the unique source that is known to have
  the column; when no source's columns are known, it binds to the unique
  source of unknown schema; when several candidates remain, the extractor
  either attributes the column to all of them (default, conservative) or
  raises :class:`~repro.core.errors.AmbiguousColumnError` (strict mode);
* ``*`` and ``t.*`` expand to the positional column lists of the visible
  sources, which requires the source schemas to be known — if a source is a
  not-yet-processed Query Dictionary entry this surfaces as
  :class:`~repro.core.errors.UnknownRelationError` and triggers the
  auto-inference stack.
"""

from dataclasses import dataclass, field

from .column_refs import ColumnName
from .errors import AmbiguousColumnError
from ..sqlparser.dialect import normalize_identifier, normalize_name


@dataclass
class SourceBinding:
    """One table source visible inside a SELECT block.

    Parameters
    ----------
    name:
        The name the source is visible as (its alias, or its relation name).
    kind:
        ``"relation"`` for base tables and views, ``"cte"``, ``"subquery"``,
        ``"values"`` or ``"function"`` for derived sources.
    relation_name:
        For ``relation`` bindings, the normalised real relation name (edges
        point at this name).
    columns:
        Ordered output column names, or ``None`` when the schema is unknown
        (an external base table with no catalog entry).
    column_map:
        For derived sources, the mapping from an output column to the real
        source columns it is composed of.  For plain relations this is
        the identity mapping built lazily by :meth:`expand`.
    referenced:
        Source columns referenced by the derived source's own body (join
        predicates inside a CTE, for example); these propagate into the
        enclosing query's ``C_ref``.
    source_tables:
        Real relations the derived source reads; propagate into ``T``.
    """

    name: str
    kind: str = "relation"
    relation_name: str = None
    columns: list = None
    column_map: dict = field(default_factory=dict)
    referenced: set = field(default_factory=set)
    source_tables: set = field(default_factory=set)

    # ------------------------------------------------------------------
    def has_known_columns(self):
        return self.columns is not None

    def has_column(self, column):
        """True / False / None (unknown schema)."""
        if self.columns is None:
            return None
        return normalize_identifier(column) in {
            normalize_identifier(c) for c in self.columns
        }

    def expand(self, column):
        """Return the set of real :class:`ColumnName` behind ``column``."""
        column = normalize_identifier(column)
        if column in self.column_map:
            return set(self.column_map[column])
        if self.kind == "relation":
            return {ColumnName.of(self.relation_name, column)}
        return set()

    def all_tables(self):
        """Real relations behind this binding (for table lineage)."""
        if self.kind == "relation":
            return {normalize_name(self.relation_name)}
        return set(self.source_tables)


@dataclass
class Resolution:
    """The outcome of resolving one column reference."""

    sources: set = field(default_factory=set)      # set[ColumnName]
    bindings: list = field(default_factory=list)   # the SourceBindings matched
    ambiguous: bool = False
    unresolved: bool = False


class Scope:
    """The sources visible inside one SELECT block."""

    def __init__(self, parent=None):
        self.parent = parent
        self.bindings = []
        self.ctes = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_binding(self, binding):
        self.bindings.append(binding)
        return binding

    def add_cte(self, name, binding):
        """Register a WITH/common-table-expression result (``M_CTE``)."""
        self.ctes[normalize_identifier(name)] = binding
        return binding

    def find_cte(self, name):
        """Look up a CTE by name in this scope or any enclosing scope."""
        wanted = normalize_identifier(name)
        scope = self
        while scope is not None:
            if wanted in scope.ctes:
                return scope.ctes[wanted]
            scope = scope.parent
        return None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_binding(self, name):
        """Find the binding visible as ``name`` in this or an outer scope."""
        wanted = normalize_identifier(name)
        scope = self
        while scope is not None:
            for binding in scope.bindings:
                if normalize_identifier(binding.name) == wanted:
                    return binding
                if (
                    binding.kind == "relation"
                    and binding.relation_name is not None
                    and normalize_name(binding.relation_name).split(".")[-1] == wanted
                ):
                    return binding
            scope = scope.parent
        return None

    def local_bindings(self):
        return list(self.bindings)

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------
    def resolve_column(self, qualifier, column, strict=False):
        """Resolve a (possibly qualified) column reference.

        Returns a :class:`Resolution`.  ``qualifier`` is the table/alias
        prefix (a string or ``None``); ``column`` is the column name.
        """
        column = normalize_identifier(column)
        if qualifier:
            return self._resolve_qualified(qualifier, column)
        return self._resolve_unqualified(column, strict=strict)

    def _resolve_qualified(self, qualifier, column):
        binding = self.find_binding(qualifier)
        resolution = Resolution()
        if binding is None:
            # A qualifier we know nothing about: treat it as an external
            # relation referenced directly by name.
            resolution.sources = {ColumnName.of(qualifier, column)}
            resolution.unresolved = True
            return resolution
        resolution.bindings = [binding]
        expanded = binding.expand(column)
        if not expanded and binding.kind != "relation":
            # derived source without that column (e.g. a computed column
            # built only from literals); keep the reference at the derived
            # source level so the edge is not lost entirely.
            expanded = set()
        resolution.sources = expanded
        return resolution

    def _resolve_unqualified(self, column, strict=False):
        resolution = Resolution()
        candidates = []
        unknown_schema = []
        scope = self
        while scope is not None:
            for binding in scope.bindings:
                has_column = binding.has_column(column)
                if has_column is True:
                    candidates.append(binding)
                elif has_column is None:
                    unknown_schema.append(binding)
            if candidates or unknown_schema:
                break
            scope = scope.parent

        if len(candidates) == 1:
            chosen = candidates
        elif len(candidates) > 1:
            if strict:
                raise AmbiguousColumnError(column, [b.name for b in candidates])
            resolution.ambiguous = True
            chosen = candidates
        elif len(unknown_schema) == 1:
            chosen = unknown_schema
        elif len(unknown_schema) > 1:
            if strict:
                raise AmbiguousColumnError(column, [b.name for b in unknown_schema])
            resolution.ambiguous = True
            chosen = unknown_schema
        else:
            resolution.unresolved = True
            chosen = []

        resolution.bindings = chosen
        for binding in chosen:
            resolution.sources |= binding.expand(column)
        return resolution

    # ------------------------------------------------------------------
    # Star expansion
    # ------------------------------------------------------------------
    def expand_star(self, qualifier=None):
        """Expand ``*`` or ``qualifier.*`` into ``[(column, set[ColumnName])]``.

        Sources defined by a not-yet-processed Query Dictionary entry never
        reach this point with an unknown column list: the schema provider
        raises :class:`UnknownRelationError` when the source is bound in the
        FROM clause, which is what drives the auto-inference stack.  A source
        that is *still* unknown here is an external relation with no catalog
        metadata; its expansion degrades to a single wildcard pseudo-column
        (``relation.*``), which is exactly the degraded output the paper
        reports for prior tools (Figure 2) and what the stack ablation shows.
        """
        if qualifier:
            binding = self.find_binding(qualifier)
            if binding is None:
                name = normalize_name(qualifier)
                return [("*", {ColumnName.of(name, "*")})]
            bindings = [binding]
        else:
            bindings = self.local_bindings()
        expanded = []
        for binding in bindings:
            if binding is None:
                continue
            if not binding.has_known_columns():
                name = normalize_name(binding.relation_name or binding.name)
                expanded.append(("*", {ColumnName.of(name, "*")}))
                continue
            for column in binding.columns:
                expanded.append((normalize_identifier(column), binding.expand(column)))
        return expanded

    def star_bindings(self, qualifier=None):
        """The bindings a star expansion would read (known or not)."""
        if qualifier:
            binding = self.find_binding(qualifier)
            return [binding] if binding is not None else []
        return self.local_bindings()
