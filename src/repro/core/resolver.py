"""Name scopes, star expansion, and ambiguity resolution.

The lineage extractor resolves every column reference against the set of
table sources visible at that point of the query.  A :class:`Scope` holds
the :class:`SourceBinding` objects for one SELECT block (plus a link to the
enclosing scope, so correlated subqueries can see outer sources), and
implements the paper's ambiguity-handling policies:

* a qualified reference ``t.c`` binds to the source named/aliased ``t``;
* an unqualified reference binds to the unique source that is known to have
  the column; when no source's columns are known, it binds to the unique
  source of unknown schema; when several candidates remain, the extractor
  either attributes the column to all of them (default, conservative) or
  raises :class:`~repro.core.errors.AmbiguousColumnError` (strict mode);
* ``*`` and ``t.*`` expand to the positional column lists of the visible
  sources, which requires the source schemas to be known — if a source is a
  not-yet-processed Query Dictionary entry this surfaces as
  :class:`~repro.core.errors.UnknownRelationError` and triggers the
  auto-inference stack.
"""

from .column_refs import ColumnName
from .errors import AmbiguousColumnError
from ..sqlparser.dialect import normalize_identifier, normalize_name


class SourceBinding:
    """One table source visible inside a SELECT block.

    A slotted value class (bindings are built per FROM item per statement,
    so construction weight matters).

    Parameters
    ----------
    name:
        The name the source is visible as (its alias, or its relation
        name), normalised by the extractor at construction.
    kind:
        ``"relation"`` for base tables and views, ``"cte"``, ``"subquery"``,
        ``"values"`` or ``"function"`` for derived sources.
    relation_name:
        For ``relation`` bindings, the normalised real relation name (edges
        point at this name).
    columns:
        Ordered output column names (normalised), or ``None`` when the
        schema is unknown (an external base table with no catalog entry).
    column_map:
        For derived sources, the mapping from an output column to the real
        source columns it is composed of.  For plain relations this is
        the identity mapping built lazily by :meth:`expand`.
    referenced:
        Source columns referenced by the derived source's own body (join
        predicates inside a CTE, for example); these propagate into the
        enclosing query's ``C_ref``.
    source_tables:
        Real relations the derived source reads; propagate into ``T``.
    """

    __slots__ = (
        "name",
        "kind",
        "relation_name",
        "columns",
        "column_map",
        "referenced",
        "source_tables",
        "_column_set",
        "_expand_cache",
    )

    def __init__(
        self,
        name,
        kind="relation",
        relation_name=None,
        columns=None,
        column_map=None,
        referenced=None,
        source_tables=None,
    ):
        self.name = name
        self.kind = kind
        self.relation_name = relation_name
        self.columns = columns
        self.column_map = {} if column_map is None else column_map
        self.referenced = set() if referenced is None else referenced
        self.source_tables = set() if source_tables is None else source_tables
        self._column_set = None
        self._expand_cache = {}

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"SourceBinding(name={self.name!r}, kind={self.kind!r}, "
            f"relation_name={self.relation_name!r}, columns={self.columns!r})"
        )

    # ------------------------------------------------------------------
    def has_known_columns(self):
        return self.columns is not None

    def has_column(self, column):
        """True / False / None (unknown schema).

        The normalised column set is built once per binding on first use —
        unqualified resolution probes every visible binding per reference,
        which on wide schemas used to rebuild the same set per probe.
        (Bindings are fully configured before resolution starts; a caller
        replacing ``columns`` afterwards would have to drop
        ``_column_set`` too, which nothing does.)
        """
        if self.columns is None:
            return None
        members = self._column_set
        if members is None:
            members = self._column_set = {
                normalize_identifier(c) for c in self.columns
            }
        return normalize_identifier(column) in members

    def expand(self, column):
        """Return the set of real :class:`ColumnName` behind ``column``.

        ``column`` must already be normalised — every caller (the resolve
        paths normalise on entry; star expansion reads ``binding.columns``,
        which are normalised at construction) satisfies this, so the former
        re-normalisation here was redundant on the hottest resolve path.
        ``relation_name`` is likewise normalised at construction, so the
        :class:`ColumnName` is built directly.
        """
        if column in self.column_map:
            return set(self.column_map[column])
        if self.kind == "relation":
            # same column expanded repeatedly (projection + WHERE + GROUP
            # BY...): memoize the ColumnName, return a fresh 1-element set
            cache = self._expand_cache
            name = cache.get(column)
            if name is None:
                name = cache[column] = ColumnName(self.relation_name, column)
            return {name}
        return set()

    def all_tables(self):
        """Real relations behind this binding (for table lineage)."""
        if self.kind == "relation":
            return {normalize_name(self.relation_name)}
        return set(self.source_tables)


class Resolution:
    """The outcome of resolving one column reference (slotted: one is
    built per column reference resolved)."""

    __slots__ = ("sources", "bindings", "ambiguous", "unresolved")

    def __init__(self):
        self.sources = set()       # set[ColumnName]
        self.bindings = []         # the SourceBindings matched
        self.ambiguous = False
        self.unresolved = False


class Scope:
    """The sources visible inside one SELECT block."""

    def __init__(self, parent=None):
        self.parent = parent
        self.bindings = []
        self.ctes = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add_binding(self, binding):
        self.bindings.append(binding)
        return binding

    def add_cte(self, name, binding):
        """Register a WITH/common-table-expression result (``M_CTE``)."""
        self.ctes[normalize_identifier(name)] = binding
        return binding

    def find_cte(self, name):
        """Look up a CTE by name in this scope or any enclosing scope."""
        wanted = normalize_identifier(name)
        scope = self
        while scope is not None:
            if wanted in scope.ctes:
                return scope.ctes[wanted]
            scope = scope.parent
        return None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def find_binding(self, name):
        """Find the binding visible as ``name`` in this or an outer scope.

        Binding names and relation names are normalised when the extractor
        constructs them, so only the lookup name is folded here.
        """
        wanted = normalize_identifier(name)
        scope = self
        while scope is not None:
            for binding in scope.bindings:
                if binding.name == wanted:
                    return binding
                if (
                    binding.kind == "relation"
                    and binding.relation_name is not None
                    and binding.relation_name.rsplit(".", 1)[-1] == wanted
                ):
                    return binding
            scope = scope.parent
        return None

    def local_bindings(self):
        return list(self.bindings)

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------
    def resolve_column(self, qualifier, column, strict=False):
        """Resolve a (possibly qualified) column reference.

        Returns a :class:`Resolution`.  ``qualifier`` is the table/alias
        prefix (a string or ``None``); ``column`` is the column name.
        """
        column = normalize_identifier(column)
        if qualifier:
            return self._resolve_qualified(qualifier, column)
        return self._resolve_unqualified(column, strict=strict)

    def _resolve_qualified(self, qualifier, column):
        binding = self.find_binding(qualifier)
        resolution = Resolution()
        if binding is None:
            # A qualifier we know nothing about: treat it as an external
            # relation referenced directly by name.
            resolution.sources = {ColumnName.of(qualifier, column)}
            resolution.unresolved = True
            return resolution
        resolution.bindings = [binding]
        expanded = binding.expand(column)
        if not expanded and binding.kind != "relation":
            # derived source without that column (e.g. a computed column
            # built only from literals); keep the reference at the derived
            # source level so the edge is not lost entirely.
            expanded = set()
        resolution.sources = expanded
        return resolution

    def _resolve_unqualified(self, column, strict=False):
        resolution = Resolution()
        candidates = []
        unknown_schema = []
        scope = self
        while scope is not None:
            for binding in scope.bindings:
                has_column = binding.has_column(column)
                if has_column is True:
                    candidates.append(binding)
                elif has_column is None:
                    unknown_schema.append(binding)
            if candidates or unknown_schema:
                break
            scope = scope.parent

        if len(candidates) == 1:
            chosen = candidates
        elif len(candidates) > 1:
            if strict:
                raise AmbiguousColumnError(column, [b.name for b in candidates])
            resolution.ambiguous = True
            chosen = candidates
        elif len(unknown_schema) == 1:
            chosen = unknown_schema
        elif len(unknown_schema) > 1:
            if strict:
                raise AmbiguousColumnError(column, [b.name for b in unknown_schema])
            resolution.ambiguous = True
            chosen = unknown_schema
        else:
            resolution.unresolved = True
            chosen = []

        resolution.bindings = chosen
        for binding in chosen:
            resolution.sources |= binding.expand(column)
        return resolution

    # ------------------------------------------------------------------
    # Star expansion
    # ------------------------------------------------------------------
    def expand_star(self, qualifier=None):
        """Expand ``*`` or ``qualifier.*`` into ``[(column, set[ColumnName])]``.

        Sources defined by a not-yet-processed Query Dictionary entry never
        reach this point with an unknown column list: the schema provider
        raises :class:`UnknownRelationError` when the source is bound in the
        FROM clause, which is what drives the auto-inference stack.  A source
        that is *still* unknown here is an external relation with no catalog
        metadata; its expansion degrades to a single wildcard pseudo-column
        (``relation.*``), which is exactly the degraded output the paper
        reports for prior tools (Figure 2) and what the stack ablation shows.
        """
        if qualifier:
            binding = self.find_binding(qualifier)
            if binding is None:
                name = normalize_name(qualifier)
                return [("*", {ColumnName.of(name, "*")})]
            bindings = [binding]
        else:
            bindings = self.local_bindings()
        expanded = []
        for binding in bindings:
            if binding is None:
                continue
            if not binding.has_known_columns():
                name = normalize_name(binding.relation_name or binding.name)
                expanded.append(("*", {ColumnName.of(name, "*")}))
                continue
            for column in binding.columns:
                expanded.append((normalize_identifier(column), binding.expand(column)))
        return expanded

    def star_bindings(self, qualifier=None):
        """The bindings a star expansion would read (known or not)."""
        if qualifier:
            binding = self.find_binding(qualifier)
            return [binding] if binding is not None else []
        return self.local_bindings()
