"""The user-facing orchestration API.

``lineagex(sql)`` mirrors the paper's one-call workflow (Figure 5, Step 1):
feed it SQL text, a list of statements, a ``{name: sql}`` mapping, or a path
to ``.sql`` files, and get back a :class:`LineageXResult` holding the lineage
graph, which can be saved as a JSON document and an interactive HTML page.

Pipeline: :mod:`preprocess <repro.core.preprocess>` builds the Query
Dictionary, ``CREATE TABLE`` DDL seeds the schema catalog, the
:mod:`auto-inference scheduler <repro.core.scheduler>` extracts every entry
(deferring across dependencies as needed), and the relations that are only
ever read — the base tables — are materialised as graph nodes whose column
sets are taken from the catalog or accumulated from usage.
"""

import os
from dataclasses import dataclass, field

from .lineage import LineageGraph
from .preprocess import preprocess
from .scheduler import AutoInferenceScheduler
from ..catalog.catalog import Catalog
from ..catalog.introspect import catalog_from_statements


@dataclass
class LineageXResult:
    """Everything produced by one LineageX run."""

    graph: LineageGraph
    query_dictionary: object
    catalog: Catalog
    report: object
    warnings: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def stats(self):
        """Graph-level summary statistics."""
        stats = self.graph.stats()
        stats["num_queries"] = len(self.query_dictionary)
        stats["num_deferrals"] = self.report.deferral_count
        stats["num_unresolved"] = len(self.report.unresolved)
        return stats

    def to_dict(self):
        """The JSON document shape (relations, table edges, column edges)."""
        payload = self.graph.to_dict()
        payload["stats"] = self.stats()
        payload["warnings"] = list(self.warnings)
        return payload

    def to_json(self, path=None, indent=2):
        """Serialise to JSON text; write it to ``path`` when given."""
        from ..output.json_output import graph_to_json

        text = graph_to_json(self.graph, stats=self.stats(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_html(self, path=None, title="LineageX lineage graph"):
        """Render the interactive HTML page; write it to ``path`` when given."""
        from ..output.html_output import graph_to_html

        text = graph_to_html(self.graph, title=title)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_dot(self):
        """Render a Graphviz DOT document of the column lineage."""
        from ..output.dot_output import graph_to_dot

        return graph_to_dot(self.graph)

    def to_text(self):
        """Render a plain-text summary (one block per relation)."""
        from ..output.text_output import graph_to_text

        return graph_to_text(self.graph)

    def save(self, output_dir, basename="lineagex"):
        """Write ``<basename>.json`` and ``<basename>.html`` into ``output_dir``."""
        os.makedirs(output_dir, exist_ok=True)
        json_path = os.path.join(output_dir, f"{basename}.json")
        html_path = os.path.join(output_dir, f"{basename}.html")
        self.to_json(json_path)
        self.to_html(html_path)
        return json_path, html_path

    def impact_analysis(self, column, direction="downstream"):
        """Convenience hook into :func:`repro.analysis.impact.impact_analysis`."""
        from ..analysis.impact import impact_analysis

        return impact_analysis(self.graph, column, direction=direction)


class LineageXRunner:
    """Configurable end-to-end lineage extraction."""

    def __init__(
        self,
        catalog=None,
        strict=False,
        use_stack=True,
        collect_traces=False,
        id_generator=None,
    ):
        self.catalog = catalog
        self.strict = strict
        self.use_stack = use_stack
        self.collect_traces = collect_traces
        self.id_generator = id_generator

    # ------------------------------------------------------------------
    def run(self, source):
        """Run the full pipeline over ``source`` and return a result."""
        query_dictionary = preprocess(source, id_generator=self.id_generator)
        catalog = self._build_catalog(query_dictionary)
        scheduler = AutoInferenceScheduler(
            query_dictionary,
            catalog=catalog,
            strict=self.strict,
            use_stack=self.use_stack,
            collect_traces=self.collect_traces,
        )
        graph, report = scheduler.run()
        self._attach_base_tables(graph, catalog)
        return LineageXResult(
            graph=graph,
            query_dictionary=query_dictionary,
            catalog=catalog,
            report=report,
            warnings=list(query_dictionary.warnings),
        )

    # ------------------------------------------------------------------
    def _build_catalog(self, query_dictionary):
        """Merge the user-provided catalog with CREATE TABLE DDL from the input."""
        ddl_catalog = catalog_from_statements(query_dictionary.ddl_statements)
        if self.catalog is None:
            return ddl_catalog
        merged = self.catalog.copy()
        for table in ddl_catalog.tables.values():
            merged.add_table(table, replace=True)
        return merged

    @staticmethod
    def _attach_base_tables(graph, catalog):
        """Create base-table nodes for every relation that is only read.

        Column sets come from the catalog when available and are otherwise
        accumulated from usage (every contribution or reference that points
        at the relation), which is how Example 1's ``web`` node obtains its
        ``cid``/``date``/``page``/``reg`` columns without any metadata.
        """
        used_columns = []
        for lineage in list(graph):
            for sources in lineage.contributions.values():
                used_columns.extend(sources)
            used_columns.extend(lineage.referenced)
        view_names = {lineage.name for lineage in graph.views}
        for column_name in used_columns:
            if column_name.table in view_names:
                continue
            if column_name.column == "*":
                graph.ensure_base_table(column_name.table)
                continue
            graph.register_usage(column_name)
        # add full catalog schemas for base tables that were touched
        for entry in graph.base_tables:
            table = catalog.get(entry.name) if catalog is not None else None
            if table is not None:
                for column in table.column_names():
                    entry.add_output_column(column)


def lineagex(
    source,
    catalog=None,
    strict=False,
    use_stack=True,
    collect_traces=False,
    output_dir=None,
):
    """Extract column-level lineage from SQL (the paper's one-call API).

    Parameters
    ----------
    source:
        SQL text, a list of SQL texts, a ``{name: sql}`` mapping, or a path
        to a ``.sql`` file or directory.
    catalog:
        Optional :class:`repro.catalog.Catalog` with base-table schemas
        (plays the role of a database connection's metadata).
    strict:
        Raise :class:`~repro.core.errors.AmbiguousColumnError` on ambiguous
        unqualified columns instead of attributing them conservatively.
    use_stack:
        Enable the Table/View Auto-Inference stack (disable only for the
        ablation study).
    collect_traces:
        Record per-query extraction traces (rule firings).
    output_dir:
        When given, write ``lineagex.json`` and ``lineagex.html`` there.

    Returns
    -------
    LineageXResult
    """
    runner = LineageXRunner(
        catalog=catalog,
        strict=strict,
        use_stack=use_stack,
        collect_traces=collect_traces,
    )
    result = runner.run(source)
    if output_dir is not None:
        result.save(output_dir)
    return result
