"""The user-facing orchestration API.

``lineagex(sql)`` mirrors the paper's one-call workflow (Figure 5, Step 1):
feed it SQL text, a list of statements, a ``{name: sql}`` mapping, or a path
to ``.sql`` files, and get back a :class:`LineageXResult` holding the lineage
graph, which can be saved as a JSON document and an interactive HTML page.

Pipeline: :mod:`preprocess <repro.core.preprocess>` builds the Query
Dictionary, ``CREATE TABLE`` DDL seeds the schema catalog, the
:mod:`auto-inference scheduler <repro.core.scheduler>` plans a dependency
DAG and extracts every entry in topological waves (falling back to reactive
deferral for anything the plan cannot see), and the relations that are only
ever read — the base tables — are materialised as graph nodes whose column
sets are taken from the catalog or accumulated from usage.

On top of the full pipeline sits the *incremental* layer: every run records
a content hash per Query Dictionary entry, and
:meth:`LineageXRunner.run_incremental` / :meth:`LineageXResult.update`
re-extract only the entries whose hash changed plus their transitive DAG
dependents, splicing the cached :class:`TableLineage` for everything else.
"""

import os
from dataclasses import dataclass, field

from .dag import DependencyDAG
from .errors import LineageRecordError
from .extractor import EXTRACTOR_VERSION
from .lineage import LineageGraph
from .preprocess import QueryDictionary, preprocess
from .scheduler import AutoInferenceScheduler
from ..catalog.catalog import Catalog
from ..catalog.introspect import catalog_from_statements
from ..sqlparser.dialect import normalize_name


@dataclass
class LineageXResult:
    """Everything produced by one LineageX run."""

    graph: LineageGraph
    query_dictionary: object
    catalog: Catalog
    report: object
    warnings: list = field(default_factory=list)
    #: identifier -> content hash of the extracted Query Dictionary entry;
    #: the change-detection baseline for incremental re-extraction.
    source_hashes: dict = field(default_factory=dict)
    #: the runner that produced this result (lets :meth:`update` re-run
    #: incrementally with identical configuration).
    runner: object = None

    # ------------------------------------------------------------------
    def stats(self):
        """Graph-level summary statistics."""
        stats = self.graph.stats()
        stats["num_queries"] = len(self.query_dictionary)
        stats["num_deferrals"] = self.report.deferral_count
        stats["num_unresolved"] = len(self.report.unresolved)
        stats["num_reused"] = len(getattr(self.report, "reused", ()))
        reused_from = getattr(self.report, "reused_from", None) or {}
        stats["num_reused_memory"] = sum(
            1 for origin in reused_from.values() if origin == "memory"
        )
        stats["num_reused_store"] = sum(
            1 for origin in reused_from.values() if origin == "store"
        )
        return stats

    def to_dict(self):
        """The JSON document shape (relations, table edges, column edges)."""
        payload = self.graph.to_dict()
        payload["stats"] = self.stats()
        payload["warnings"] = list(self.warnings)
        return payload

    def to_json(self, path=None, indent=2):
        """Serialise to JSON text; write it to ``path`` when given."""
        from ..output.json_output import graph_to_json

        text = graph_to_json(self.graph, stats=self.stats(), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_html(self, path=None, title="LineageX lineage graph"):
        """Render the interactive HTML page; write it to ``path`` when given."""
        from ..output.html_output import graph_to_html

        text = graph_to_html(self.graph, title=title)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def to_dot(self):
        """Render a Graphviz DOT document of the column lineage."""
        from ..output.dot_output import graph_to_dot

        return graph_to_dot(self.graph)

    def to_text(self):
        """Render a plain-text summary (one block per relation)."""
        from ..output.text_output import graph_to_text

        return graph_to_text(self.graph)

    def render(self, fmt, **options):
        """Render through the named renderer registry.

        ``fmt`` is any registered format name (``json``, ``html``, ``dot``,
        ``text``, ``csv``, ``markdown``, ``stats``, plus anything added via
        :func:`repro.output.register_renderer`); ``options`` are forwarded
        to the renderer.  Raises
        :class:`~repro.output.registry.UnknownFormatError` for unknown
        names.
        """
        from ..output.registry import render

        return render(self, fmt, **options)

    def save(self, output_dir, basename="lineagex"):
        """Write ``<basename>.json`` and ``<basename>.html`` into ``output_dir``."""
        os.makedirs(output_dir, exist_ok=True)
        json_path = os.path.join(output_dir, f"{basename}.json")
        html_path = os.path.join(output_dir, f"{basename}.html")
        self.to_json(json_path)
        self.to_html(html_path)
        return json_path, html_path

    def impact_analysis(self, column, direction="downstream"):
        """Convenience hook into :func:`repro.analysis.impact.impact_analysis`."""
        from ..analysis.impact import impact_analysis

        return impact_analysis(self.graph, column, direction=direction)

    # ------------------------------------------------------------------
    def update(self, changes):
        """Incrementally re-extract after changing some query definitions.

        Parameters
        ----------
        changes:
            Mapping from Query Dictionary identifier to its new SQL text.
            Unknown identifiers *add* new queries; a value of ``None``
            *removes* the entry.  Everything else is carried over from this
            result's Query Dictionary unchanged.

        Returns
        -------
        LineageXResult
            A fresh result in which only the changed entries and their
            transitive DAG dependents were re-extracted; the lineage of
            every other entry is spliced from this result's graph (see
            ``result.report.reused``).
        """
        runner = self.runner if self.runner is not None else LineageXRunner()
        return runner.run_incremental(self, changes)


def _is_one_shot_iterator(source):
    """True for sources that can only be consumed once (generators etc.)."""
    if isinstance(source, (str, bytes, dict, list, tuple, os.PathLike)):
        return False
    try:
        return iter(source) is source
    except TypeError:
        return False


class _ReiterableSource:
    """Wrap a one-shot iterator source so a cold retry can re-consume it.

    The runner's parse-cache healing path re-runs preprocessing when a
    replayed record turns out to be poisoned; a generator source would be
    exhausted by then.  This wrapper records items as they stream through
    (raw SQL text only — the bulky ASTs are never retained), so the retry
    replays the already-consumed prefix and continues with the rest.
    """

    def __init__(self, iterator):
        self._iterator = iterator
        self._seen = []
        self._done = False

    def __iter__(self):
        for item in self._seen:
            yield item
        if not self._done:
            for item in self._iterator:
                self._seen.append(item)
                yield item
            self._done = True


class _PutOnlyParseCache:
    """A parse cache that never replays — used for the cold-retry path.

    After a poisoned fragment record is detected, the retry must re-parse
    everything (no ``get``) while still overwriting the cached records with
    fresh ones (``put``), so the corruption heals instead of forcing a cold
    retry on every subsequent run.
    """

    def __init__(self, inner):
        self._inner = inner

    def get(self, sql):
        return None

    def put(self, sql, records):
        return self._inner.put(sql, records)


class LineageXRunner:
    """Configurable end-to-end lineage extraction."""

    def __init__(
        self,
        catalog=None,
        strict=False,
        use_stack=True,
        collect_traces=False,
        id_generator=None,
        mode="dag",
        workers=None,
        executor="thread",
        store=None,
        dialect="postgres",
        stream=False,
    ):
        self.catalog = catalog
        self.strict = strict
        self.use_stack = use_stack
        self.collect_traces = collect_traces
        self.id_generator = id_generator
        self.mode = mode
        self.workers = workers
        self.executor = executor
        #: optional :class:`repro.store.LineageStore`; when set, extraction
        #: consults it before scheduling and persists new results after.
        self.store = store
        self.dialect = dialect
        #: streaming mode for statement counts beyond what comfortably fits
        #: in memory as ASTs: preprocessing consumes the source lazily (it
        #: may be a generator) and drops each cold-parsed AST immediately,
        #: extraction re-materialises ASTs wave by wave and releases them
        #: after recording, and parallel waves ship as shard-routed batches.
        #: Results are byte-identical to the default mode.
        self.stream = stream

    # ------------------------------------------------------------------
    def run(self, source):
        """Run the full pipeline over ``source`` and return a result."""
        parse_cache = self._parse_cache()
        if parse_cache is not None:
            try:
                if _is_one_shot_iterator(source):
                    # a one-shot iterator would be exhausted if the cold
                    # retry below fires; record the raw fragments as they
                    # stream through so the retry can replay them
                    source = _ReiterableSource(source)
                query_dictionary = preprocess(
                    source,
                    id_generator=self.id_generator,
                    parse_cache=parse_cache,
                    retain_asts=not self.stream,
                )
                return self._run_scheduler(query_dictionary)
            except LineageRecordError:
                # a replayed statement no longer parses: the parse cache is
                # corrupt or version-skewed — degrade to one cold retry that
                # bypasses cache reads but still writes, so the poisoned
                # fragment records are overwritten with fresh ones
                parse_cache = _PutOnlyParseCache(parse_cache)
        query_dictionary = preprocess(
            source,
            id_generator=self.id_generator,
            parse_cache=parse_cache,
            retain_asts=not self.stream,
        )
        return self._run_scheduler(query_dictionary)

    def _parse_cache(self):
        """The store-backed parse cache, when a usable store is configured."""
        store = self._usable_store()
        if store is None:
            return None
        return store.parse_cache(self.dialect)

    def run_incremental(self, prev_result, changed_sources):
        """Re-extract only what ``changed_sources`` dirties.

        ``changed_sources`` maps a name to its new SQL text: a known Query
        Dictionary identifier *replaces* that entry, an unknown name *adds*
        new queries, and a value of ``None`` *removes* the entry.  Only the
        changed sources are parsed — every other entry's parsed statement is
        carried over from ``prev_result`` as-is.  Each entry of the merged
        dictionary is then content-hashed and compared against
        ``prev_result.source_hashes``; only genuinely changed or added
        entries, plus every transitive DAG dependent of a changed, added,
        or removed relation, are re-extracted.  The cached
        :class:`TableLineage` of every other entry is spliced into the new
        graph unchanged.

        The returned result is equivalent to a full :meth:`run` over the
        merged sources (base tables are re-derived from scratch either
        way); ``result.report.reused`` lists the spliced identifiers.  One
        ordering note: DDL in a changed fragment applies *after* all
        carried-over DDL, like a migration on top of the previous schema —
        a ``CREATE TABLE`` replaces that relation's prior schema and a
        ``DROP`` takes effect last, so the equivalent full run is one whose
        changed sources come after the unchanged ones.
        """
        query_dictionary, ddl_changed = self._merge_query_dictionary(
            prev_result.query_dictionary, changed_sources
        )
        hashes = {
            identifier: entry.content_hash
            for identifier, entry in query_dictionary.items()
        }
        prev_hashes = prev_result.source_hashes or {}
        changed = {
            identifier
            for identifier, value in hashes.items()
            if prev_hashes.get(identifier) != value
        }
        removed = set(prev_hashes) - set(hashes)
        dag = DependencyDAG.from_query_dictionary(query_dictionary)
        dirty = changed | (
            dag.transitive_dependents(changed | removed | ddl_changed) & set(hashes)
        )

        seed_results = {}
        for identifier in query_dictionary.identifiers():
            if identifier in dirty:
                continue
            cached = prev_result.graph.get(identifier)
            if cached is None or cached.is_base_table:
                # Nothing usable to splice (e.g. the entry was unresolved in
                # the previous run); re-extract it.
                continue
            seed_results[identifier] = cached
        return self._run_scheduler(query_dictionary, seed_results=seed_results, dag=dag)

    def _merge_query_dictionary(self, prev_dictionary, changed_sources):
        """Apply ``changed_sources`` to a copy of ``prev_dictionary``.

        Unchanged entries reuse their already-parsed :class:`ParsedQuery`
        objects (no re-parsing); only the changed sources run through
        :func:`preprocess`.  Replaced entries keep their original position,
        new identifiers are appended, removed entries disappear.

        A changed key replaces *everything* its source produced in the
        previous run: entries are matched by identifier, and entries or DDL
        recorded under the same ``source_name`` that the new fragment no
        longer produces are purged (so replacing a multi-statement source
        with fewer statements leaves no orphans).

        Known limitation: when several sources define the *same* identifier,
        only the winning definition is retained in the dictionary (the
        shadowed one was already discarded with a "redefined" warning on the
        run that observed the conflict), so a later delta that removes the
        winner cannot resurrect the shadowed definition — re-run from
        scratch to recover it.  DDL declared or dropped
        this way is returned as ``ddl_changed_names`` so the caller can
        dirty its readers — a schema change invalidates spliced lineage
        even though no Query Dictionary entry changed.

        Returns ``(merged_dictionary, ddl_changed_names)``.
        """
        from ..sqlparser import ast

        parsed_changes = {}
        changed_keys = set()
        removed = set()
        extra_ddl = []
        extra_ddl_sources = []
        new_ddl_names = set()   # relations declared by the new fragments
        ddl_changed = set()     # relations whose schema changed either way
        warnings = []
        for name, sql in changed_sources.items():
            key = normalize_name(str(name))
            changed_keys.add(key)
            if sql is None:
                removed.add(key)
                continue
            fragment = preprocess(
                {name: sql},
                id_generator=self.id_generator,
                parse_cache=self._parse_cache(),
            )
            extra_ddl.extend(fragment.ddl_statements)
            extra_ddl_sources.extend(fragment.ddl_sources)
            warnings.extend(fragment.warnings)
            for statement in fragment.ddl_statements:
                # only CREATE declarations supersede a prior schema; a DROP
                # flows through add_ddl/ddl_changed and must not erase an
                # unchanged source's CREATE TABLE from the merge
                if isinstance(statement, ast.CreateTable) and statement.name is not None:
                    new_ddl_names.add(normalize_name(statement.name.dotted()))
                elif statement.name is not None:
                    ddl_changed.add(normalize_name(statement.name.dotted()))
            for identifier, entry in fragment.items():
                parsed_changes[identifier] = entry
        ddl_changed |= new_ddl_names

        merged = QueryDictionary()
        for statement, source in zip(
            prev_dictionary.ddl_statements, prev_dictionary.ddl_sources
        ):
            declared = (
                normalize_name(statement.name.dotted())
                if statement.name is not None
                else None
            )
            if source is not None and source in changed_keys:
                # the source was replaced/removed; whatever schema it
                # declared is gone (or re-declared by the new fragment)
                if declared is not None:
                    ddl_changed.add(declared)
                continue
            if isinstance(statement, ast.CreateTable) and declared in new_ddl_names:
                # superseded by DDL for the same relation in a new fragment
                # (only *new* declarations supersede — a schema also dropped
                # elsewhere must not erase an unchanged source's DDL)
                continue
            merged.add_ddl(statement, source=source)
        for statement, source in zip(extra_ddl, extra_ddl_sources):
            merged.add_ddl(statement, source=source)
        # Warnings of carried-over entries would re-occur on a full run, so
        # keep them; warnings tied to a *replaced* entry may be stale, which
        # is the price of not re-parsing the unchanged sources.
        merged.warnings = list(prev_dictionary.warnings) + warnings
        for identifier, entry in prev_dictionary.items():
            if identifier in removed:
                continue
            # the key a delta must use to address this entry: its named
            # source, or the identifier itself for anonymous script input
            owner = entry.source_name or identifier
            replacement = parsed_changes.pop(identifier, None)
            if replacement is not None:
                if (
                    owner not in changed_keys
                    and replacement.kind in ("update", "delete", "merge")
                ):
                    # mirror the full-run dedup in preprocess(): an UPDATE,
                    # DELETE or MERGE never overwrites an entry another
                    # (unchanged) source still defines, whatever that
                    # entry's kind
                    merged.warnings.append(
                        f"{replacement.kind.upper()} on {identifier!r} ignored: "
                        "the relation is already defined by an earlier statement"
                    )
                    merged.add(entry)
                else:
                    merged.add(replacement)
                continue
            if owner in changed_keys:
                # the entry's source no longer produces this statement
                continue
            merged.add(entry)
        # entries produced by the new fragments that did not replace a prev
        # entry are appended unconditionally — `removed` names prior state,
        # and a relation removed from one source may be redefined by another
        for entry in parsed_changes.values():
            merged.add(entry)
        return merged, ddl_changed

    # ------------------------------------------------------------------
    def _run_scheduler(self, query_dictionary, seed_results=None, dag=None):
        catalog = self._build_catalog(query_dictionary)
        seed_origins = {identifier: "memory" for identifier in (seed_results or ())}
        store = self._usable_store()
        if store is not None:
            if dag is None:
                dag = DependencyDAG.from_query_dictionary(query_dictionary)
            seed_results = dict(seed_results or {})
            self._splice_from_store(
                store, query_dictionary, catalog, dag, seed_results, seed_origins
            )
        shard_router = None
        if self.stream and store is not None:
            shard_of = getattr(store, "shard_of", None)
            if shard_of is not None:
                shard_router = lambda entry: shard_of(entry.content_hash)  # noqa: E731
        scheduler = AutoInferenceScheduler(
            query_dictionary,
            catalog=catalog,
            strict=self.strict,
            use_stack=self.use_stack,
            collect_traces=self.collect_traces,
            mode=self.mode,
            workers=self.workers,
            executor=self.executor,
            seed_results=seed_results,
            seed_origins=seed_origins,
            dag=dag,
            release_asts=self.stream,
            wave_batching=self.stream,
            shard_router=shard_router,
        )
        graph, report = scheduler.run()
        self._attach_base_tables(graph, catalog)
        if store is not None:
            self._persist_results(store, query_dictionary, catalog, scheduler, report)
        return LineageXResult(
            graph=graph,
            query_dictionary=query_dictionary,
            catalog=catalog,
            report=report,
            warnings=list(query_dictionary.warnings),
            source_hashes={
                identifier: entry.content_hash
                for identifier, entry in query_dictionary.items()
            },
            runner=self,
        )

    # ------------------------------------------------------------------
    # Persistent-store splicing
    # ------------------------------------------------------------------
    def _usable_store(self):
        """The configured store, unless this run cannot use one soundly.

        With ``use_stack=False`` (the ablation mode) an entry may be
        extracted *before* its dependencies, seeing schemas that differ
        from the post-run state the cache key is computed from — so the
        store is disabled rather than risk wrong warm hits.
        """
        if self.store is None or not self.use_stack:
            return None
        return self.store

    def _dependency_schemas(self, entry, catalog, lookup):
        """``(name, columns-or-None)`` pairs for an entry's cache key.

        The self-reference (a query reading the relation it writes) is
        resolved through the *catalog only* — during extraction the entry's
        own result does not exist yet, so consulting results would stamp a
        fingerprint the next run's pre-pass could never reconstruct, and
        ignoring the self-read entirely would let a schema change to the
        self-read table produce a stale warm hit.
        """
        rows = []
        for name in entry.table_refs():
            if name == entry.identifier:
                table = catalog.get(name) if catalog is not None else None
                rows.append(
                    (name, table.column_names() if table is not None else None)
                )
            else:
                rows.append((name, lookup(name)))
        return rows

    def _splice_from_store(
        self, store, query_dictionary, catalog, dag, seed_results, seed_origins
    ):
        """Seed extraction with store hits, walking entries in plan order.

        Mirrors how the incremental layer splices ``prev_result``: a hit
        becomes a ``seed_result`` the scheduler treats as already
        processed.  An entry's key needs the column lists of everything it
        references, so hits resolve in topological order — an upstream
        miss (changed content, schema drift, version bump) conservatively
        re-extracts every dependent whose resolved schemas it feeds.
        """
        resolved = {}  # relation -> output columns known before extraction
        store.prime(
            entry.content_hash
            for identifier, entry in query_dictionary.items()
            if identifier not in seed_results
        )

        def lookup(name):
            columns = resolved.get(name)
            if columns is not None:
                return columns
            table = catalog.get(name) if catalog is not None else None
            if table is not None:
                return table.column_names()
            return None

        # never splice entries on (or downstream of) a dependency cycle: the
        # cold path raises CyclicDependencyError for them, and a warm hit
        # must not change which runs fail
        waves, deferred = dag.waves()
        unresolvable = set(deferred)
        for identifier in (name for wave in waves for name in wave):
            entry = query_dictionary.get(identifier)
            if entry is None:
                continue
            seeded = seed_results.get(identifier)
            if seeded is not None:
                resolved[identifier] = list(seeded.output_columns)
                continue
            # a dependency that is itself a pending Query Dictionary entry
            # makes the key incomputable before extraction -> cold path
            dependencies = dag.dependencies.get(identifier, ())
            if any(name in unresolvable for name in dependencies):
                unresolvable.add(identifier)
                continue
            key = self._record_key(entry, catalog, lookup)
            cached = store.get(key, content_hash=entry.content_hash)
            if cached is None:
                unresolvable.add(identifier)
                continue
            seed_results[identifier] = cached
            seed_origins[identifier] = "store"
            resolved[identifier] = list(cached.output_columns)

    def _record_key(self, entry, catalog, lookup):
        from ..store import make_key, schema_fingerprint

        fingerprint = schema_fingerprint(
            self._dependency_schemas(entry, catalog, lookup),
            strict=self.strict,
        )
        return make_key(entry.content_hash, self.dialect, EXTRACTOR_VERSION, fingerprint)

    def _persist_results(self, store, query_dictionary, catalog, scheduler, report):
        """Write every newly extracted entry's record to the store.

        Keys are computed from the *final* resolved schemas — with the
        deferral stack enabled an entry only completes once every
        dependency it consulted is resolved, so the post-run view equals
        what its extraction saw (and what the next run's pre-pass will
        reconstruct from store hits).
        """
        from ..store import make_key, schema_fingerprint

        results = scheduler.results

        def lookup(name):
            lineage = results.get(name)
            if lineage is not None:
                return list(lineage.output_columns)
            table = catalog.get(name) if catalog is not None else None
            if table is not None:
                return table.column_names()
            return None

        rows = []
        for identifier in report.order:
            if identifier in report.unresolved:
                continue
            lineage = results.get(identifier)
            entry = query_dictionary.get(identifier)
            if lineage is None or entry is None:
                continue
            fingerprint = schema_fingerprint(
                self._dependency_schemas(entry, catalog, lookup),
                strict=self.strict,
            )
            key = make_key(
                entry.content_hash, self.dialect, EXTRACTOR_VERSION, fingerprint
            )
            rows.append(
                (
                    key,
                    lineage,
                    {
                        "content_hash": entry.content_hash,
                        "dialect": self.dialect,
                        "extractor_version": EXTRACTOR_VERSION,
                        "schema_fingerprint": fingerprint,
                    },
                )
            )
        # one executemany-backed transaction per store shard instead of a
        # round trip per record — the write-side analogue of prime()
        store.put_many(rows)
        store.flush()

    # ------------------------------------------------------------------
    def _build_catalog(self, query_dictionary):
        """Merge the user-provided catalog with CREATE TABLE DDL from the input."""
        ddl_catalog = catalog_from_statements(query_dictionary.ddl_statements)
        if self.catalog is None:
            return ddl_catalog
        merged = self.catalog.copy()
        for table in ddl_catalog.tables.values():
            merged.add_table(table, replace=True)
        return merged

    @staticmethod
    def _attach_base_tables(graph, catalog):
        """Create base-table nodes for every relation that is only read.

        Column sets come from the catalog when available and are otherwise
        accumulated from usage (every contribution or reference that points
        at the relation), which is how Example 1's ``web`` node obtains its
        ``cid``/``date``/``page``/``reg`` columns without any metadata.
        """
        used_columns = set()
        for lineage in list(graph):
            for sources in lineage.contributions.values():
                used_columns.update(sources)
            used_columns.update(lineage.referenced)
        view_names = {lineage.name for lineage in graph.views}
        # sorted so the accumulated column order of catalog-less base tables
        # is identical however the graph was assembled (a warm-spliced run
        # iterates relations in a different order than a cold one); the
        # explicit key avoids a rich-comparison call per element pair
        for column_name in sorted(
            used_columns, key=lambda c: (c.table, c.column)
        ):
            if column_name.table in view_names:
                continue
            if column_name.column == "*":
                graph.ensure_base_table(column_name.table)
                continue
            graph.register_usage(column_name)
        # add full catalog schemas for base tables that were touched
        for entry in graph.base_tables:
            table = catalog.get(entry.name) if catalog is not None else None
            if table is not None:
                for column in table.column_names():
                    entry.add_output_column(column)


def lineagex(
    source,
    catalog=None,
    strict=False,
    use_stack=True,
    collect_traces=False,
    output_dir=None,
    mode="dag",
    workers=None,
):
    """Extract column-level lineage from SQL (the paper's one-call API).

    Parameters
    ----------
    source:
        SQL text, a list of SQL texts, a ``{name: sql}`` mapping, or a path
        to a ``.sql`` file or directory.
    catalog:
        Optional :class:`repro.catalog.Catalog` with base-table schemas
        (plays the role of a database connection's metadata).
    strict:
        Raise :class:`~repro.core.errors.AmbiguousColumnError` on ambiguous
        unqualified columns instead of attributing them conservatively.
    use_stack:
        Enable the Table/View Auto-Inference stack (disable only for the
        ablation study).
    collect_traces:
        Record per-query extraction traces (rule firings).
    output_dir:
        When given, write ``lineagex.json`` and ``lineagex.html`` there.
    mode:
        ``"dag"`` (default) plans a dependency DAG and extracts in
        topological waves; ``"stack"`` reproduces the paper's purely
        reactive LIFO-deferral behaviour.
    workers:
        In DAG mode, extract independent entries of each wave on a thread
        pool of this size (``None``/1 = sequential).  Results are identical
        for any worker count.  Note the extraction is pure-Python and
        CPU-bound, so on GIL-bound CPython builds threads yield little
        wall-clock benefit — the option exists for free-threaded builds and
        as the seam for a future process-based backend.

    Returns
    -------
    LineageXResult

    Notes
    -----
    This is a thin shim over the Session API: it is equivalent to
    ``LineageSession(source, catalog=catalog, ...).extract()`` and exists
    for backwards compatibility with the paper's original one-call shape.
    The input is pinned to the pass-through text adapter (no source
    auto-detection) so historical input handling is preserved exactly;
    use :class:`~repro.session.LineageSession` directly for auto-detected
    dbt projects and JSONL query logs.
    """
    from ..session import LineageSession, SessionConfig
    from ..sources import Source, TextSource

    if not isinstance(source, Source):
        source = TextSource(source)
    session = LineageSession(
        source,
        catalog=catalog,
        config=SessionConfig(
            strict=strict,
            use_stack=use_stack,
            collect_traces=collect_traces,
            mode=mode,
            workers=workers,
        ),
    )
    result = session.extract()
    if output_dir is not None:
        result.save(output_dir)
    return result
