"""Exception types raised by the lineage extraction core."""


class LineageError(Exception):
    """Base class for all lineage extraction errors."""


class UnknownRelationError(LineageError):
    """Raised when a query references a relation whose columns are unknown.

    The Table/View Auto-Inference scheduler catches this error: when the
    missing relation is itself defined by a later entry of the Query
    Dictionary, the current extraction is deferred onto the stack and the
    dependency is processed first (Section III of the paper).

    Attributes
    ----------
    relation:
        Normalised name of the relation whose metadata is missing.
    reason:
        Human-readable explanation of why the metadata was needed (for
        example ``"SELECT * requires the column list of webact"``).
    """

    def __init__(self, relation, reason=None):
        self.relation = relation
        self.reason = reason
        message = f"unknown relation {relation!r}"
        if reason:
            message += f": {reason}"
        super().__init__(message)

    def __reduce__(self):
        # default exception pickling would re-init with the formatted message
        # as ``relation``; process-pool workers hand this error back to the
        # scheduler, so the attributes must survive the round trip
        return (type(self), (self.relation, self.reason))


class AmbiguousColumnError(LineageError):
    """Raised when a column reference cannot be attributed to a single source.

    The extractor only raises this in ``strict`` mode; by default it follows
    the paper's conservative policy and attributes the column to every
    candidate source.

    Attributes
    ----------
    column:
        The unqualified column name.
    candidates:
        The source names that expose a column with that name.
    """

    def __init__(self, column, candidates):
        self.column = column
        self.candidates = sorted(candidates)
        super().__init__(
            f"column {column!r} is ambiguous among sources: {', '.join(self.candidates)}"
        )

    def __reduce__(self):
        return (type(self), (self.column, self.candidates))


class UnknownColumnError(LineageError, KeyError):
    """An impact query started from a column the graph has never seen.

    Derives from :class:`KeyError` so library callers can treat a failed
    lookup like a mapping miss.  ``hint`` optionally carries the nearest
    known name (the serving daemon surfaces it in the 404 body).
    """

    def __init__(self, column, hint=None):
        self.column = str(column)
        self.hint = hint
        message = f"unknown column {self.column!r}"
        if hint:
            message += f" (did you mean {hint!r}?)"
        # bypass KeyError.__str__'s repr-of-args formatting
        LineageError.__init__(self, message)
        self.args = (message,)

    def __str__(self):
        return self.args[0]


class CyclicDependencyError(LineageError):
    """Raised when query definitions form a dependency cycle.

    Attributes
    ----------
    cycle:
        The list of relation names forming the cycle, in discovery order.
    """

    def __init__(self, cycle):
        self.cycle = list(cycle)
        super().__init__("cyclic dependency among queries: " + " -> ".join(self.cycle))

    def __reduce__(self):
        return (type(self), (self.cycle,))


class DeferralLimitExceededError(CyclicDependencyError):
    """Raised when the auto-inference stack exceeds its deferral budget.

    Distinguishes "the scheduler gave up after ``max_deferrals`` stack
    operations" from a genuine dependency cycle (which is detected eagerly
    when a relation re-enters the stack).  Subclasses
    :class:`CyclicDependencyError` so existing ``except`` clauses keep
    working.

    Attributes
    ----------
    stack:
        The deferral stack at the moment the limit was hit (outermost
        first).
    limit:
        The deferral budget that was exceeded.
    """

    def __init__(self, stack, limit):
        self.stack = list(stack)
        self.limit = limit
        LineageError.__init__(
            self,
            f"deferral limit of {limit} exceeded; stack at limit: "
            + " -> ".join(self.stack),
        )
        self.cycle = list(stack)

    def __reduce__(self):
        return (type(self), (self.stack, self.limit))


class SessionClosedError(LineageError):
    """An extraction was attempted on (or raced) a closed session.

    :meth:`repro.session.LineageSession.close` releases the persistent
    store; an ``extract()``/``refresh()`` that starts after the close — or
    is in flight when the close lands — must fail loudly rather than
    silently adopting a result whose store writes were dropped mid-flush.
    The serving daemon's shutdown path relies on this: a racing refresher
    gets a clear error instead of a half-written cache.

    Attributes
    ----------
    operation:
        The session method that was refused (``"extract"`` / ``"refresh"``).
    """

    def __init__(self, operation="operation"):
        self.operation = operation
        super().__init__(
            f"session is closed: {operation}() after close() "
            "(or close() landed while it was in flight)"
        )

    def __reduce__(self):
        return (type(self), (self.operation,))


class LineageRecordError(LineageError):
    """A serialized lineage record is malformed or of an unsupported version.

    Raised by :meth:`repro.core.lineage.TableLineage.from_record` and
    :meth:`repro.core.column_refs.ColumnName.from_record`.  The persistent
    lineage store catches it and treats the entry as a cold miss, so a
    corrupted or version-skewed cache degrades to re-extraction instead of
    failing the run.
    """
