"""The lineage graph data model.

Following Section II of the paper, the lineage of a query ``Q`` producing a
relation ``V`` consists of:

* ``T`` -- the *table lineage*: which input relations contribute to ``V``;
* ``C`` -- the *column lineage*: for every output column ``c_out`` of ``V``,
  the set ``C_con(c_out)`` of input columns that directly contribute to its
  values;
* ``C_ref`` -- the set of input columns *referenced* by ``Q`` (join
  predicates, WHERE/HAVING filters, set-operation comparisons, GROUP BY
  keys, ...): a change in any of them may change which rows appear in ``V``,
  hence it potentially affects *every* output column;
* ``C_both`` -- columns appearing both in some ``C_con`` set and in
  ``C_ref``.

:class:`TableLineage` stores the lineage of a single relation;
:class:`LineageGraph` collects the lineage of a whole warehouse (one entry
per Query Dictionary item plus the inferred base tables) and exposes the
combined column-edge view used by the visualizer and the impact analysis.
"""

import weakref
from dataclasses import dataclass, field

from .column_refs import ColumnName
from .errors import LineageRecordError


#: Edge kinds, ordered so that "both" wins when merging.
EDGE_CONTRIBUTE = "contribute"
EDGE_REFERENCE = "reference"
EDGE_BOTH = "both"

#: Version of the :meth:`TableLineage.to_record` serialisation format.
#: Bump whenever the record shape changes; :meth:`TableLineage.from_record`
#: rejects records of any other version, which the persistent store turns
#: into a silent cold miss (re-extraction) instead of loading skewed data.
LINEAGE_RECORD_VERSION = 1


@dataclass(frozen=True, order=True)
class ColumnEdge:
    """A directed column-level lineage edge ``source -> target`` with a kind."""

    source: ColumnName
    target: ColumnName
    kind: str = EDGE_CONTRIBUTE


@dataclass
class TableLineage:
    """Lineage of a single output relation (view, table, or ad-hoc query)."""

    name: str
    output_columns: list = field(default_factory=list)
    contributions: dict = field(default_factory=dict)   # column -> set[ColumnName]
    referenced: set = field(default_factory=set)          # set[ColumnName]
    source_tables: set = field(default_factory=set)       # set[str]
    expressions: dict = field(default_factory=dict)        # column -> defining SQL text
    is_base_table: bool = False
    sql: str = ""
    #: mutation counter; kept for observability, but index invalidation now
    #: flows through the observer hooks (see :meth:`_bump`), so graphs never
    #: have to re-sum the counters of every entry per traversal.
    _version: int = field(default=0, compare=False, repr=False)

    # ------------------------------------------------------------------
    # Mutation notification
    # ------------------------------------------------------------------
    def _bump(self):
        """Record a mutation and notify every subscribed graph.

        Entries can be mutated *after* being added to a graph (base tables
        gain columns from usage) and one entry may live in several graphs at
        once (incremental splicing shares :class:`TableLineage` objects
        between the previous and the new result).  Each mutation pushes an
        O(1) invalidation to every subscriber instead of graphs polling
        every entry's counter on each traversal.
        """
        self._version += 1
        observers = self.__dict__.get("_observers")
        if observers:
            alive = [ref for ref in observers if ref() is not None]
            for ref in alive:
                ref()._invalidate()
            if len(alive) != len(observers):
                self.__dict__["_observers"] = alive

    def _subscribe(self, graph):
        """Register ``graph`` for mutation notifications (weakly, once)."""
        observers = self.__dict__.setdefault("_observers", [])
        for ref in observers:
            if ref() is graph:
                return
        observers.append(weakref.ref(graph))

    def __getstate__(self):
        # weak observer references are neither picklable nor meaningful in
        # another process; a worker-returned copy starts unsubscribed
        state = dict(self.__dict__)
        state.pop("_observers", None)
        return state

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_output_column(self, column):
        """Register an output column (keeps first-seen order, no duplicates)."""
        if column not in self.output_columns:
            self.output_columns.append(column)
        self.contributions.setdefault(column, set())
        self._bump()

    def add_contribution(self, column, source):
        """Record that ``source`` contributes to output ``column``."""
        self.add_output_column(column)
        self.contributions[column].add(source)
        self.source_tables.add(source.table)
        self._bump()

    def add_reference(self, source):
        """Record that the defining query references ``source``."""
        self.referenced.add(source)
        self.source_tables.add(source.table)
        self._bump()

    def add_source_table(self, table):
        """Record a table-level dependency without a column edge."""
        self.source_tables.add(table)
        self._bump()

    # ------------------------------------------------------------------
    # Views over the stored lineage
    # ------------------------------------------------------------------
    @property
    def contributing_columns(self):
        """The union of all per-column contribution sets (``C_con``)."""
        result = set()
        for sources in self.contributions.values():
            result |= sources
        return result

    @property
    def both_columns(self):
        """Columns in both ``C_con`` and ``C_ref`` (``C_both``)."""
        return self.contributing_columns & self.referenced

    @property
    def referenced_only_columns(self):
        """Columns referenced but not contributing to any output column."""
        return self.referenced - self.contributing_columns

    def column_names(self):
        """Qualified :class:`ColumnName` objects for this relation's outputs."""
        return [ColumnName.of(self.name, column) for column in self.output_columns]

    def edges(self):
        """Yield the :class:`ColumnEdge` set implied by this lineage.

        Contribution edges connect a source column to the specific output
        column it feeds.  Reference edges connect a referenced source column
        to *every* output column (a change in the referenced column can alter
        which rows appear, affecting all outputs).  When a pair has both
        kinds, a single edge of kind ``"both"`` is produced.
        """
        edge_kinds = {}
        for column, sources in self.contributions.items():
            target = ColumnName.of(self.name, column)
            for source in sources:
                edge_kinds[(source, target)] = EDGE_CONTRIBUTE
        for source in self.referenced:
            for column in self.output_columns:
                target = ColumnName.of(self.name, column)
                key = (source, target)
                if key in edge_kinds:
                    edge_kinds[key] = EDGE_BOTH
                else:
                    edge_kinds[key] = EDGE_REFERENCE
        for (source, target), kind in sorted(edge_kinds.items()):
            yield ColumnEdge(source=source, target=target, kind=kind)

    def to_dict(self):
        """Serialise to plain data for JSON output."""
        return {
            "name": self.name,
            "is_base_table": self.is_base_table,
            "columns": list(self.output_columns),
            "tables": sorted(self.source_tables),
            "column_lineage": {
                column: sorted(str(source) for source in sources)
                for column, sources in self.contributions.items()
            },
            "referenced_columns": sorted(str(source) for source in self.referenced),
            "column_expressions": dict(self.expressions),
            "sql": self.sql,
        }

    # ------------------------------------------------------------------
    # Loss-free record round-trip (persistent lineage store)
    # ------------------------------------------------------------------
    def to_record(self):
        """Serialise to a versioned plain-data record.

        Unlike :meth:`to_dict` (a display shape that renders column names as
        dotted strings), the record keeps every :class:`ColumnName` as an
        explicit ``[table, column]`` pair and is guaranteed loss-free:
        ``TableLineage.from_record(t.to_record()) == t`` for any entry.
        The persistent lineage store serialises exactly this shape.
        """
        return {
            "record_version": LINEAGE_RECORD_VERSION,
            "name": self.name,
            "is_base_table": self.is_base_table,
            "sql": self.sql,
            "output_columns": list(self.output_columns),
            "contributions": {
                column: sorted(source.to_record() for source in sources)
                for column, sources in self.contributions.items()
            },
            "referenced": sorted(source.to_record() for source in self.referenced),
            "source_tables": sorted(self.source_tables),
            "expressions": dict(self.expressions),
        }

    @classmethod
    def from_record(cls, record):
        """Rebuild a :class:`TableLineage` from :meth:`to_record` output.

        Raises :class:`~repro.core.errors.LineageRecordError` when the
        record is malformed or its ``record_version`` does not match — the
        store treats either as a cold miss and re-extracts.
        """
        if not isinstance(record, dict):
            raise LineageRecordError(f"not a lineage record: {type(record).__name__}")
        version = record.get("record_version")
        if version != LINEAGE_RECORD_VERSION:
            raise LineageRecordError(
                f"unsupported lineage record version {version!r} "
                f"(expected {LINEAGE_RECORD_VERSION})"
            )
        try:
            entry = cls(
                name=record["name"],
                is_base_table=bool(record["is_base_table"]),
                sql=record["sql"],
            )
            if not isinstance(entry.name, str) or not isinstance(entry.sql, str):
                raise LineageRecordError("name and sql must be strings")
            entry.output_columns = [str(column) for column in record["output_columns"]]
            entry.contributions = {
                str(column): {ColumnName.from_record(source) for source in sources}
                for column, sources in record["contributions"].items()
            }
            entry.referenced = {
                ColumnName.from_record(source) for source in record["referenced"]
            }
            entry.source_tables = {str(table) for table in record["source_tables"]}
            entry.expressions = {
                str(column): str(text) for column, text in record["expressions"].items()
            }
        except LineageRecordError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise LineageRecordError(f"malformed lineage record: {error}") from None
        return entry


class _GraphIndex:
    """Cached adjacency structures derived from a :class:`LineageGraph`.

    Built once per graph state (see ``LineageGraph._ensure_index``) and
    shared by every traversal consumer: ``edges()``, ``table_edges()``,
    ``neighbors()``, the impact analysis, and the dependency-ordering
    reports.  All members are treated as immutable by consumers.
    """

    __slots__ = (
        "edges",            # list[ColumnEdge], in the canonical iteration order
        "forward",          # ColumnName -> {ColumnName: kind} (source -> targets)
        "reverse",          # ColumnName -> {ColumnName: kind} (target -> sources)
        "table_edges",      # list[(source_table, target_table)]
        "table_forward",    # table -> [downstream tables]
        "table_reverse",    # table -> [upstream tables]
    )

    def __init__(self, relations):
        self.edges = []
        self.forward = {}
        self.reverse = {}
        self.table_edges = []
        self.table_forward = {}
        self.table_reverse = {}
        seen_table_edges = set()
        for entry in relations.values():
            for edge in entry.edges():
                self.edges.append(edge)
                self.forward.setdefault(edge.source, {})[edge.target] = edge.kind
                self.reverse.setdefault(edge.target, {})[edge.source] = edge.kind
            for source in sorted(entry.source_tables):
                key = (source, entry.name)
                if key not in seen_table_edges:
                    seen_table_edges.add(key)
                    self.table_edges.append(key)
                    self.table_forward.setdefault(source, []).append(entry.name)
                    self.table_reverse.setdefault(entry.name, []).append(source)


class LineageGraph:
    """The combined lineage of a set of queries (one warehouse).

    Besides the per-relation lineage entries, the graph maintains a cached
    forward/reverse column adjacency index.  The index is built lazily on
    the first traversal and invalidated automatically on mutation — both
    structural mutation (:meth:`add`, :meth:`ensure_base_table`) and
    in-place mutation of an already-added :class:`TableLineage` (tracked
    through its ``_version`` counter).  Hot-path consumers (``edges()``,
    ``neighbors()``, the impact analysis, dependency ordering) therefore
    never re-derive the edge set per call.
    """

    def __init__(self):
        self.relations = {}
        self._mutations = 0
        self._index = None
        self._index_token = None
        self._reach = None
        self._reach_token = None

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _invalidate(self):
        self._mutations += 1

    def _state_token(self):
        """An O(1) fingerprint of the graph's mutable state.

        Structural mutations bump ``_mutations`` directly; in-place entry
        mutations arrive through the entries' observer notifications
        (:meth:`TableLineage._bump`), so the token is a single counter read
        instead of a per-traversal sweep over every entry's version.
        """
        return self._mutations

    def _ensure_index(self):
        token = self._state_token()
        if self._index is None or self._index_token != token:
            self._index = _GraphIndex(self.relations)
            self._index_token = token
        return self._index

    def reachability(self, build=True):
        """The version-stamped :class:`~repro.analysis.reach.ReachabilityIndex`.

        With ``build=True`` (default) a current index is computed if the
        cached one is missing or stale — incrementally when the graph only
        grew since the last build (the common refresh shape), from scratch
        otherwise.  With ``build=False`` the call never does work: it
        returns the cached index when it matches the current state token
        and ``None`` otherwise, which is how consumers ask "is an index
        already paid for?" without triggering a build on a cold graph.
        """
        token = self._state_token()
        if self._reach is not None and self._reach_token == token:
            return self._reach
        if not build:
            return None
        from ..analysis.reach import ReachabilityIndex

        index = None
        if self._reach is not None:
            index = self._reach.refreshed(self)
        if index is None:
            index = ReachabilityIndex.build(self)
        self._reach = index
        self._reach_token = self._state_token()
        return index

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def add(self, lineage):
        """Add (or replace) the lineage entry for one relation."""
        self.relations[lineage.name] = lineage
        lineage._subscribe(self)
        self._invalidate()
        return lineage

    def ensure_base_table(self, name, columns=()):
        """Ensure a base-table node exists, adding any newly seen columns."""
        entry = self.relations.get(name)
        if entry is None:
            entry = TableLineage(name=name, is_base_table=True)
            self.relations[name] = entry
            entry._subscribe(self)
            self._invalidate()
        for column in columns:
            entry.add_output_column(column)
        return entry

    def register_usage(self, column_name):
        """Record that ``column_name`` of an (external) relation was used.

        Base tables are not defined by any query in the Query Dictionary, so
        their visible column set is accumulated from usage across queries —
        this is how the ``web`` node of Example 1 obtains its columns.  When
        the relation is already present as a *view* (defined by a query),
        that entry is returned unchanged: a view's column set comes from its
        defining query, never from usage.
        """
        entry = self.relations.get(column_name.table)
        if entry is not None and not entry.is_base_table:
            return entry
        entry = self.ensure_base_table(column_name.table)
        entry.add_output_column(column_name.column)
        return entry

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, name):
        return name in self.relations

    def __getitem__(self, name):
        return self.relations[name]

    def get(self, name, default=None):
        return self.relations.get(name, default)

    def __iter__(self):
        return iter(self.relations.values())

    def __len__(self):
        return len(self.relations)

    @property
    def views(self):
        """Relations defined by queries (non-base-table nodes)."""
        return [entry for entry in self.relations.values() if not entry.is_base_table]

    @property
    def base_tables(self):
        """Relations only ever used as sources (base-table nodes)."""
        return [entry for entry in self.relations.values() if entry.is_base_table]

    def columns_of(self, name):
        """Known output columns of a relation (empty list if unknown)."""
        entry = self.relations.get(name)
        if entry is None:
            return []
        return list(entry.output_columns)

    # ------------------------------------------------------------------
    # Edge / graph views (all backed by the cached adjacency index)
    # ------------------------------------------------------------------
    def edges(self):
        """Yield every column-level edge in the graph."""
        yield from self._ensure_index().edges

    def table_edges(self):
        """Yield table-level edges ``(source_table, target_table)``."""
        yield from self._ensure_index().table_edges

    def neighbors(self, column, direction="downstream"):
        """Adjacent columns of ``column`` with their edge kinds.

        Returns a sorted list of ``(ColumnName, kind)`` pairs: the columns
        directly fed by ``column`` (``direction="downstream"``) or directly
        feeding it (``direction="upstream"``).  A column with no edges in
        the requested direction — or absent from the graph — yields ``[]``.
        """
        adjacency = self.column_adjacency(direction)
        if not isinstance(column, ColumnName):
            column = ColumnName.parse(column)
        return sorted((adjacency.get(column) or {}).items())

    def column_adjacency(self, direction="downstream"):
        """The raw cached adjacency mapping for ``direction``.

        ``{ColumnName: {ColumnName: kind}}`` — the traversal substrate used
        by :mod:`repro.analysis.impact`.  Treat as read-only: it is a shared
        cache, rebuilt only when the graph mutates.
        """
        index = self._ensure_index()
        if direction == "downstream":
            return index.forward
        if direction == "upstream":
            return index.reverse
        raise ValueError(
            f"direction must be 'downstream' or 'upstream', got {direction!r}"
        )

    def table_successors(self):
        """Cached ``{table: [downstream tables]}`` adjacency (read-only)."""
        return self._ensure_index().table_forward

    def table_predecessors(self):
        """Cached ``{table: [upstream tables]}`` adjacency (read-only)."""
        return self._ensure_index().table_reverse

    def contribution_edges(self):
        """Only the edges whose kind is ``contribute`` or ``both``."""
        for edge in self.edges():
            if edge.kind in (EDGE_CONTRIBUTE, EDGE_BOTH):
                yield edge

    def reference_edges(self):
        """Only the edges whose kind is ``reference`` or ``both``."""
        for edge in self.edges():
            if edge.kind in (EDGE_REFERENCE, EDGE_BOTH):
                yield edge

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self):
        """Serialise the whole graph to plain data (JSON document shape)."""
        return {
            "relations": {
                name: entry.to_dict() for name, entry in sorted(self.relations.items())
            },
            "table_edges": [list(edge) for edge in sorted(self.table_edges())],
            "column_edges": [
                {
                    "source": str(edge.source),
                    "target": str(edge.target),
                    "kind": edge.kind,
                }
                for edge in sorted(self.edges())
            ],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a :class:`LineageGraph` from :meth:`to_dict` output."""
        graph = cls()
        for name, payload in data.get("relations", {}).items():
            entry = TableLineage(
                name=name,
                is_base_table=payload.get("is_base_table", False),
                sql=payload.get("sql", ""),
            )
            for column in payload.get("columns", []):
                entry.add_output_column(column)
            for column, sources in payload.get("column_lineage", {}).items():
                for source in sources:
                    entry.add_contribution(column, ColumnName.parse(source))
            for source in payload.get("referenced_columns", []):
                entry.add_reference(ColumnName.parse(source))
            for table in payload.get("tables", []):
                entry.add_source_table(table)
            entry.expressions = dict(payload.get("column_expressions", {}))
            graph.add(entry)
        return graph

    def subgraph(self, tables):
        """Restrict the graph to ``tables`` and the edges among them.

        Used to zoom the visualization onto a region of interest (the
        "explore" workflow): relations outside the set are dropped, and
        lineage entries are filtered to sources inside the set.
        """
        wanted = {str(name) for name in tables}
        restricted = LineageGraph()
        for name, entry in self.relations.items():
            if name not in wanted:
                continue
            clone = TableLineage(
                name=entry.name,
                is_base_table=entry.is_base_table,
                sql=entry.sql,
                expressions=dict(entry.expressions),
            )
            for column in entry.output_columns:
                clone.add_output_column(column)
                for source in entry.contributions.get(column, set()):
                    if source.table in wanted:
                        clone.add_contribution(column, source)
            for source in entry.referenced:
                if source.table in wanted:
                    clone.add_reference(source)
            clone.source_tables = {t for t in entry.source_tables if t in wanted}
            restricted.add(clone)
        return restricted

    def stats(self):
        """Summary statistics used by the benchmarks and the README."""
        views = self.views
        base_tables = self.base_tables
        edges = list(self.edges())
        return {
            "num_relations": len(self.relations),
            "num_views": len(views),
            "num_base_tables": len(base_tables),
            "num_view_columns": sum(len(v.output_columns) for v in views),
            "num_base_columns": sum(len(t.output_columns) for t in base_tables),
            "num_column_edges": len(edges),
            "num_contribute_edges": sum(
                1 for e in edges if e.kind in (EDGE_CONTRIBUTE, EDGE_BOTH)
            ),
            "num_reference_edges": sum(
                1 for e in edges if e.kind in (EDGE_REFERENCE, EDGE_BOTH)
            ),
            "num_table_edges": len(list(self.table_edges())),
        }

    # ------------------------------------------------------------------
    # Freezing (lock-free concurrent readers)
    # ------------------------------------------------------------------
    def freeze(self, reach_seed=None):
        """An immutable point-in-time view of this graph.

        The returned :class:`FrozenLineageGraph` supports every read
        operation of a live graph but rejects mutation, and its adjacency
        *and* reachability indexes are built eagerly here — concurrent
        readers therefore never trigger (or race) a lazy rebuild, which is
        what makes a published snapshot safe to traverse from many threads
        without any locking.  ``reach_seed`` may pass the previous
        generation's :class:`~repro.analysis.reach.ReachabilityIndex`;
        when this graph is an append-only successor (the serving daemon's
        batch-ingest steady state) the new index is patched from the seed
        instead of rebuilt.
        """
        return FrozenLineageGraph(self, reach_seed=reach_seed)


class FrozenGraphError(TypeError):
    """A mutation was attempted on a frozen lineage graph."""


class FrozenLineageGraph(LineageGraph):
    """A read-only point-in-time view over a :class:`LineageGraph`.

    Construction copies the relation *mapping* (not the entries: the
    engine's no-in-place-mutation discipline — every run and every
    incremental refresh assembles a fresh graph, splicing unmodified
    entries by reference — makes sharing :class:`TableLineage` objects
    safe) and builds the adjacency index eagerly.  The index is pinned:
    observer notifications from shared entries never invalidate it, so
    every traversal a reader starts completes against the exact edge set
    that existed when the snapshot was taken.

    All mutating methods raise :class:`FrozenGraphError`.  Derived views
    (:meth:`LineageGraph.subgraph`) return ordinary mutable graphs.
    """

    def __init__(self, graph, reach_seed=None):
        from ..analysis.reach import ReachabilityIndex

        self.relations = dict(graph.relations)
        self._mutations = 0
        # reuse the source graph's caches when they match its current
        # state: both index classes are replaced wholesale on mutation,
        # never edited in place, so sharing the objects is safe and makes
        # freezing an already-indexed graph nearly free
        token = graph._state_token()
        if graph._index is not None and graph._index_token == token:
            self._index = graph._index
        else:
            self._index = _GraphIndex(self.relations)
        self._index_token = 0
        reach = None
        if graph._reach is not None and graph._reach_token == token:
            reach = graph._reach
        if reach is None and reach_seed is not None:
            reach = reach_seed.refreshed(self)
        if reach is None:
            reach = ReachabilityIndex.build(self)
        self._reach = reach
        self._reach_token = 0

    # reads bypass the token dance entirely: the index is pinned
    def _ensure_index(self):
        return self._index

    def reachability(self, build=True):
        return self._reach

    def _invalidate(self):
        # shared entries may notify (they are subscribed to the live graph
        # and, transitively, anything else observing them); a frozen view
        # ignores it by design — the pinned index IS the snapshot
        pass

    def freeze(self):
        return self

    def add(self, lineage):
        raise FrozenGraphError(
            "cannot add to a frozen lineage graph (snapshot view)"
        )

    def ensure_base_table(self, name, columns=()):
        raise FrozenGraphError(
            "cannot add base tables to a frozen lineage graph (snapshot view)"
        )

    def register_usage(self, column_name):
        raise FrozenGraphError(
            "cannot register usage on a frozen lineage graph (snapshot view)"
        )
