"""Lineage extraction in database-connection mode.

Section III of the paper: "When the database connection is available,
LineageX [...] uses PostgreSQL's EXPLAIN command to obtain the physical
query plan instead of the AST from the parser, which provides accurate
metadata to deal with table and column reference ambiguities.  [...] an
error may occur due to missing dependencies when running the EXPLAIN
command.  This requires the stack mechanism and performing an additional
step to create the views first."

:class:`PlanModeRunner` reproduces that workflow against the simulated DBMS
(:class:`~repro.catalog.explain.ExplainSimulator`):

1. every Query Dictionary entry is submitted to ``EXPLAIN``;
2. an ``undefined_table`` error defers the current entry onto a stack and
   switches to the missing dependency, *creating the view* once its own
   dependencies are satisfied (LIFO resume, exactly like the static mode's
   auto-inference);
3. with the plan validated and the catalog now carrying exact column
   metadata for every dependency, column lineage is extracted with the
   strict catalog-backed resolver — no ambiguity is possible at this point.
"""

from dataclasses import dataclass, field

from .errors import CyclicDependencyError
from .extractor import LineageExtractor
from .lineage import LineageGraph
from .preprocess import preprocess
from .runner import LineageXResult, LineageXRunner
from ..catalog.catalog import Catalog
from ..catalog.errors import UndefinedTableError
from ..catalog.explain import ExplainSimulator
from ..catalog.introspect import catalog_from_statements
from ..catalog.provider import StrictCatalogProvider
from ..sqlparser.dialect import normalize_name


@dataclass
class PlanModeReport:
    """What the plan-mode runner did (mirrors the static ScheduleReport).

    Carries the same surface the static :class:`ScheduleReport` exposes
    (``mode``, ``reused``, ``deferral_count``, ``to_dict``) so result
    consumers — ``stats()``, the CLI, the Session API — never branch on
    the engine that produced a report.
    """

    order: list = field(default_factory=list)
    events: list = field(default_factory=list)       # (kind, identifier, missing)
    plans: dict = field(default_factory=dict)          # identifier -> PlanNode
    unresolved: dict = field(default_factory=dict)
    mode: str = "plan"
    #: plan mode re-validates everything through EXPLAIN, so nothing is
    #: ever spliced from a cache; present for static-report parity.
    reused: list = field(default_factory=list)

    @property
    def deferral_count(self):
        return sum(1 for kind, _, _ in self.events if kind == "defer")

    def to_dict(self):
        """A JSON-friendly summary of the run (plans reduced to node types)."""
        return {
            "mode": self.mode,
            "order": list(self.order),
            "events": [list(event) for event in self.events],
            "unresolved": dict(self.unresolved),
            "deferral_count": self.deferral_count,
            "reused": list(self.reused),
            "plan_node_types": {
                identifier: getattr(plan, "node_type", None)
                for identifier, plan in self.plans.items()
            },
        }


class PlanModeRunner:
    """End-to-end lineage extraction through the simulated EXPLAIN."""

    def __init__(self, catalog=None, keep_plans=True):
        self.base_catalog = catalog
        self.keep_plans = keep_plans

    # ------------------------------------------------------------------
    def run(self, source):
        """Run database-connection-mode extraction over ``source``."""
        query_dictionary = preprocess(source)
        catalog = self._build_catalog(query_dictionary)
        simulator = ExplainSimulator(catalog)
        extractor = LineageExtractor(provider=StrictCatalogProvider(catalog))

        report = PlanModeReport()
        pending = set(query_dictionary.identifiers())
        results = {}

        for identifier in query_dictionary.identifiers():
            if identifier not in pending:
                continue
            self._process_with_stack(
                identifier, query_dictionary, simulator, extractor, pending, results, report
            )

        graph = LineageGraph()
        for identifier in report.order:
            if identifier in results:
                graph.add(results[identifier])
        LineageXRunner._attach_base_tables(graph, catalog)
        return LineageXResult(
            graph=graph,
            query_dictionary=query_dictionary,
            catalog=catalog,
            report=report,
            warnings=list(query_dictionary.warnings),
        )

    # ------------------------------------------------------------------
    def _build_catalog(self, query_dictionary):
        ddl_catalog = catalog_from_statements(query_dictionary.ddl_statements)
        if self.base_catalog is None:
            return ddl_catalog
        merged = self.base_catalog.copy()
        for table in ddl_catalog.tables.values():
            merged.add_table(table, replace=True)
        return merged

    def _process_with_stack(
        self, identifier, query_dictionary, simulator, extractor, pending, results, report
    ):
        stack = [identifier]
        limit = 10 * max(len(query_dictionary), 1)
        deferrals = 0
        while stack:
            current = stack[-1]
            if current not in pending:
                stack.pop()
                continue
            entry = query_dictionary.get(current)
            try:
                # Step 1: EXPLAIN validates the dependencies and produces the plan.
                plan = simulator.explain(entry.query)
                # Step 2: extract lineage with exact catalog metadata.
                lineage, _ = extractor.extract_statement(entry)
                # Step 3: create the view so later queries see its columns.
                if entry.creates_relation:
                    simulator.create_view(entry.identifier, entry.query)
            except UndefinedTableError as error:
                missing = normalize_name(error.name)
                if missing in stack:
                    raise CyclicDependencyError(stack[stack.index(missing):] + [missing])
                if missing not in pending:
                    report.unresolved[current] = str(error)
                    pending.discard(current)
                    stack.pop()
                    continue
                deferrals += 1
                if deferrals > limit:
                    raise CyclicDependencyError(stack)
                report.events.append(("defer", current, missing))
                stack.append(missing)
                continue
            results[current] = lineage
            pending.discard(current)
            report.order.append(current)
            if self.keep_plans:
                report.plans[current] = plan
            stack.pop()
            report.events.append(("done", current, ""))
            if stack:
                report.events.append(("resume", stack[-1], current))


def lineagex_with_connection(source, catalog=None):
    """Database-connection-mode counterpart of :func:`repro.core.runner.lineagex`.

    ``catalog`` plays the role of the live database: it must contain the base
    tables the queries read (use :func:`repro.catalog.catalog_from_sql` on a
    schema dump, or a dataset's ``base_table_catalog()``).  Views defined by
    the input are created in a copy of the catalog as extraction proceeds.

    This is a thin shim over the Session API: it is equivalent to
    ``LineageSession(source, catalog=catalog, engine="plan").extract()``,
    with the input pinned to the pass-through text adapter (no source
    auto-detection) so historical input handling is preserved exactly.
    """
    from ..session import LineageSession
    from ..sources import Source, TextSource

    if catalog is None:
        catalog = Catalog()
    if not isinstance(source, Source):
        source = TextSource(source)
    return LineageSession(source, catalog=catalog, engine="plan").extract()
